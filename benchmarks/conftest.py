"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables/figures: it prints the
paper-style rows, writes them to ``benchmarks/results/<name>.txt`` (so the
output survives pytest's capture), asserts the qualitative *shape* the paper
reports, and times a representative unit of work with pytest-benchmark.

Scale: larger than the unit tests (hundreds of tables) but laptop-friendly —
the whole harness runs in a few minutes.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.catalog.synthetic import SyntheticCatalogConfig, generate_world
from repro.core.annotator import TableAnnotator
from repro.core.learning import TrainingConfig
from repro.core.model import default_model
from repro.eval.datasets import DatasetSizes, build_standard_datasets
from repro.eval.experiments import train_model

RESULTS_DIR = Path(__file__).parent / "results"


#: Difficulty dials shared by every bench dataset: more alternate-lemma
#: mentions (surname-only cells), more out-of-catalog rows.  Together with
#: BENCH_WORLD_CONFIG this pushes the task toward YAGO-scale ambiguity so the
#: algorithms separate the way the paper's Figure 6/8/9 do.
BENCH_GENERATOR_OVERRIDES = {
    "alternate_lemma_prob": 0.5,
    "unknown_cell_prob": 0.08,
    # the paper's tables average 35-37 rows; long tables are what break the
    # LCA intersection while leaving vote-based methods stable
    "rows_range": (12, 38),
}

BENCH_WORLD_CONFIG = SyntheticCatalogConfig(
    seed=7,
    n_persons=420,
    n_movies=200,
    n_novels=140,
    n_albums=90,
    n_countries=20,
    cities_per_country=3,
    n_clubs=24,
    multi_role_prob=0.25,
    surname_lemma_prob=0.65,
    initial_lemma_prob=0.7,
    adaptation_fraction=0.35,
    # redundant near-duplicate categories (Wikipedia-style) so over-specific
    # type scoring can misfire — this is what separates the Figure-8 modes
    alias_category_fraction=0.5,
    # heavier catalog incompleteness (YAGO-like): attacks phi3 containment,
    # exercising the missing-link repair and separating the Figure-8 modes
    drop_instance_link_prob=0.25,
    drop_subtype_link_prob=0.12,
    drop_tuple_prob=0.2,
)


@pytest.fixture(scope="session")
def bench_overrides():
    return dict(BENCH_GENERATOR_OVERRIDES)


@pytest.fixture(scope="session")
def bench_world():
    """A harder world: ~900 entities with heavy surname/title sharing."""
    return generate_world(BENCH_WORLD_CONFIG)


@pytest.fixture(scope="session")
def bench_datasets(bench_world):
    """Dataset analogues at roughly 1/3 of the paper's sizes."""
    return build_standard_datasets(
        bench_world,
        DatasetSizes(wiki_manual=24, web_manual=48, web_relations=16, wiki_link=60),
        generator_overrides=BENCH_GENERATOR_OVERRIDES,
    )


@pytest.fixture(scope="session")
def trained_model(bench_world, bench_datasets):
    """w1..w5 trained on the Wiki Manual analogue (paper Section 6.1.3)."""
    return train_model(
        bench_world,
        bench_datasets["wiki_manual"].tables,
        training=TrainingConfig(epochs=3, seed=0),
    )


@pytest.fixture(scope="session")
def bench_annotator(bench_world, trained_model):
    return TableAnnotator(bench_world.annotator_view, model=trained_model)


@pytest.fixture(scope="session")
def default_bench_model():
    return default_model()


@pytest.fixture(scope="session")
def emit():
    """Writer for figure outputs: prints AND persists under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _emit


@pytest.fixture(scope="session")
def emit_json():
    """Machine-readable perf trajectory: merges sections into BENCH_<name>.json.

    Each call updates one section of ``results/BENCH_<bench>.json`` in place,
    so partial runs (``-k section``) refresh only their own numbers while the
    rest of the trajectory file survives.  CI uploads the file as an artifact
    and a local run is committed at the repo root — grep ``BENCH_*.json`` to
    see the speed history.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit_json(bench: str, section: str, payload: dict) -> Path:
        path = RESULTS_DIR / f"BENCH_{bench}.json"
        document = {"bench": bench, "sections": {}}
        if path.exists():
            try:
                document = json.loads(path.read_text(encoding="utf-8"))
            except json.JSONDecodeError:
                pass  # unreadable history: start the file over
        document["bench"] = bench
        document["generated_unix"] = round(time.time(), 3)
        # run context is recorded per section: a partial run (-k) must not
        # relabel sections that survive from an earlier full/non-smoke run
        document.setdefault("sections", {})[section] = {
            **payload,
            "smoke": bool(os.environ.get("REPRO_BENCH_SMOKE")),
            "python": platform.python_version(),
            "recorded_unix": round(time.time(), 3),
        }
        path.write_text(
            json.dumps(document, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    return _emit_json
