"""Figure 7: time spent annotating a corpus snapshot.

The paper annotates 250k tables at ~0.7 s/table average with high variance,
and reports that ~80% of time goes to lemma-index probing + similarity
computation while inference is <1%.  We annotate a scaled snapshot and check
the same cost structure: candidate/feature work dominates, message passing is
a small fraction, and per-table time grows with row count.

Because lemma probing dominates, the annotation pipeline's shared candidate
cache is the highest-leverage optimisation in the system: a second section
annotates a repeated-cell corpus with the cache off and on, checks the
annotations are identical, and reports the speedup plus hit rate.

With the candidate stage amortised, the residual per-table cost is message
passing itself: a third section annotates relation-heavy tables with the
scalar per-edge engine and the compiled batched engine, asserts identical
annotations and a >=3x inference-stage speedup.

Batched inference turned candidate generation back into ~90% of per-table
time, so the candidate stage got the same treatment: a dedicated section
annotates the snapshot with the scalar per-cell candidate engine and the
array-backed batched engine (:mod:`repro.core.candidates_batched`), asserts
byte-identical annotations and a >=2x candidate-stage speedup, and records
the ``candidate_engine_speedup`` trajectory CI gates on.  Set
``REPRO_BENCH_SMOKE=1`` to run the engine sections at CI scale.
"""

import os
import statistics
import time

from repro.core.annotator import AnnotatorConfig
from repro.eval.experiments import timing_experiment
from repro.eval.reporting import format_table
from repro.pipeline import AnnotationPipeline, PipelineConfig
from repro.pipeline.io import annotation_to_dict
from repro.tables.generator import (
    NoiseProfile,
    TableGeneratorConfig,
    WebTableGenerator,
)

#: REPRO_BENCH_SMOKE=1 shrinks the engine-speedup corpus so CI can run this
#: bench on every push without paying the full measurement
SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))


def test_fig7_annotation_time(
    bench_world, bench_datasets, trained_model, emit, emit_json, benchmark
):
    tables = (
        bench_datasets["web_manual"].tables + bench_datasets["wiki_link"].tables
    )
    report = timing_experiment(bench_world, tables, trained_model)

    rows = [
        ["tables annotated", report.n_tables],
        ["mean seconds/table", round(report.mean_seconds, 4)],
        ["median seconds/table", round(report.median_seconds, 4)],
        ["p90 seconds/table", round(report.p90_seconds, 4)],
        ["candidate+similarity share", f"{report.candidate_fraction:.1%}"],
        ["inference share", f"{report.inference_fraction:.1%}"],
        ["candidate cache hit rate", f"{report.cache_hit_rate:.1%}"],
        ["lemma probes saved", report.cache_hits],
        ["  raw-text hits", report.cache_raw_hits],
        ["  normalised-key-only hits", report.cache_normalized_hits],
    ]
    emit(
        "fig7_annotation_time",
        format_table(
            ["Quantity", "Value"],
            rows,
            title="Figure 7 — annotation time breakdown (scaled snapshot)",
        ),
    )
    emit_json(
        "fig7",
        "annotation_time",
        {
            "tables": report.n_tables,
            "wall_seconds": round(report.wall_seconds, 4),
            "per_table_seconds": {
                "mean": round(report.mean_seconds, 5),
                "median": round(report.median_seconds, 5),
                "p90": round(report.p90_seconds, 5),
            },
            "candidate_fraction": round(report.candidate_fraction, 4),
            "inference_fraction": round(report.inference_fraction, 4),
            "cache_hit_rate": round(report.cache_hit_rate, 4),
            "cache_hits": report.cache_hits,
            "cache_raw_hits": report.cache_raw_hits,
            "cache_normalized_hits": report.cache_normalized_hits,
        },
    )

    # the paper's cost structure
    assert report.candidate_fraction > 0.5
    assert report.inference_fraction < 0.5
    assert report.candidate_fraction > report.inference_fraction
    # the batched candidate engine (the default) keeps candidate work under
    # the ~90% share the scalar path exhibits (measured ~0.71 locally)
    assert report.candidate_fraction < 0.80
    # variance exists ("considerable variation depending on the number of rows")
    assert statistics.pstdev(report.per_table_seconds) > 0
    # real corpora repeat cell strings; the shared cache must be absorbing some
    assert report.cache_hits > 0

    # larger tables cost more on average (coarse correlation check)
    annotator_timings = sorted(
        zip(
            [labeled.table.n_rows for labeled in tables],
            report.per_table_seconds,
        )
    )
    third = len(annotator_timings) // 3
    small_mean = statistics.fmean(t for _r, t in annotator_timings[:third])
    large_mean = statistics.fmean(t for _r, t in annotator_timings[-third:])
    assert large_mean > small_mean

    # timed unit: annotate one mid-sized table end to end through the pipeline
    pipeline = AnnotationPipeline(bench_world.annotator_view, model=trained_model)
    table = bench_datasets["web_manual"].tables[0].table
    benchmark(lambda: pipeline.annotate(table))


def test_fig7_inference_engine_speedup(bench_world, trained_model, emit, emit_json):
    """Scalar vs batched message passing on relation-heavy tables.

    PR 1's shared caches amortised the candidate stage, leaving the per-edge
    Python BP loop as the dominant per-table cost on relation-heavy tables
    (φ5 factors grow as O(rows·columns²)).  The compiled engine must run the
    *inference stage* (graph build + Figure-11 message passing + decoding)
    at least 3x faster than the scalar reference while producing identical
    annotations.
    """
    generator = WebTableGenerator(
        bench_world.full,
        TableGeneratorConfig(
            seed=77,
            n_tables=6 if SMOKE else 24,
            rows_range=(28, 38),
            # force the second object column so every table carries several
            # column pairs — the φ4/φ5-heavy regime this engine targets
            extra_object_column_prob=1.0,
            noise=NoiseProfile.WIKI,
            id_prefix="fig7-relheavy",
        ),
    )
    tables = generator.generate()

    def run(engine: str) -> tuple[list[dict], object]:
        pipeline = AnnotationPipeline(
            bench_world.annotator_view,
            model=trained_model,
            config=PipelineConfig(annotator=AnnotatorConfig(engine=engine)),
        )
        annotations = [
            annotation_to_dict(a) for a in pipeline.annotate_corpus(tables)
        ]
        return annotations, pipeline.last_report

    run("batched")  # warm-up: NumPy/BLAS and allocator caches
    scalar_annotations, scalar_report = run("scalar")
    batched_annotations, batched_report = run("batched")
    speedup = scalar_report.inference_seconds / batched_report.inference_seconds

    emit(
        "fig7_inference_engine_speedup",
        format_table(
            ["Quantity", "Scalar", "Batched"],
            [
                ["tables (relation-heavy)", len(tables), len(tables)],
                [
                    "inference-stage seconds",
                    round(scalar_report.inference_seconds, 3),
                    round(batched_report.inference_seconds, 3),
                ],
                [
                    "inference share of total",
                    f"{scalar_report.inference_fraction:.1%}",
                    f"{batched_report.inference_fraction:.1%}",
                ],
                ["inference-stage speedup", "1.00x", f"{speedup:.2f}x"],
            ],
            title="Scalar vs batched BP engine (same annotations)",
        ),
    )
    emit_json(
        "fig7",
        "inference_engine_speedup",
        {
            "tables": len(tables),
            "scalar_inference_seconds": round(scalar_report.inference_seconds, 4),
            "batched_inference_seconds": round(
                batched_report.inference_seconds, 4
            ),
            "speedup": round(speedup, 3),
            "scalar_inference_fraction": round(
                scalar_report.inference_fraction, 4
            ),
            "batched_inference_fraction": round(
                batched_report.inference_fraction, 4
            ),
            "identical_annotations": batched_annotations == scalar_annotations,
        },
    )

    # the engines must be interchangeable: identical labels everywhere
    assert batched_annotations == scalar_annotations
    # the batched engine makes inference scale with NumPy throughput
    assert speedup >= 3.0
    # and shrinks inference's share of the per-table budget
    assert batched_report.inference_fraction < scalar_report.inference_fraction


def test_fig7_candidate_engine_speedup(
    bench_world, bench_datasets, trained_model, emit, emit_json
):
    """Scalar vs batched candidate generation on the Figure-7 snapshot.

    With inference batched (PR 2), candidate generation is ~90% of per-table
    time.  The batched candidate engine moves that stage onto build-time
    array layouts — batch retrieval in compact id space, interned ancestor /
    pair tables, profiled similarity batteries, dense f3 gathers — and must
    run the *candidate stage* (``build_problem``: retrieval + candidate
    spaces + feature assembly) at least 2x faster than the scalar per-cell
    reference (target 3x; measured ~4.6x locally) while producing
    byte-identical annotations.
    """
    tables = (
        bench_datasets["web_manual"].tables + bench_datasets["wiki_link"].tables
    )
    if SMOKE:
        tables = tables[:24]

    def run(candidate_engine: str) -> tuple[list[dict], object]:
        pipeline = AnnotationPipeline(
            bench_world.annotator_view,
            model=trained_model,
            config=PipelineConfig(
                annotator=AnnotatorConfig(candidate_engine=candidate_engine)
            ),
        )
        annotations = [
            annotation_to_dict(a) for a in pipeline.annotate_corpus(tables)
        ]
        return annotations, pipeline.last_report

    run("batched")  # warm-up: NumPy/BLAS and allocator caches
    scalar_annotations, scalar_report = run("scalar")
    batched_annotations, batched_report = run("batched")
    speedup = scalar_report.candidate_seconds / batched_report.candidate_seconds
    end_to_end = scalar_report.total_seconds / batched_report.total_seconds

    emit(
        "fig7_candidate_engine_speedup",
        format_table(
            ["Quantity", "Scalar", "Batched"],
            [
                ["tables (Figure-7 snapshot)", len(tables), len(tables)],
                [
                    "candidate-stage seconds",
                    round(scalar_report.candidate_seconds, 3),
                    round(batched_report.candidate_seconds, 3),
                ],
                [
                    "candidate share of total",
                    f"{scalar_report.candidate_fraction:.1%}",
                    f"{batched_report.candidate_fraction:.1%}",
                ],
                ["candidate-stage speedup", "1.00x", f"{speedup:.2f}x"],
                ["end-to-end speedup", "1.00x", f"{end_to_end:.2f}x"],
            ],
            title="Scalar vs batched candidate engine (same annotations)",
        ),
    )
    emit_json(
        "fig7",
        "candidate_engine_speedup",
        {
            "tables": len(tables),
            "scalar_candidate_seconds": round(
                scalar_report.candidate_seconds, 4
            ),
            "batched_candidate_seconds": round(
                batched_report.candidate_seconds, 4
            ),
            "speedup": round(speedup, 3),
            "end_to_end_speedup": round(end_to_end, 3),
            "scalar_candidate_fraction": round(
                scalar_report.candidate_fraction, 4
            ),
            "batched_candidate_fraction": round(
                batched_report.candidate_fraction, 4
            ),
            "identical_annotations": batched_annotations == scalar_annotations,
        },
    )

    # the engines must be interchangeable: identical labels and scores
    assert batched_annotations == scalar_annotations
    # the batched engine makes candidate work scale with NumPy throughput
    assert speedup >= 2.0
    # and shrinks the candidate share of the per-table budget
    assert (
        batched_report.candidate_fraction < scalar_report.candidate_fraction
    )


def test_fig7_fused_speedup(bench_world, trained_model, emit, emit_json):
    """Per-table vs shape-bucketed fused corpus execution.

    The fused path (``fusion="bucket"``) plans the corpus into shape buckets,
    stacks every bucket's tables into one cross-table BP run and caches the
    fused bundles content-addressed, so re-annotating a recurring corpus —
    the serving steady state — skips candidate generation and graph
    compilation entirely and pays one vectorised BP per bucket instead of a
    Python round-trip per table.  Both modes get one identical warm-up pass
    (the cold pass, recorded alongside); the headline compares warm steady
    states as the best of five *interleaved* passes per mode, which cancels
    machine-state drift between the two measurements without favouring
    either side.  Annotations must be byte-identical throughout.

    The process-pool numbers are honest per-worker wall clocks: on a
    single-core runner the fork pool adds overhead rather than parallel
    speedup, which is exactly what ``cpu_count`` in the JSON explains.
    """
    generator = WebTableGenerator(
        bench_world.full,
        TableGeneratorConfig(
            seed=91,
            n_tables=60 if SMOKE else 320,
            rows_range=(3, 6),
            noise=NoiseProfile.WIKI,
            id_prefix="fig7-fused",
        ),
    )
    tables = [labeled.table for labeled in generator.generate()]

    def make_pipeline(fusion, executor="thread", workers=1):
        return AnnotationPipeline(
            bench_world.annotator_view,
            model=trained_model,
            config=PipelineConfig(
                executor=executor,
                workers=workers,
                batch_size=128,
                annotator=AnnotatorConfig(fusion=fusion),
            ),
        )

    def timed_pass(pipeline):
        start = time.perf_counter()
        annotations = [
            annotation_to_dict(annotation)
            for _table, annotation in pipeline.annotate_with_tables(tables)
        ]
        return annotations, time.perf_counter() - start

    baseline = make_pipeline("off")
    fused = make_pipeline("bucket")
    baseline_annotations, baseline_cold = timed_pass(baseline)
    fused_annotations, fused_cold = timed_pass(fused)
    identical = fused_annotations == baseline_annotations
    baseline_warm = fused_warm = float("inf")
    for _round in range(5):
        _, seconds = timed_pass(baseline)
        baseline_warm = min(baseline_warm, seconds)
        warm_annotations, seconds = timed_pass(fused)
        fused_warm = min(fused_warm, seconds)
        identical = identical and warm_annotations == baseline_annotations
    fused_report = fused.last_report
    baseline.close()
    fused.close()
    speedup = baseline_warm / fused_warm
    cold_speedup = baseline_cold / fused_cold

    # the process pool ships whole buckets to forked workers; per-worker
    # wall clocks are recorded as measured (no parallel win on 1 core)
    pool_seconds = {}
    for workers in (1, 2):
        pool = make_pipeline("bucket", executor="process", workers=workers)
        pool_annotations, seconds = timed_pass(pool)
        pool.close()
        identical = identical and pool_annotations == baseline_annotations
        pool_seconds[workers] = round(seconds, 4)

    histogram = {
        str(size): count
        for size, count in fused_report.bucket_size_histogram.items()
    }
    emit(
        "fig7_fused_speedup",
        format_table(
            ["Quantity", "Per-table", "Fused"],
            [
                ["tables (recurring corpus)", len(tables), len(tables)],
                [
                    "cold pass seconds",
                    round(baseline_cold, 3),
                    round(fused_cold, 3),
                ],
                [
                    "warm pass seconds",
                    round(baseline_warm, 3),
                    round(fused_warm, 3),
                ],
                ["warm speedup", "1.00x", f"{speedup:.2f}x"],
                ["fused batches", "-", fused_report.fused_batches],
                ["bucket-size histogram", "-", histogram],
                [
                    "process-pool seconds (workers=1/2)",
                    "-",
                    f"{pool_seconds[1]}/{pool_seconds[2]}",
                ],
            ],
            title="Per-table vs fused corpus execution (same annotations)",
        ),
    )
    emit_json(
        "fig7",
        "fused_speedup",
        {
            "tables": len(tables),
            "baseline_cold_seconds": round(baseline_cold, 4),
            "fused_cold_seconds": round(fused_cold, 4),
            "baseline_warm_seconds": round(baseline_warm, 4),
            "fused_warm_seconds": round(fused_warm, 4),
            "speedup": round(speedup, 3),
            "cold_speedup": round(cold_speedup, 3),
            "fused_batches": fused_report.fused_batches,
            "bucket_size_histogram": histogram,
            "process_pool_seconds": {
                str(workers): seconds
                for workers, seconds in pool_seconds.items()
            },
            "cpu_count": os.cpu_count(),
            "identical_annotations": identical,
        },
    )

    # fused execution must be invisible in the output
    assert identical
    # and pay for itself at the warm steady state
    assert speedup >= (1.8 if SMOKE else 3.0)


def test_fig7_serving_bundle_speedup(
    bench_world, bench_datasets, trained_model, emit, emit_json, tmp_path
):
    """Warm bundle load vs cold corpus re-annotation (the serving split).

    The serving subsystem's premise: everything the query path needs can be
    serialized once (``repro bundle build``) and loaded array-backed, so a
    server process starts by *reading* state the one-shot CLI would have
    *recomputed*.  This section measures both paths over the same snapshot,
    checks the loaded index answers queries byte-identically, and pins the
    headline claim — load at least 5x faster than cold re-annotation.
    """
    from repro.pipeline.io import annotation_to_dict
    from repro.search.annotated_search import AnnotatedSearcher
    from repro.search.query import RelationQuery
    from repro.search.table_index import AnnotatedTableIndex
    from repro.serve.bundle import build_bundle, load_bundle
    from repro.serve.state import ServeState, response_to_dict

    catalog = bench_world.annotator_view
    tables = bench_datasets["web_manual"].tables[: 10 if SMOKE else 32]

    # cold path: what every process start paid before bundles existed
    cold_pipeline = AnnotationPipeline(catalog, model=trained_model)
    cold_start = time.perf_counter()
    cold_index = AnnotatedTableIndex.from_corpus(
        catalog, tables, pipeline=cold_pipeline
    )
    cold_seconds = time.perf_counter() - cold_start

    # offline build (untimed here: it runs once, not per process start)
    bundle_path = tmp_path / "bundle"
    manifest = build_bundle(
        bundle_path,
        catalog,
        tables,
        pipeline=AnnotationPipeline(catalog, model=trained_model),
    )

    # warm path: verify hashes, read arrays, rebuild nothing
    load_start = time.perf_counter()
    loaded = load_bundle(bundle_path)
    load_seconds = time.perf_counter() - load_start
    speedup = cold_seconds / load_seconds

    # the loaded state must be indistinguishable from the cold build:
    # identical annotations and byte-identical search responses
    assert {
        table_id: annotation_to_dict(annotation)
        for table_id, annotation in loaded.table_index.annotations.items()
    } == {
        table_id: annotation_to_dict(annotation)
        for table_id, annotation in cold_index.annotations.items()
    }
    queries_checked = 0
    for relation in catalog.relations.all_relations():
        objects = sorted(
            catalog.relations.participating_objects(relation.relation_id)
        )[:2]
        for entity_id in objects:
            query = RelationQuery.from_catalog(
                catalog, relation.relation_id, entity_id
            )
            cold_response = AnnotatedSearcher(cold_index, catalog).search(query)
            warm_response = AnnotatedSearcher(
                loaded.table_index, catalog
            ).search(query)
            assert response_to_dict(warm_response) == response_to_dict(
                cold_response
            )
            queries_checked += 1
    assert queries_checked > 0

    # the warm server annotates single tables just like the one-shot path
    state = ServeState(loaded)
    served = state.annotate_payload({"table": tables[0].table.to_dict()})
    assert served["annotation"] == annotation_to_dict(
        cold_index.annotations[tables[0].table_id]
    )

    emit(
        "fig7_serving_bundle_speedup",
        format_table(
            ["Quantity", "Value"],
            [
                ["tables in snapshot", len(tables)],
                ["cold re-annotation seconds", round(cold_seconds, 3)],
                ["bundle load seconds", round(load_seconds, 3)],
                ["startup speedup", f"{speedup:.1f}x"],
                ["bundle files", len(manifest.files)],
                ["search queries checked identical", queries_checked],
            ],
            title="Serving: prebuilt bundle vs cold corpus re-annotation",
        ),
    )
    emit_json(
        "fig7",
        "serving_bundle",
        {
            "tables": len(tables),
            "cold_annotate_seconds": round(cold_seconds, 4),
            "bundle_load_seconds": round(load_seconds, 4),
            "startup_speedup": round(speedup, 2),
            "bundle_build_seconds": manifest.stats["annotate_seconds"],
            "bundle_files": len(manifest.files),
            "queries_checked_identical": queries_checked,
            "identical_annotations": True,
        },
    )

    # the headline serving claim: startup reads arrays instead of
    # re-annotating the corpus.  Measured headroom is ~70x; the smoke floor
    # is lower because CI runners make tiny-corpus wall-clock ratios noisy.
    assert speedup >= (2.0 if SMOKE else 5.0)


def test_fig7_candidate_cache_speedup(
    bench_world, bench_datasets, trained_model, emit, emit_json
):
    """Cached vs uncached pipeline on a repeated-cell corpus.

    A corpus where most cell strings recur (here: the same snapshot passed
    three times, mimicking the country/person/title repetition of real web
    corpora) must annotate measurably faster with the shared cache, while
    producing byte-identical annotations.
    """
    snapshot = bench_datasets["web_manual"].tables[:12]
    corpus = snapshot * 3  # >=2/3 of cells repeat earlier ones

    def run(cache_size: int) -> tuple[list[dict], float, object]:
        pipeline = AnnotationPipeline(
            bench_world.annotator_view,
            model=trained_model,
            config=PipelineConfig(cache_size=cache_size),
        )
        start = time.perf_counter()
        annotations = [
            annotation_to_dict(a) for a in pipeline.annotate_corpus(corpus)
        ]
        return annotations, time.perf_counter() - start, pipeline.last_report

    run(0)  # warm-up: NumPy/BLAS and allocator caches, excluded from timing
    uncached_annotations, uncached_seconds, uncached_report = run(0)
    cached_annotations, cached_seconds, cached_report = run(100_000)

    emit(
        "fig7_candidate_cache_speedup",
        format_table(
            ["Quantity", "Value"],
            [
                ["tables (3× repeated snapshot)", len(corpus)],
                ["uncached seconds", round(uncached_seconds, 3)],
                ["cached seconds", round(cached_seconds, 3)],
                ["speedup", f"{uncached_seconds / cached_seconds:.2f}x"],
                [
                    "candidate-stage speedup",
                    f"{uncached_report.candidate_seconds / cached_report.candidate_seconds:.2f}x",
                ],
                ["cache hit rate", f"{cached_report.cache.hit_rate:.1%}"],
                ["lemma probes saved", cached_report.cache.hits],
                [
                    "feature-block hit rate",
                    f"{cached_report.block_cache.hit_rate:.1%}",
                ],
            ],
            title="Candidate cache on a repeated-cell corpus",
        ),
    )
    emit_json(
        "fig7",
        "candidate_cache_speedup",
        {
            "tables": len(corpus),
            "uncached_seconds": round(uncached_seconds, 4),
            "cached_seconds": round(cached_seconds, 4),
            "speedup": round(uncached_seconds / cached_seconds, 3),
            "candidate_stage_speedup": round(
                uncached_report.candidate_seconds
                / cached_report.candidate_seconds,
                3,
            ),
            "cache_hit_rate": round(cached_report.cache.hit_rate, 4),
            "block_cache_hit_rate": round(
                cached_report.block_cache.hit_rate, 4
            ),
            "identical_annotations": cached_annotations == uncached_annotations,
        },
    )

    # identical output — caching must not change a single label
    assert cached_annotations == uncached_annotations
    # most lookups hit: the corpus repeats its cells
    assert cached_report.cache.hit_rate > 0.5
    assert uncached_report.cache is None
    # measurably faster end to end, with the win concentrated in the
    # candidate stage the cache targets
    assert cached_seconds < uncached_seconds
    assert (
        cached_report.candidate_seconds < 0.9 * uncached_report.candidate_seconds
    )
