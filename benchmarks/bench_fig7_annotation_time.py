"""Figure 7: time spent annotating a corpus snapshot.

The paper annotates 250k tables at ~0.7 s/table average with high variance,
and reports that ~80% of time goes to lemma-index probing + similarity
computation while inference is <1%.  We annotate a scaled snapshot and check
the same cost structure: candidate/feature work dominates, message passing is
a small fraction, and per-table time grows with row count.
"""

import statistics

from repro.eval.experiments import timing_experiment
from repro.eval.reporting import format_table


def test_fig7_annotation_time(
    bench_world, bench_datasets, trained_model, emit, benchmark
):
    tables = (
        bench_datasets["web_manual"].tables + bench_datasets["wiki_link"].tables
    )
    report = timing_experiment(bench_world, tables, trained_model)

    rows = [
        ["tables annotated", report.n_tables],
        ["mean seconds/table", round(report.mean_seconds, 4)],
        ["median seconds/table", round(report.median_seconds, 4)],
        ["p90 seconds/table", round(report.p90_seconds, 4)],
        ["candidate+similarity share", f"{report.candidate_fraction:.1%}"],
        ["inference share", f"{report.inference_fraction:.1%}"],
    ]
    emit(
        "fig7_annotation_time",
        format_table(
            ["Quantity", "Value"],
            rows,
            title="Figure 7 — annotation time breakdown (scaled snapshot)",
        ),
    )

    # the paper's cost structure
    assert report.candidate_fraction > 0.5
    assert report.inference_fraction < 0.5
    assert report.candidate_fraction > report.inference_fraction
    # variance exists ("considerable variation depending on the number of rows")
    assert statistics.pstdev(report.per_table_seconds) > 0

    # larger tables cost more on average (coarse correlation check)
    annotator_timings = sorted(
        zip(
            [labeled.table.n_rows for labeled in tables],
            report.per_table_seconds,
        )
    )
    third = len(annotator_timings) // 3
    small_mean = statistics.fmean(t for _r, t in annotator_timings[:third])
    large_mean = statistics.fmean(t for _r, t in annotator_timings[-third:])
    assert large_mean > small_mean

    # timed unit: annotate one mid-sized table end to end
    from repro.core.annotator import TableAnnotator

    annotator = TableAnnotator(bench_world.annotator_view, model=trained_model)
    table = bench_datasets["web_manual"].tables[0].table
    benchmark(lambda: annotator.annotate(table))
