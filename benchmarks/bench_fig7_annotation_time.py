"""Figure 7: time spent annotating a corpus snapshot.

The paper annotates 250k tables at ~0.7 s/table average with high variance,
and reports that ~80% of time goes to lemma-index probing + similarity
computation while inference is <1%.  We annotate a scaled snapshot and check
the same cost structure: candidate/feature work dominates, message passing is
a small fraction, and per-table time grows with row count.

Because lemma probing dominates, the annotation pipeline's shared candidate
cache is the highest-leverage optimisation in the system: a second section
annotates a repeated-cell corpus with the cache off and on, checks the
annotations are identical, and reports the speedup plus hit rate.

With the candidate stage amortised, the residual per-table cost is message
passing itself: a third section annotates relation-heavy tables with the
scalar per-edge engine and the compiled batched engine, asserts identical
annotations and a >=3x inference-stage speedup.  Set ``REPRO_BENCH_SMOKE=1``
to run that section at CI scale.
"""

import os
import statistics
import time

from repro.core.annotator import AnnotatorConfig
from repro.eval.experiments import timing_experiment
from repro.eval.reporting import format_table
from repro.pipeline import AnnotationPipeline, PipelineConfig
from repro.pipeline.io import annotation_to_dict
from repro.tables.generator import (
    NoiseProfile,
    TableGeneratorConfig,
    WebTableGenerator,
)

#: REPRO_BENCH_SMOKE=1 shrinks the engine-speedup corpus so CI can run this
#: bench on every push without paying the full measurement
SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))


def test_fig7_annotation_time(
    bench_world, bench_datasets, trained_model, emit, benchmark
):
    tables = (
        bench_datasets["web_manual"].tables + bench_datasets["wiki_link"].tables
    )
    report = timing_experiment(bench_world, tables, trained_model)

    rows = [
        ["tables annotated", report.n_tables],
        ["mean seconds/table", round(report.mean_seconds, 4)],
        ["median seconds/table", round(report.median_seconds, 4)],
        ["p90 seconds/table", round(report.p90_seconds, 4)],
        ["candidate+similarity share", f"{report.candidate_fraction:.1%}"],
        ["inference share", f"{report.inference_fraction:.1%}"],
        ["candidate cache hit rate", f"{report.cache_hit_rate:.1%}"],
        ["lemma probes saved", report.cache_hits],
    ]
    emit(
        "fig7_annotation_time",
        format_table(
            ["Quantity", "Value"],
            rows,
            title="Figure 7 — annotation time breakdown (scaled snapshot)",
        ),
    )

    # the paper's cost structure
    assert report.candidate_fraction > 0.5
    assert report.inference_fraction < 0.5
    assert report.candidate_fraction > report.inference_fraction
    # variance exists ("considerable variation depending on the number of rows")
    assert statistics.pstdev(report.per_table_seconds) > 0
    # real corpora repeat cell strings; the shared cache must be absorbing some
    assert report.cache_hits > 0

    # larger tables cost more on average (coarse correlation check)
    annotator_timings = sorted(
        zip(
            [labeled.table.n_rows for labeled in tables],
            report.per_table_seconds,
        )
    )
    third = len(annotator_timings) // 3
    small_mean = statistics.fmean(t for _r, t in annotator_timings[:third])
    large_mean = statistics.fmean(t for _r, t in annotator_timings[-third:])
    assert large_mean > small_mean

    # timed unit: annotate one mid-sized table end to end through the pipeline
    pipeline = AnnotationPipeline(bench_world.annotator_view, model=trained_model)
    table = bench_datasets["web_manual"].tables[0].table
    benchmark(lambda: pipeline.annotate(table))


def test_fig7_inference_engine_speedup(bench_world, trained_model, emit):
    """Scalar vs batched message passing on relation-heavy tables.

    PR 1's shared caches amortised the candidate stage, leaving the per-edge
    Python BP loop as the dominant per-table cost on relation-heavy tables
    (φ5 factors grow as O(rows·columns²)).  The compiled engine must run the
    *inference stage* (graph build + Figure-11 message passing + decoding)
    at least 3x faster than the scalar reference while producing identical
    annotations.
    """
    generator = WebTableGenerator(
        bench_world.full,
        TableGeneratorConfig(
            seed=77,
            n_tables=6 if SMOKE else 24,
            rows_range=(28, 38),
            # force the second object column so every table carries several
            # column pairs — the φ4/φ5-heavy regime this engine targets
            extra_object_column_prob=1.0,
            noise=NoiseProfile.WIKI,
            id_prefix="fig7-relheavy",
        ),
    )
    tables = generator.generate()

    def run(engine: str) -> tuple[list[dict], object]:
        pipeline = AnnotationPipeline(
            bench_world.annotator_view,
            model=trained_model,
            config=PipelineConfig(annotator=AnnotatorConfig(engine=engine)),
        )
        annotations = [
            annotation_to_dict(a) for a in pipeline.annotate_corpus(tables)
        ]
        return annotations, pipeline.last_report

    run("batched")  # warm-up: NumPy/BLAS and allocator caches
    scalar_annotations, scalar_report = run("scalar")
    batched_annotations, batched_report = run("batched")
    speedup = scalar_report.inference_seconds / batched_report.inference_seconds

    emit(
        "fig7_inference_engine_speedup",
        format_table(
            ["Quantity", "Scalar", "Batched"],
            [
                ["tables (relation-heavy)", len(tables), len(tables)],
                [
                    "inference-stage seconds",
                    round(scalar_report.inference_seconds, 3),
                    round(batched_report.inference_seconds, 3),
                ],
                [
                    "inference share of total",
                    f"{scalar_report.inference_fraction:.1%}",
                    f"{batched_report.inference_fraction:.1%}",
                ],
                ["inference-stage speedup", "1.00x", f"{speedup:.2f}x"],
            ],
            title="Scalar vs batched BP engine (same annotations)",
        ),
    )

    # the engines must be interchangeable: identical labels everywhere
    assert batched_annotations == scalar_annotations
    # the batched engine makes inference scale with NumPy throughput
    assert speedup >= 3.0
    # and shrinks inference's share of the per-table budget
    assert batched_report.inference_fraction < scalar_report.inference_fraction


def test_fig7_candidate_cache_speedup(
    bench_world, bench_datasets, trained_model, emit
):
    """Cached vs uncached pipeline on a repeated-cell corpus.

    A corpus where most cell strings recur (here: the same snapshot passed
    three times, mimicking the country/person/title repetition of real web
    corpora) must annotate measurably faster with the shared cache, while
    producing byte-identical annotations.
    """
    snapshot = bench_datasets["web_manual"].tables[:12]
    corpus = snapshot * 3  # >=2/3 of cells repeat earlier ones

    def run(cache_size: int) -> tuple[list[dict], float, object]:
        pipeline = AnnotationPipeline(
            bench_world.annotator_view,
            model=trained_model,
            config=PipelineConfig(cache_size=cache_size),
        )
        start = time.perf_counter()
        annotations = [
            annotation_to_dict(a) for a in pipeline.annotate_corpus(corpus)
        ]
        return annotations, time.perf_counter() - start, pipeline.last_report

    run(0)  # warm-up: NumPy/BLAS and allocator caches, excluded from timing
    uncached_annotations, uncached_seconds, uncached_report = run(0)
    cached_annotations, cached_seconds, cached_report = run(100_000)

    emit(
        "fig7_candidate_cache_speedup",
        format_table(
            ["Quantity", "Value"],
            [
                ["tables (3× repeated snapshot)", len(corpus)],
                ["uncached seconds", round(uncached_seconds, 3)],
                ["cached seconds", round(cached_seconds, 3)],
                ["speedup", f"{uncached_seconds / cached_seconds:.2f}x"],
                [
                    "candidate-stage speedup",
                    f"{uncached_report.candidate_seconds / cached_report.candidate_seconds:.2f}x",
                ],
                ["cache hit rate", f"{cached_report.cache.hit_rate:.1%}"],
                ["lemma probes saved", cached_report.cache.hits],
                [
                    "feature-block hit rate",
                    f"{cached_report.block_cache.hit_rate:.1%}",
                ],
            ],
            title="Candidate cache on a repeated-cell corpus",
        ),
    )

    # identical output — caching must not change a single label
    assert cached_annotations == uncached_annotations
    # most lookups hit: the corpus repeats its cells
    assert cached_report.cache.hit_rate > 0.5
    assert uncached_report.cache is None
    # measurably faster end to end, with the win concentrated in the
    # candidate stage the cache targets
    assert cached_seconds < uncached_seconds
    assert (
        cached_report.candidate_seconds < 0.9 * uncached_report.candidate_seconds
    )
