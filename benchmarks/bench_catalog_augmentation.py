"""Catalog augmentation: recovering dropped facts from annotated tables.

The paper's motivating claim (Sections 1.2 and 7): "The seed tuples we start
with in our catalog are only a small fraction of all the tuples we find and
annotate" — annotation turns the table corpus into new catalog knowledge.
Our synthetic world makes this measurable: the annotator's catalog view had
a known set of tuples *dropped*; the augmenter must propose new tuples at
high precision and recover part of the dropped set.
"""

from repro.core.augmentation import CatalogAugmenter, recovered_fraction
from repro.eval.reporting import format_table
from repro.pipeline import AnnotationPipeline

THRESHOLDS = (0.0, 0.5, 1.0, 2.0)


def test_catalog_augmentation(
    bench_world, bench_datasets, trained_model, emit, benchmark
):
    pipeline = AnnotationPipeline(bench_world.annotator_view, model=trained_model)
    tables = bench_datasets["wiki_manual"].tables + bench_datasets["web_manual"].tables
    annotations = pipeline.annotate_corpus(tables)

    rows = []
    stats_by_threshold = {}
    for threshold in THRESHOLDS:
        augmenter = CatalogAugmenter(
            bench_world.annotator_view, min_confidence=threshold
        )
        for annotation in annotations:
            augmenter.add_annotated_table(annotation)
        report = augmenter.report()
        stats = recovered_fraction(
            report.tuples, bench_world.full, bench_world.annotator_view
        )
        stats_by_threshold[threshold] = stats
        rows.append(
            [
                f"conf>={threshold:g}",
                int(stats["proposals"]),
                round(100 * stats["precision"], 1),
                round(100 * stats["recall_of_dropped"], 1),
            ]
        )
    emit(
        "catalog_augmentation",
        format_table(
            ["Filter", "#Proposals", "Precision (%)", "Recall of dropped (%)"],
            rows,
            title=(
                "Catalog augmentation — new-tuple proposals vs the "
                f"{int(stats_by_threshold[0.0]['dropped'])} dropped tuples"
            ),
        ),
    )

    # shape: annotation mines real new facts, and confidence filtering buys
    # precision at the cost of recall
    assert stats_by_threshold[0.0]["recall_of_dropped"] > 0.05
    assert (
        stats_by_threshold[2.0]["precision"]
        >= stats_by_threshold[0.0]["precision"]
    )
    assert stats_by_threshold[1.0]["precision"] > 0.6

    def mine_once():
        augmenter = CatalogAugmenter(bench_world.annotator_view)
        for annotation in annotations[:10]:
            augmenter.add_annotated_table(annotation)
        return augmenter.report()

    benchmark(mine_once)
