"""Figure 6 drill-down: Majority threshold sweep between 50% and 100%.

Paper (Section 6.1.1): "We hunted for thresholds in-between LCA's 100% and
Majority's 50% and obtained the best type accuracy of 46% with a 60%
threshold.  However, even these numbers are worse than 56% accuracy that
Collective offers."  Shape asserted: the best sweep point still loses to
Collective, and the F=100 end (LCA-like) is the worst.
"""

from repro.eval.experiments import evaluate_annotation, threshold_sweep
from repro.eval.reporting import format_table, percent

THRESHOLDS = (50.0, 60.0, 70.0, 80.0, 90.0, 100.0)


def test_threshold_sweep(bench_world, bench_datasets, trained_model, emit, benchmark):
    dataset = bench_datasets["wiki_manual"]
    sweep = threshold_sweep(
        bench_world, dataset, trained_model, thresholds=THRESHOLDS
    )
    collective = evaluate_annotation(
        bench_world, dataset, trained_model, algorithms=("collective",)
    )["collective"].type_.mean_f1

    rows = [[f"F={threshold:g}%", percent(sweep[threshold])] for threshold in THRESHOLDS]
    rows.append(["Collective", percent(collective)])
    emit(
        "fig6_threshold_sweep",
        format_table(
            ["Setting", "Type F1 (%)"],
            rows,
            title="Majority threshold sweep on wiki_manual (paper §6.1.1)",
        ),
    )

    best_threshold_score = max(sweep.values())
    assert collective > best_threshold_score, (
        "Collective must beat every Majority threshold"
    )
    # F=100 (the LCA end) is never the best point of the sweep
    assert sweep[100.0] <= best_threshold_score

    # timed unit: one full sweep over a handful of tables
    small = type(dataset)(name="s", tables=dataset.tables[:4], noise=dataset.noise)
    benchmark(
        lambda: threshold_sweep(
            bench_world, small, trained_model, thresholds=(50.0, 100.0)
        )
    )
