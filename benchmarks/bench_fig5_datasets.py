"""Figure 5: summary of the four ground-truth dataset analogues.

Paper's row shape: dataset, #tables, average #rows, total entity/type/
relation annotations.  Ours reports the generated analogues (sizes are
scaled; proportions match: Web Manual largest manually-annotated set,
Wiki Link the entity-only bulk set).
"""

from repro.eval.datasets import DatasetSizes, build_standard_datasets
from repro.eval.reporting import format_table

DATASET_ORDER = ("wiki_manual", "web_manual", "web_relations", "wiki_link")


def test_fig5_dataset_summary(bench_world, bench_datasets, emit, benchmark):
    rows = []
    for name in DATASET_ORDER:
        summary = bench_datasets[name].summary()
        rows.append(
            [
                name,
                int(summary["tables"]),
                round(summary["avg_rows"], 1),
                int(summary["entity_annotations"]),
                int(summary["type_annotations"]),
                int(summary["relation_annotations"]),
            ]
        )
    emit(
        "fig5_datasets",
        format_table(
            ["Dataset", "#Tables", "Avg #rows", "Entity", "Type", "Rel"],
            rows,
            title="Figure 5 — data set summary (generated analogues)",
        ),
    )

    # shape assertions mirroring the paper's Figure 5
    by_name = {row[0]: row for row in rows}
    assert by_name["wiki_link"][3] > by_name["wiki_manual"][3]  # bulk entity truth
    assert by_name["web_relations"][3] == 0  # relations only
    assert by_name["web_relations"][5] > 0
    assert by_name["wiki_link"][4] == 0  # entities only

    # timed unit: regenerating a small dataset batch
    benchmark(
        lambda: build_standard_datasets(
            bench_world,
            DatasetSizes(wiki_manual=6, web_manual=6, web_relations=4, wiki_link=8),
        )
    )
