"""Load benchmark for the pre-fork serving tier: throughput vs workers.

The serving story of the deployment section: one read-only bundle, N forked
workers sharing its pages, a dispatcher load-balancing a closed-loop client
population.  This bench drives the same annotate traffic through pools of
increasing size and records aggregate throughput and client-side latency
percentiles per worker count into ``BENCH_serve.json``.

Two invariants are asserted at every scale, then a cpu-aware scaling gate:

* **byte identity** — every response at every worker count is byte-identical
  to the single-worker response for the same table (the pool must be an
  invisible optimisation);
* **no drops** — the admission queue is sized so the closed-loop population
  never sheds; every request succeeds.
* **scaling** — with >= 4 CPUs a 4-worker pool must beat one worker by the
  gated ratio (>= 2.5x full-scale, >= 1.6x at CI smoke scale, where the
  corpus is small enough that fixed costs blunt the slope).  On fewer CPUs
  the gate degrades to a bounded-overhead check: the pool pays fork +
  pipe + dispatch bookkeeping, and on one core that machinery must not
  cost more than about half the inline throughput.  The committed
  ``BENCH_serve.json`` records ``cpu_count`` next to every number, so a
  1-core container's honest numbers are never mistaken for a scaling
  failure (same policy as the process-executor sections of BENCH_fig7).

A second section, ``batching``, compares serve-time dynamic micro-batching
on vs off over one shared single-worker dispatcher: batching on wraps it in
the :class:`BatchingBackend` coalescer so concurrent requests ride fused
super-batches.  It records throughput + p50/p99 at concurrency 8 and 32 for
both modes, the coalesced batch-size histogram, and a ``byte_identical``
flag asserting on-mode responses match off-mode byte for byte.

Request tables are all distinct: repeated tables would hit the workers'
candidate caches and measure queueing machinery rather than annotation.
Run with ``REPRO_BENCH_SMOKE=1`` for the CI-scale variant.
"""

from __future__ import annotations

import hashlib
import os
import queue
import threading
import time

from repro.api.config import ServeConfig, SessionConfig
from repro.api.types import encode_json
from repro.eval.reporting import format_table
from repro.serve.bundle import build_bundle
from repro.serve.dispatcher import BatchingBackend, Dispatcher
from repro.serve.metrics import percentile
from repro.tables.generator import (
    NoiseProfile,
    TableGeneratorConfig,
    WebTableGenerator,
)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: pool sizes measured (1 is the scaling denominator)
WORKER_COUNTS = (1, 2, 4)
#: distinct request tables (each annotated once per pool size)
N_TABLES = 32 if SMOKE else 96
#: closed-loop clients per measured pool size
CLIENTS = 8


def _build_request_corpus(world):
    """Distinct request tables + a few warmup tables, all over the world."""
    tables = WebTableGenerator(
        world.full,
        TableGeneratorConfig(
            seed=1117, n_tables=N_TABLES + 4, noise=NoiseProfile.WIKI
        ),
    ).generate()
    payloads = [
        {"table": labeled.table.to_dict(), "include_timing": False}
        for labeled in tables[:N_TABLES]
    ]
    warmup = [
        {"table": labeled.table.to_dict(), "include_timing": False}
        for labeled in tables[N_TABLES:]
    ]
    return payloads, warmup


def _drive(
    dispatcher: Dispatcher | BatchingBackend, payloads: list[dict], clients: int
):
    """Closed-loop load: ``clients`` threads drain the request set once.

    Returns (wall_seconds, sorted per-request latencies, responses by
    payload index).
    """
    work: queue.Queue[int] = queue.Queue()
    for index in range(len(payloads)):
        work.put(index)
    latencies: list[float] = []
    responses: dict[int, dict] = {}
    failures: list[Exception] = []
    lock = threading.Lock()

    def client() -> None:
        while True:
            try:
                index = work.get_nowait()
            except queue.Empty:
                return
            started = time.perf_counter()
            try:
                response = dispatcher.call("annotate", payloads[index])
            except Exception as error:  # noqa: BLE001 - recorded, re-raised
                with lock:
                    failures.append(error)
                return
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
                responses[index] = response

    threads = [threading.Thread(target=client) for _ in range(clients)]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    if failures:
        raise AssertionError(f"load run failed: {failures[0]!r}") from failures[0]
    return wall, sorted(latencies), responses


def test_serve_load_scaling(bench_world, tmp_path, emit, emit_json):
    bundle_path = tmp_path / "bundle"
    # the bundle corpus only feeds /search; /annotate traffic carries its
    # own tables, so a handful of tables keeps bundle build out of the cost
    bundle_corpus = WebTableGenerator(
        bench_world.full,
        TableGeneratorConfig(seed=5, n_tables=8, noise=NoiseProfile.WIKI),
    ).generate()
    build_bundle(bundle_path, bench_world.annotator_view, bundle_corpus)
    payloads, warmup = _build_request_corpus(bench_world)

    cpu_count = os.cpu_count() or 1
    results: dict[int, dict] = {}
    reference_digests: dict[int, str] = {}

    for workers in WORKER_COUNTS:
        config = SessionConfig(
            serve=ServeConfig(
                workers=workers,
                queue_depth=len(payloads) + CLIENTS,  # never shed
                shed_timeout_seconds=60.0,
                request_timeout_seconds=600.0,
            )
        )
        dispatcher = Dispatcher(bundle_path, config=config)
        try:
            # one pass of warmup tables per worker: first-request costs
            # (lazy pipeline state) stay out of the measurement
            _drive(dispatcher, warmup * workers, clients=workers)
            wall, latencies, responses = _drive(
                dispatcher, payloads, clients=CLIENTS
            )
            snapshot = dispatcher.dispatch_metrics.snapshot()
        finally:
            dispatcher.shutdown(drain_timeout=10.0)

        assert len(responses) == len(payloads), "requests were dropped"
        assert snapshot["shed_total"] == 0, "load run shed requests"
        digests = {
            index: hashlib.sha256(
                encode_json(response).encode("utf-8")
            ).hexdigest()
            for index, response in responses.items()
        }
        if not reference_digests:
            reference_digests = digests
        else:
            assert digests == reference_digests, (
                f"{workers}-worker responses diverged from 1-worker responses"
            )
        results[workers] = {
            "wall_seconds": round(wall, 4),
            "throughput_rps": round(len(payloads) / wall, 3),
            "latency_seconds": {
                "p50": round(percentile(latencies, 0.50), 5),
                "p99": round(percentile(latencies, 0.99), 5),
                "max": round(latencies[-1], 5),
            },
            "queue_wait_p99": snapshot["queue_wait_seconds"]["p99"],
        }

    base = results[WORKER_COUNTS[0]]["throughput_rps"]
    scaling = {
        str(workers): round(results[workers]["throughput_rps"] / base, 3)
        for workers in WORKER_COUNTS
    }

    emit(
        "serve_load_scaling",
        format_table(
            ["workers", "throughput rps", "p50 s", "p99 s", "vs 1 worker"],
            [
                [
                    workers,
                    results[workers]["throughput_rps"],
                    results[workers]["latency_seconds"]["p50"],
                    results[workers]["latency_seconds"]["p99"],
                    f'{scaling[str(workers)]:.2f}x',
                ]
                for workers in WORKER_COUNTS
            ],
            title=(
                "Serving tier — annotate throughput vs pre-fork workers "
                f"({N_TABLES} distinct tables, {CLIENTS} clients, "
                f"{cpu_count} CPU core(s))"
            ),
        ),
    )
    emit_json(
        "serve",
        "load_scaling",
        {
            "cpu_count": cpu_count,
            "tables": len(payloads),
            "clients": CLIENTS,
            "byte_identical_across_worker_counts": True,
            "per_workers": {str(w): results[w] for w in WORKER_COUNTS},
            "scaling_vs_one_worker": scaling,
        },
    )

    ratio_at_4 = scaling["4"]
    if cpu_count >= 4:
        # the tentpole's reason to exist: near-linear aggregate scaling
        assert ratio_at_4 >= (1.6 if SMOKE else 2.5), (
            f"4-worker scaling {ratio_at_4:.2f}x below the gate on "
            f"{cpu_count} CPUs"
        )
    elif cpu_count >= 2:
        assert scaling["2"] >= 0.9, (
            f"2 workers on {cpu_count} CPUs should roughly hold throughput, "
            f"got {scaling['2']:.2f}x"
        )
    else:
        # one core: pool machinery may cost, but boundedly (measured ~0.48x
        # in the 1-core container; 0.35 leaves noise headroom)
        assert ratio_at_4 >= 0.35, (
            f"pool overhead on 1 CPU too high: {ratio_at_4:.2f}x"
        )


#: closed-loop client populations for the micro-batching comparison
BATCHING_CONCURRENCY = (8, 32)
#: distinct request tables for the batching section
BATCHING_TABLES = 32 if SMOKE else 96


def _build_batching_corpus(world):
    """Request tables that cluster into a few shape buckets.

    Real web-table traffic is template-rendered — one site emits thousands
    of tables sharing a handful of layouts — so the batching corpus narrows
    the generator's row range to reproduce that clustering.  Tables are
    still all distinct (no cache-hit flattery), they just share shapes.
    """
    tables = WebTableGenerator(
        world.full,
        TableGeneratorConfig(
            seed=2229,
            n_tables=BATCHING_TABLES + 4,
            rows_range=(8, 12),
            noise=NoiseProfile.WIKI,
        ),
    ).generate()
    payloads = [
        {"table": labeled.table.to_dict(), "include_timing": False}
        for labeled in tables[:BATCHING_TABLES]
    ]
    warmup = [
        {"table": labeled.table.to_dict(), "include_timing": False}
        for labeled in tables[BATCHING_TABLES:]
    ]
    return payloads, warmup


def test_serve_batching(bench_world, tmp_path, emit, emit_json):
    """Dynamic micro-batching on vs off: same dispatcher, same tables.

    Batching on wraps the dispatcher in the :class:`BatchingBackend`
    coalescer, so concurrent requests ride fused super-batches; batching
    off drives the dispatcher directly (one table per worker round trip).
    Responses must be byte-identical between the modes at every
    concurrency; the throughput gate scales with available cores.
    """
    bundle_path = tmp_path / "bundle"
    bundle_corpus = WebTableGenerator(
        bench_world.full,
        TableGeneratorConfig(seed=5, n_tables=8, noise=NoiseProfile.WIKI),
    ).generate()
    build_bundle(bundle_path, bench_world.annotator_view, bundle_corpus)
    payloads, warmup = _build_batching_corpus(bench_world)

    cpu_count = os.cpu_count() or 1
    config = SessionConfig(
        serve=ServeConfig(
            workers=1,  # isolate the coalescing effect from pool scaling
            queue_depth=len(payloads) + max(BATCHING_CONCURRENCY),
            shed_timeout_seconds=60.0,
            request_timeout_seconds=600.0,
            batching=True,
            max_batch_size=32,
            batch_wait_ms=15.0,
        )
    )
    dispatcher = Dispatcher(bundle_path, config=config)
    per_concurrency: dict[str, dict] = {}
    histogram: dict[str, int] = {}
    byte_identical = True
    try:
        # warm both execution paths (lazy pipeline state + fused kernels)
        _drive(dispatcher, warmup, clients=2)
        warm_backend = BatchingBackend(dispatcher, config=config)
        _drive(warm_backend, warmup * 4, clients=8)
        warm_backend.drain_batchers(timeout=10.0)

        for clients in BATCHING_CONCURRENCY:
            entry: dict[str, dict | float] = {}
            digests: dict[str, dict[int, str]] = {}
            for mode in ("off", "on"):
                backend: Dispatcher | BatchingBackend = (
                    BatchingBackend(dispatcher, config=config)
                    if mode == "on"
                    else dispatcher
                )
                try:
                    wall, latencies, responses = _drive(
                        backend, payloads, clients=clients
                    )
                finally:
                    if isinstance(backend, BatchingBackend):
                        snapshot = backend.batch_metrics.snapshot()
                        for size, count in snapshot[
                            "batch_size_histogram"
                        ].items():
                            histogram[size] = histogram.get(size, 0) + count
                        backend.drain_batchers(timeout=10.0)
                assert len(responses) == len(payloads), "requests dropped"
                digests[mode] = {
                    index: hashlib.sha256(
                        encode_json(response).encode("utf-8")
                    ).hexdigest()
                    for index, response in responses.items()
                }
                entry[mode] = {
                    "wall_seconds": round(wall, 4),
                    "throughput_rps": round(len(payloads) / wall, 3),
                    "latency_seconds": {
                        "p50": round(percentile(latencies, 0.50), 5),
                        "p99": round(percentile(latencies, 0.99), 5),
                        "max": round(latencies[-1], 5),
                    },
                }
            byte_identical = byte_identical and digests["on"] == digests["off"]
            assert digests["on"] == digests["off"], (
                f"batched responses diverged at concurrency {clients}"
            )
            entry["speedup"] = round(
                entry["on"]["throughput_rps"] / entry["off"]["throughput_rps"],
                3,
            )
            per_concurrency[str(clients)] = entry
    finally:
        dispatcher.shutdown(drain_timeout=10.0)

    emit(
        "serve_batching",
        format_table(
            ["clients", "off rps", "on rps", "speedup", "on p99 s"],
            [
                [
                    clients,
                    per_concurrency[str(clients)]["off"]["throughput_rps"],
                    per_concurrency[str(clients)]["on"]["throughput_rps"],
                    f'{per_concurrency[str(clients)]["speedup"]:.2f}x',
                    per_concurrency[str(clients)]["on"]["latency_seconds"]["p99"],
                ]
                for clients in BATCHING_CONCURRENCY
            ],
            title=(
                "Serving tier — dynamic micro-batching on vs off "
                f"({BATCHING_TABLES} distinct tables, 1 worker, "
                f"{cpu_count} CPU core(s))"
            ),
        ),
    )
    emit_json(
        "serve",
        "batching",
        {
            "cpu_count": cpu_count,
            "tables": len(payloads),
            "workers": 1,
            "max_batch_size": 32,
            "batch_wait_ms": 15.0,
            "byte_identical": byte_identical,
            "batch_size_histogram": histogram,
            "per_concurrency": per_concurrency,
        },
    )

    assert byte_identical
    top_speedup = per_concurrency[str(max(BATCHING_CONCURRENCY))]["speedup"]
    if cpu_count >= 2:
        # the tentpole gate: coalescing must amortize per-table overhead
        assert top_speedup >= 1.3, (
            f"batching speedup {top_speedup:.2f}x below the 1.3x gate at "
            f"concurrency {max(BATCHING_CONCURRENCY)} on {cpu_count} CPUs"
        )
    else:
        # batching is amortization, not parallelism — it should pay even on
        # one core, just with less headroom over the coalescer's own cost
        assert top_speedup >= 1.05, (
            f"batching on 1 CPU should still win, got {top_speedup:.2f}x"
        )
