"""Figure 6: entity / type / relation accuracy — LCA vs Majority vs Collective.

Regenerates the paper's three sub-tables.  Expected shape (paper values in
brackets): Collective wins every task on every dataset; Majority beats LCA on
entities and types; type accuracy is higher on the clean Wiki-style data than
on the noisy Web-style data for Collective [56.12 vs 43.23].
"""

import pytest

from repro.eval.experiments import evaluate_annotation
from repro.eval.reporting import format_table, percent

ENTITY_DATASETS = ("wiki_manual", "web_manual", "wiki_link")
TYPE_DATASETS = ("wiki_manual", "web_manual")
RELATION_DATASETS = ("wiki_manual", "web_relations", "web_manual")


@pytest.fixture(scope="module")
def figure6(bench_world, bench_datasets, trained_model):
    """All scores, computed once for the whole module."""
    return {
        name: evaluate_annotation(bench_world, bench_datasets[name], trained_model)
        for name in ("wiki_manual", "web_manual", "wiki_link", "web_relations")
    }


def _render_figure6(figure6):
    entity_rows = [
        [
            name,
            percent(figure6[name]["lca"].entity.accuracy),
            percent(figure6[name]["majority"].entity.accuracy),
            percent(figure6[name]["collective"].entity.accuracy),
        ]
        for name in ENTITY_DATASETS
    ]
    type_rows = [
        [
            name,
            percent(figure6[name]["lca"].type_.mean_f1),
            percent(figure6[name]["majority"].type_.mean_f1),
            percent(figure6[name]["collective"].type_.mean_f1),
        ]
        for name in TYPE_DATASETS
    ]
    relation_rows = [
        [
            name,
            "-",  # the paper reports no LCA relation method
            percent(figure6[name]["majority"].relation.mean_f1),
            percent(figure6[name]["collective"].relation.mean_f1),
        ]
        for name in RELATION_DATASETS
    ]
    return "\n\n".join(
        [
            format_table(
                ["Dataset", "LCA", "Majority", "Collective"],
                entity_rows,
                title="Figure 6a — entity annotation accuracy (%)",
            ),
            format_table(
                ["Dataset", "LCA", "Majority", "Collective"],
                type_rows,
                title="Figure 6b — type annotation F1 (%)",
            ),
            format_table(
                ["Dataset", "LCA", "Majority", "Collective"],
                relation_rows,
                title="Figure 6c — relation annotation F1 (%)",
            ),
        ]
    )


def test_fig6_tables(figure6, emit):
    emit("fig6_annotation_accuracy", _render_figure6(figure6))


def test_fig6_collective_wins_entities(figure6):
    for name in ENTITY_DATASETS:
        scores = figure6[name]
        assert (
            scores["collective"].entity.accuracy
            > scores["majority"].entity.accuracy
            > 0
        )
        assert scores["collective"].entity.accuracy > scores["lca"].entity.accuracy


def test_fig6_collective_wins_types(figure6):
    for name in TYPE_DATASETS:
        scores = figure6[name]
        assert scores["collective"].type_.mean_f1 > scores["majority"].type_.mean_f1
        assert scores["collective"].type_.mean_f1 > scores["lca"].type_.mean_f1


def test_fig6_majority_beats_lca_on_types(figure6):
    """The paper's Figure 6b ordering: LCA is the weakest type annotator."""
    for name in TYPE_DATASETS:
        scores = figure6[name]
        assert scores["majority"].type_.mean_f1 > scores["lca"].type_.mean_f1


def test_fig6_clean_beats_noisy_for_collective_types(figure6):
    assert (
        figure6["wiki_manual"]["collective"].type_.mean_f1
        > figure6["web_manual"]["collective"].type_.mean_f1
    )


def test_fig6_collective_wins_relations(figure6):
    for name in RELATION_DATASETS:
        scores = figure6[name]
        assert (
            scores["collective"].relation.mean_f1
            >= scores["majority"].relation.mean_f1
        )


def test_fig6_timing(figure6, emit, bench_world, bench_datasets, trained_model, benchmark):
    """Timed unit: the three algorithms on one clean table.

    Also emits the full Figure-6 tables and re-checks the headline shape so
    that a ``--benchmark-only`` run still regenerates and validates the
    figure.
    """
    emit("fig6_annotation_accuracy", _render_figure6(figure6))
    for name in TYPE_DATASETS:
        scores = figure6[name]
        assert scores["collective"].type_.mean_f1 > scores["majority"].type_.mean_f1
        assert scores["majority"].type_.mean_f1 > scores["lca"].type_.mean_f1
    for name in ENTITY_DATASETS:
        scores = figure6[name]
        assert scores["collective"].entity.accuracy > scores["lca"].entity.accuracy
    dataset = bench_datasets["wiki_manual"]

    def run():
        evaluate_annotation(
            bench_world,
            type(dataset)(
                name="one", tables=dataset.tables[:1], noise=dataset.noise
            ),
            trained_model,
        )

    benchmark(run)
