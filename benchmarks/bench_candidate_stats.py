"""Section 6.1.1 candidate statistics + candidate-cap ablation.

Paper: "the typical number of entities between which the algorithms had to
choose for each cell was around 7-8" and "the typical number of types ...
for each column was in the hundreds" (on YAGO's 2M-entity scale; our world is
~450 entities, so tens of candidate types is the proportional analogue).
Also ablates the per-cell top-K retrieval cap from DESIGN.md decision 3.
"""

from repro.core.annotator import AnnotatorConfig, TableAnnotator
from repro.eval.experiments import candidate_statistics
from repro.eval.metrics import entity_accuracy
from repro.eval.reporting import format_table


def test_candidate_statistics(bench_world, bench_datasets, emit, benchmark):
    stats = candidate_statistics(
        bench_world, bench_datasets["web_manual"].tables
    )
    rows = [
        ["tables", int(stats["n_tables"])],
        ["avg candidate entities / cell", round(stats["avg_entity_candidates"], 2)],
        ["avg candidate types / column", round(stats["avg_type_candidates"], 2)],
        ["avg candidate relations / pair", round(stats["avg_relation_candidates"], 2)],
    ]
    emit(
        "candidate_stats",
        format_table(
            ["Quantity", "Value"],
            rows,
            title="Candidate-space statistics (paper §6.1.1)",
        ),
    )
    # several alternatives per cell, well above one (ambiguity exists) and
    # bounded by the configured top-K of 8 (the paper's observed 7-8)
    assert 1.5 <= stats["avg_entity_candidates"] <= 8.0
    assert stats["avg_type_candidates"] >= 10

    table = bench_datasets["web_manual"].tables[0].table
    annotator = TableAnnotator(bench_world.annotator_view)
    benchmark(lambda: annotator.build_problem(table))


def test_top_k_ablation(bench_world, bench_datasets, trained_model, emit, benchmark):
    """Entity accuracy as the retrieval cap K varies (DESIGN.md decision 3)."""
    tables = bench_datasets["wiki_manual"].tables[:12]
    rows = []
    accuracies = {}
    for top_k in (2, 4, 8, 16):
        annotator = TableAnnotator(
            bench_world.annotator_view,
            model=trained_model,
            config=AnnotatorConfig(top_k_entities=top_k),
        )
        correct = total = 0
        for labeled in tables:
            annotation = annotator.annotate(labeled.table)
            counts = entity_accuracy(labeled.truth, annotation)
            correct += counts.correct
            total += counts.total
        accuracies[top_k] = correct / total
        rows.append([f"K={top_k}", round(100 * accuracies[top_k], 2)])
    emit(
        "topk_ablation",
        format_table(
            ["Retrieval cap", "Entity accuracy (%)"],
            rows,
            title="Ablation — per-cell candidate cap K",
        ),
    )
    # a tiny cap must hurt: truth often falls outside the candidate set
    assert accuracies[8] >= accuracies[2]

    # timed unit: candidate generation at the default cap
    annotator = TableAnnotator(bench_world.annotator_view, model=trained_model)
    benchmark(lambda: annotator.build_problem(tables[0].table))
