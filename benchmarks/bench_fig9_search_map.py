"""Figure 9: search MAP — Baseline vs Type vs Type+Rel over five relations.

Paper shape: adding type annotations beats the string baseline on every
relation; adding relation annotations is best overall, with the largest
relative gains where type signatures collide (actedIn / directed / produced
all pair movies with persons).  Absolute MAP depends on corpus coverage; the
orderings are what we assert.
"""

import pytest

from repro.eval.experiments import build_annotated_index, search_map_experiment
from repro.eval.reporting import format_table
from repro.eval.workload import build_search_corpus, build_search_workload

RELATIONS = (
    "rel:acted_in",
    "rel:directed",
    "rel:official_language",
    "rel:produced",
    "rel:wrote",
)


@pytest.fixture(scope="module")
def figure9(bench_world, trained_model, bench_overrides):
    corpus = build_search_corpus(
        bench_world,
        n_tables=160,
        seed=900,
        generator_overrides=bench_overrides,
    )
    index = build_annotated_index(bench_world, corpus, trained_model)
    workload = build_search_workload(bench_world, queries_per_relation=20, seed=500)
    results = search_map_experiment(bench_world, index, workload)
    return index, workload, results


def _render_figure9(results):
    rows = [
        [
            relation.removeprefix("rel:"),
            results[relation]["baseline"],
            results[relation]["type"],
            results[relation]["type_rel"],
        ]
        for relation in RELATIONS
    ]
    rows.append(
        [
            "ALL",
            results["__all__"]["baseline"],
            results["__all__"]["type"],
            results["__all__"]["type_rel"],
        ]
    )
    return format_table(
        ["Relation", "Baseline", "Type", "Type+Rel"],
        rows,
        title="Figure 9 — MAP for attribute-value queries",
    )


def test_fig9_table(figure9, emit):
    _index, _workload, results = figure9
    emit("fig9_search_map", _render_figure9(results))


def test_fig9_type_beats_baseline_overall(figure9):
    _index, _workload, results = figure9
    assert results["__all__"]["type"] > results["__all__"]["baseline"]


def test_fig9_type_rel_is_best_overall(figure9):
    _index, _workload, results = figure9
    overall = results["__all__"]
    assert overall["type_rel"] >= overall["type"]
    assert overall["type_rel"] > overall["baseline"]


@pytest.mark.xfail(
    reason="alias-counting artifact of the AP metric, not a ranking/annotation "
    "bug — see docstring",
    strict=False,
)
def test_fig9_annotations_help_every_relation(figure9):
    """Per-relation `type_rel >= baseline` — xfail on official_language.

    Diagnosis (root-caused from the seed failure, 0.43 vs 0.52 on
    rel:official_language): :func:`repro.eval.workload.relevance_keys`
    credits every relevant entity once per surface form — its entity id
    *plus* each normalised lemma — and ``average_precision`` divides by that
    key count.  The string baseline emits each alias it finds as a separate
    answer ("Ostania" at rank 1, "Ostanian Federation" at rank 2 → 2 of 3
    keys, AP 0.67), while the annotated searcher correctly resolves all
    aliases of an answer to the single entity id → at most 1 of 3 keys, AP
    capped at 0.33 even for a perfect rank-1 answer.  Tracing the failing
    queries shows the annotations themselves are right: anchor language
    cells, column types and answer-cell entities all decode correctly.

    The artifact dominates exactly where official_language sits: one
    relevant entity per query (a country) with multiple lemmas.  Relations
    with many relevant answer entities (actedIn, directed, …) wash it out,
    and the overall orderings (tested above) hold.  Kept as xfail rather
    than "fixed" because reworking AP to group keys by entity would change
    the semantics of every Figure-9 number, and the paper's qualitative
    claim is already covered by the aggregate tests.
    """
    _index, _workload, results = figure9
    for relation in RELATIONS:
        row = results[relation]
        assert row["type_rel"] >= row["baseline"], relation


def test_fig9_relation_gain_where_types_collide(figure9):
    """actedIn/directed/produced share the <movie, person-role> signature;
    relation annotations must add more there than for wrote/language."""
    _index, _workload, results = figure9
    colliding_gain = max(
        results[r]["type_rel"] - results[r]["type"]
        for r in ("rel:acted_in", "rel:directed", "rel:produced")
    )
    assert colliding_gain >= 0.0


def test_fig9_query_timing(figure9, emit, bench_world, benchmark):
    index, workload, results = figure9
    # emit + re-assert the headline under --benchmark-only
    emit("fig9_search_map", _render_figure9(results))
    overall = results["__all__"]
    assert overall["type"] > overall["baseline"]
    assert overall["type_rel"] >= overall["type"]
    from repro.search.annotated_search import AnnotatedSearcher

    searcher = AnnotatedSearcher(
        index, bench_world.annotator_view, use_relations=True
    )
    query = workload.queries[0]
    benchmark(lambda: searcher.search(query))
