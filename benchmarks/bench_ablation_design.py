"""Ablations of DESIGN.md design decisions beyond the paper's own figures.

* missing-link repair on/off — the Section-4.2.3 repair feature,
* Figure-11 paper schedule vs generic flooding BP,
* collective vs relation-free (Figure 2) inference.
"""

import numpy as np

from repro.core.annotator import AnnotatorConfig, TableAnnotator
from repro.core.problem import FeatureComputer
from repro.eval.metrics import entity_accuracy, relation_f1, type_f1, annotation_type_sets
from repro.eval.reporting import format_table, percent


class _NoRepairFeatureComputer(FeatureComputer):
    """FeatureComputer with the missing-link repair disabled: f3 signals are
    zero whenever E is not (transitively) contained in T."""

    def f3(self, type_id, entity_id):
        vector = super().f3(type_id, entity_id)
        if vector[-1] == 0.0:  # not contained -> kill the repaired signals
            return np.zeros_like(vector)
        return vector


def _score(annotator, tables):
    from repro.eval.metrics import MetricCounts

    entity, type_, relation = MetricCounts(), MetricCounts(), MetricCounts()
    for labeled in tables:
        annotation = annotator.annotate(labeled.table)
        entity.merge(entity_accuracy(labeled.truth, annotation))
        type_.merge(type_f1(labeled.truth, annotation_type_sets(annotation)))
        relation.merge(relation_f1(labeled.truth, annotation))
    return entity.accuracy, type_.mean_f1, relation.mean_f1


def test_missing_link_repair_ablation(
    bench_world, bench_datasets, trained_model, emit, benchmark
):
    tables = bench_datasets["wiki_manual"].tables
    with_repair = TableAnnotator(bench_world.annotator_view, model=trained_model)
    without_repair = TableAnnotator(bench_world.annotator_view, model=trained_model)
    without_repair.features = _NoRepairFeatureComputer(
        bench_world.annotator_view,
        trained_model.mode,
        without_repair.candidate_generator,
    )
    scores_with = _score(with_repair, tables)
    scores_without = _score(without_repair, tables)
    emit(
        "ablation_repair",
        format_table(
            ["Variant", "Entity acc (%)", "Type F1 (%)", "Rel F1 (%)"],
            [
                ["with repair"] + [percent(v) for v in scores_with],
                ["without repair"] + [percent(v) for v in scores_without],
            ],
            title="Ablation — missing-link repair feature (paper §4.2.3)",
        ),
    )
    # repair exists to recover type accuracy under catalog incompleteness
    assert scores_with[1] >= scores_without[1]

    benchmark(lambda: with_repair.annotate(tables[0].table))


def test_schedule_ablation(bench_world, bench_datasets, trained_model, emit, benchmark):
    """Paper Figure-11 schedule vs generic flooding BP: same quality here,
    the paper schedule converging at least as fast."""
    tables = bench_datasets["wiki_manual"].tables[:12]
    paper = TableAnnotator(
        bench_world.annotator_view,
        model=trained_model,
        config=AnnotatorConfig(schedule="paper"),
    )
    flooding = TableAnnotator(
        bench_world.annotator_view,
        model=trained_model,
        config=AnnotatorConfig(schedule="flooding", max_iterations=30),
    )
    rows = []
    paper_scores = _score(paper, tables)
    flooding_scores = _score(flooding, tables)
    rows.append(["paper (Fig 11)"] + [percent(v) for v in paper_scores])
    rows.append(["flooding"] + [percent(v) for v in flooding_scores])
    emit(
        "ablation_schedule",
        format_table(
            ["Schedule", "Entity acc (%)", "Type F1 (%)", "Rel F1 (%)"],
            rows,
            title="Ablation — message-passing schedule",
        ),
    )
    assert abs(paper_scores[0] - flooding_scores[0]) < 0.05

    table = tables[0].table
    benchmark(lambda: paper.annotate(table))


def test_relations_onoff_ablation(
    bench_world, bench_datasets, trained_model, emit, benchmark
):
    """Collective (full model) vs the polynomial special case without bcc'.

    This isolates what the φ4/φ5 coupling buys — the heart of the paper's
    'collective beats local' claim."""
    tables = bench_datasets["web_manual"].tables
    full = TableAnnotator(bench_world.annotator_view, model=trained_model)
    norel = TableAnnotator(
        bench_world.annotator_view,
        model=trained_model,
        config=AnnotatorConfig(with_relations=False),
    )
    full_scores = _score(full, tables)
    # relation F1 is undefined for the no-relation variant; compare e/t only
    entity_norel, type_norel, _ = _score(norel, tables)
    emit(
        "ablation_relations",
        format_table(
            ["Variant", "Entity acc (%)", "Type F1 (%)"],
            [
                ["full collective", percent(full_scores[0]), percent(full_scores[1])],
                ["no relation variables", percent(entity_norel), percent(type_norel)],
            ],
            title="Ablation — relation variables (phi4/phi5) on/off",
        ),
    )
    assert full_scores[0] >= entity_norel - 0.01
    assert full_scores[1] >= type_norel - 0.01

    benchmark(lambda: norel.annotate(tables[0].table))
