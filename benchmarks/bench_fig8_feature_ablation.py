"""Figure 8: type-entity compatibility settings — 1/sqrt(dist), 1/dist, IDF.

Paper values: entity accuracy is nearly flat across settings (83.9 / 84.3 /
85.4 on Wiki Manual), while type accuracy separates sharply — 1/sqrt(dist)
is the most robust (56.1 / 43.2) and IDF-alone collapses (40.3 / 26.0).

Shapes asserted here: (a) entity accuracy is flat across settings, and
(b) type F1 is *more sensitive* to the setting than entity accuracy.  The
paper's dramatic IDF-alone collapse does not reproduce at our catalog scale
(161 types vs YAGO's 249k — with so few confusable types the containment
gate does the discriminating regardless of setting); EXPERIMENTS.md records
this as a known deviation.
"""

import pytest

from repro.core.features import TypeEntityFeatureMode
from repro.core.learning import TrainingConfig
from repro.eval.experiments import feature_ablation
from repro.eval.reporting import format_table, percent

MODES = (
    TypeEntityFeatureMode.INV_SQRT_DIST,
    TypeEntityFeatureMode.INV_DIST,
    TypeEntityFeatureMode.IDF,
)


@pytest.fixture(scope="module")
def ablation(bench_world, bench_datasets):
    eval_sets = {
        "wiki_manual": bench_datasets["wiki_manual"],
        "web_manual": bench_datasets["web_manual"],
    }
    return feature_ablation(
        bench_world,
        bench_datasets["wiki_manual"].tables,
        eval_sets,
        modes=MODES,
        training=TrainingConfig(epochs=2, seed=0),
    )


def _render_figure8(ablation):
    entity_rows = []
    type_rows = []
    for dataset in ("wiki_manual", "web_manual"):
        entity_rows.append(
            [dataset]
            + [percent(ablation[mode.value][dataset]["entity_accuracy"]) for mode in MODES]
        )
        type_rows.append(
            [dataset]
            + [percent(ablation[mode.value][dataset]["type_f1"]) for mode in MODES]
        )
    return "\n\n".join(
        [
            format_table(
                ["Dataset", "1/sqrt(dist)", "1/dist", "IDF"],
                entity_rows,
                title="Figure 8a — entity accuracy by f3 setting (%)",
            ),
            format_table(
                ["Dataset", "1/sqrt(dist)", "1/dist", "IDF"],
                type_rows,
                title="Figure 8b — type F1 by f3 setting (%)",
            ),
        ]
    )


def test_fig8_tables(ablation, emit):
    emit("fig8_feature_ablation", _render_figure8(ablation))


def test_fig8_entity_accuracy_flat_across_settings(ablation):
    """Entity accuracy barely moves with the f3 setting (paper Fig 8a)."""
    for dataset in ("wiki_manual", "web_manual"):
        entity_values = [
            ablation[mode.value][dataset]["entity_accuracy"] for mode in MODES
        ]
        assert max(entity_values) - min(entity_values) < 0.05


def test_fig8_types_more_sensitive_than_entities(ablation):
    """Type labelling reacts to the compatibility setting more than entity
    labelling does (the qualitative core of paper Fig 8b vs 8a)."""
    type_spread = entity_spread = 0.0
    for dataset in ("wiki_manual", "web_manual"):
        type_values = [ablation[mode.value][dataset]["type_f1"] for mode in MODES]
        entity_values = [
            ablation[mode.value][dataset]["entity_accuracy"] for mode in MODES
        ]
        type_spread = max(type_spread, max(type_values) - min(type_values))
        entity_spread = max(entity_spread, max(entity_values) - min(entity_values))
    assert type_spread >= entity_spread


def test_fig8_sqrt_robust_on_noisy_types(ablation):
    """1/sqrt(dist) never collapses on the noisy dataset (paper: it is the
    robust setting)."""
    assert (
        ablation["inv_sqrt_dist"]["web_manual"]["type_f1"]
        >= ablation["inv_dist"]["web_manual"]["type_f1"] - 0.02
    )


def test_fig8_timing(ablation, emit, bench_world, bench_datasets, benchmark):
    """Timed unit: one-mode retrain + eval on a small slice.

    Also emits Figure 8 and re-asserts the headline shape under
    ``--benchmark-only``.
    """
    emit("fig8_feature_ablation", _render_figure8(ablation))
    for dataset in ("wiki_manual", "web_manual"):
        entity_values = [
            ablation[mode.value][dataset]["entity_accuracy"] for mode in MODES
        ]
        assert max(entity_values) - min(entity_values) < 0.05
    small = bench_datasets["wiki_manual"].tables[:4]
    eval_sets = {
        "wiki_manual": type(bench_datasets["wiki_manual"])(
            name="s", tables=small, noise=bench_datasets["wiki_manual"].noise
        )
    }
    benchmark(
        lambda: feature_ablation(
            bench_world,
            small,
            eval_sets,
            modes=(TypeEntityFeatureMode.INV_SQRT_DIST,),
            training=TrainingConfig(epochs=1),
        )
    )
