"""Tests for the three query processors on a hand-built corpus."""

import pytest

from repro.core.annotation import (
    CellAnnotation,
    ColumnAnnotation,
    RelationAnnotation,
    TableAnnotation,
)
from repro.search.annotated_search import AnnotatedSearcher
from repro.search.baseline_search import BaselineSearcher
from repro.search.query import RelationQuery
from repro.search.table_index import AnnotatedTableIndex
from repro.tables.model import Table


@pytest.fixture()
def corpus_index(book_catalog) -> AnnotatedTableIndex:
    """Two relevant tables (one clean, one noisy/unannotated) plus a decoy."""
    index = AnnotatedTableIndex(catalog=book_catalog)

    # Table 1: annotated, headers present.
    t1 = Table(
        table_id="t1",
        cells=[
            ["Relativity: The Special and the General Theory", "A. Einstein"],
            ["Uncle Albert and the Quantum Quest", "Russell Stannard"],
            ["The Time and Space of Uncle Albert", "R. Stannard"],
        ],
        headers=["Book", "Author"],
        context="books written by famous authors",
    )
    a1 = TableAnnotation(table_id="t1")
    a1.columns[0] = ColumnAnnotation(0, "type:book")
    a1.columns[1] = ColumnAnnotation(1, "type:author")
    a1.cells[(0, 0)] = CellAnnotation(0, 0, "ent:relativity")
    a1.cells[(0, 1)] = CellAnnotation(0, 1, "ent:einstein")
    a1.cells[(1, 0)] = CellAnnotation(1, 0, "ent:uncle_albert")
    a1.cells[(1, 1)] = CellAnnotation(1, 1, "ent:stannard")
    a1.cells[(2, 0)] = CellAnnotation(2, 0, "ent:time_space")
    a1.cells[(2, 1)] = CellAnnotation(2, 1, "ent:stannard")
    a1.relations[(0, 1)] = RelationAnnotation(0, 1, "rel:wrote")
    index.add_table(t1, a1)

    # Table 2: typed columns but the pair was (wrongly) left unrelated —
    # exploitable by Type but not Type+Rel.
    t2 = Table(
        table_id="t2",
        cells=[["Uncle Albert and the Quantum Quest", "Russell Stannard"]],
        headers=["Title", "Writer"],
        context="a reading list",
    )
    a2 = TableAnnotation(table_id="t2")
    a2.columns[0] = ColumnAnnotation(0, "type:book")
    a2.columns[1] = ColumnAnnotation(1, "type:author")
    a2.cells[(0, 0)] = CellAnnotation(0, 0, "ent:uncle_albert")
    a2.cells[(0, 1)] = CellAnnotation(0, 1, "ent:stannard")
    index.add_table(t2, a2)

    # Decoy: person column pairs a *physicist* with books he did not write
    # (e.g. a "books about Einstein" table) — trips type-only search.
    t3 = Table(
        table_id="t3",
        cells=[["The Time and Space of Uncle Albert", "A. Einstein"]],
        headers=["Book", "Author"],
        context="books and authors",
    )
    a3 = TableAnnotation(table_id="t3")
    a3.columns[0] = ColumnAnnotation(0, "type:book")
    a3.columns[1] = ColumnAnnotation(1, "type:author")
    a3.cells[(0, 0)] = CellAnnotation(0, 0, "ent:time_space")
    a3.cells[(0, 1)] = CellAnnotation(0, 1, "ent:einstein")
    index.add_table(t3, a3)
    index.freeze()
    return index


@pytest.fixture()
def stannard_query(book_catalog) -> RelationQuery:
    return RelationQuery.from_catalog(book_catalog, "rel:wrote", "ent:stannard")


class TestBaselineSearcher:
    def test_finds_answers_via_strings(self, corpus_index, book_catalog, stannard_query):
        searcher = BaselineSearcher(corpus_index, book_catalog)
        response = searcher.search(stannard_query)
        texts = [answer.text.lower() for answer in response.answers]
        assert any("uncle albert and the quantum quest" in text for text in texts)

    def test_returns_strings_not_entities(
        self, corpus_index, book_catalog, stannard_query
    ):
        searcher = BaselineSearcher(corpus_index, book_catalog)
        response = searcher.search(stannard_query)
        assert all(answer.entity_id is None for answer in response.answers)

    def test_no_headers_no_answers(self, book_catalog, stannard_query):
        index = AnnotatedTableIndex(catalog=book_catalog)
        index.add_table(
            Table(
                table_id="bare",
                cells=[["Uncle Albert and the Quantum Quest", "Russell Stannard"]],
            )
        )
        index.freeze()
        searcher = BaselineSearcher(index, book_catalog)
        assert searcher.search(stannard_query).answers == []


class TestTypeOnlySearcher:
    def test_finds_entities(self, corpus_index, book_catalog, stannard_query):
        searcher = AnnotatedSearcher(corpus_index, book_catalog, use_relations=False)
        response = searcher.search(stannard_query)
        ids = [answer.entity_id for answer in response.answers]
        assert "ent:uncle_albert" in ids
        assert "ent:time_space" in ids

    def test_decoy_pollutes_type_only(self, corpus_index, book_catalog):
        """Asking for Einstein's books, type-only search is fooled by the
        'books about Einstein' decoy table."""
        query = RelationQuery.from_catalog(book_catalog, "rel:wrote", "ent:einstein")
        searcher = AnnotatedSearcher(corpus_index, book_catalog, use_relations=False)
        ids = [a.entity_id for a in searcher.search(query).answers]
        assert "ent:time_space" in ids  # wrong answer sneaks in


class TestTypeRelSearcher:
    def test_relation_filter_removes_decoy(self, corpus_index, book_catalog):
        query = RelationQuery.from_catalog(book_catalog, "rel:wrote", "ent:einstein")
        searcher = AnnotatedSearcher(corpus_index, book_catalog, use_relations=True)
        ids = [a.entity_id for a in searcher.search(query).answers]
        assert ids == ["ent:relativity"]

    def test_finds_all_stannard_books(self, corpus_index, book_catalog, stannard_query):
        searcher = AnnotatedSearcher(corpus_index, book_catalog, use_relations=True)
        ids = {a.entity_id for a in searcher.search(stannard_query).answers}
        assert ids == {"ent:uncle_albert", "ent:time_space"}

    def test_text_anchor_fallback(self, book_catalog):
        """E2 not annotated anywhere: anchoring falls back to text match."""
        index = AnnotatedTableIndex(catalog=book_catalog)
        table = Table(
            table_id="t",
            cells=[["Uncle Albert and the Quantum Quest", "Russell Stannard"]],
        )
        annotation = TableAnnotation(table_id="t")
        annotation.columns[0] = ColumnAnnotation(0, "type:book")
        annotation.columns[1] = ColumnAnnotation(1, "type:author")
        annotation.cells[(0, 0)] = CellAnnotation(0, 0, "ent:uncle_albert")
        # note: author cell deliberately unannotated
        annotation.relations[(0, 1)] = RelationAnnotation(0, 1, "rel:wrote")
        index.add_table(table, annotation)
        index.freeze()
        query = RelationQuery.from_catalog(book_catalog, "rel:wrote", "ent:stannard")
        searcher = AnnotatedSearcher(index, book_catalog, use_relations=True)
        ids = [a.entity_id for a in searcher.search(query).answers]
        assert ids == ["ent:uncle_albert"]
