"""Tests for the search subsystem."""
