"""Tests for two-hop join queries (the paper's §2.1 future-work form)."""

import pytest

from repro.catalog.builder import CatalogBuilder
from repro.core.annotation import (
    CellAnnotation,
    ColumnAnnotation,
    RelationAnnotation,
    TableAnnotation,
)
from repro.search.join_search import JoinQuery, JoinSearcher
from repro.search.table_index import AnnotatedTableIndex
from repro.tables.model import Table


@pytest.fixture()
def football_catalog():
    """Footballers act in movies; footballers play for clubs.

    Join: movies (e1) acted_in by footballers (e2) who play_for club E3.
    """
    return (
        CatalogBuilder(name="football")
        .type("type:person", "person")
        .type("type:footballer", "footballer", parents=["type:person"])
        .type("type:movie", "movie", "film")
        .type("type:club", "club")
        .entity("ent:kai", ["Kai Stone"], types=["type:footballer"])
        .entity("ent:leo", ["Leo Park"], types=["type:footballer"])
        .entity("ent:movie_a", ["The Iron Tide"], types=["type:movie"])
        .entity("ent:movie_b", ["Golden Harbor"], types=["type:movie"])
        .entity("ent:united", ["Northgate United"], types=["type:club"])
        .entity("ent:rovers", ["Duskvale Rovers"], types=["type:club"])
        .relation("rel:acted_in", "type:movie", "type:person")
        .relation("rel:plays_for", "type:footballer", "type:club")
        .fact("rel:acted_in", "ent:movie_a", "ent:kai")
        .fact("rel:acted_in", "ent:movie_b", "ent:leo")
        .fact("rel:plays_for", "ent:kai", "ent:united")
        .fact("rel:plays_for", "ent:leo", "ent:rovers")
        .build()
    )


@pytest.fixture()
def football_index(football_catalog) -> AnnotatedTableIndex:
    index = AnnotatedTableIndex(catalog=football_catalog)

    cast_table = Table(
        table_id="cast",
        cells=[["The Iron Tide", "Kai Stone"], ["Golden Harbor", "Leo Park"]],
        headers=["Film", "Actor"],
    )
    cast_annotation = TableAnnotation(table_id="cast")
    cast_annotation.columns[0] = ColumnAnnotation(0, "type:movie")
    cast_annotation.columns[1] = ColumnAnnotation(1, "type:footballer")
    cast_annotation.cells[(0, 0)] = CellAnnotation(0, 0, "ent:movie_a")
    cast_annotation.cells[(0, 1)] = CellAnnotation(0, 1, "ent:kai")
    cast_annotation.cells[(1, 0)] = CellAnnotation(1, 0, "ent:movie_b")
    cast_annotation.cells[(1, 1)] = CellAnnotation(1, 1, "ent:leo")
    cast_annotation.relations[(0, 1)] = RelationAnnotation(0, 1, "rel:acted_in")
    index.add_table(cast_table, cast_annotation)

    club_table = Table(
        table_id="clubs",
        cells=[["Kai Stone", "Northgate United"], ["Leo Park", "Duskvale Rovers"]],
        headers=["Player", "Club"],
    )
    club_annotation = TableAnnotation(table_id="clubs")
    club_annotation.columns[0] = ColumnAnnotation(0, "type:footballer")
    club_annotation.columns[1] = ColumnAnnotation(1, "type:club")
    club_annotation.cells[(0, 0)] = CellAnnotation(0, 0, "ent:kai")
    club_annotation.cells[(0, 1)] = CellAnnotation(0, 1, "ent:united")
    club_annotation.cells[(1, 0)] = CellAnnotation(1, 0, "ent:leo")
    club_annotation.cells[(1, 1)] = CellAnnotation(1, 1, "ent:rovers")
    club_annotation.relations[(0, 1)] = RelationAnnotation(0, 1, "rel:plays_for")
    index.add_table(club_table, club_annotation)
    index.freeze()
    return index


class TestJoinQuery:
    def test_valid_join(self, football_catalog):
        query = JoinQuery.from_catalog(
            football_catalog, "rel:acted_in", "rel:plays_for", "ent:united"
        )
        assert query.first_relation == "rel:acted_in"

    def test_incompatible_types_rejected(self, football_catalog):
        with pytest.raises(ValueError):
            JoinQuery.from_catalog(
                football_catalog, "rel:plays_for", "rel:acted_in", "ent:kai"
            )

    def test_unknown_entity_rejected(self, football_catalog):
        from repro.catalog.errors import UnknownIdError

        with pytest.raises(UnknownIdError):
            JoinQuery.from_catalog(
                football_catalog, "rel:acted_in", "rel:plays_for", "ent:nobody"
            )


class TestJoinSearch:
    def test_two_hop_answer(self, football_catalog, football_index):
        """Movies acted in by players of Northgate United -> The Iron Tide."""
        query = JoinQuery.from_catalog(
            football_catalog, "rel:acted_in", "rel:plays_for", "ent:united"
        )
        searcher = JoinSearcher(football_index, football_catalog)
        response = searcher.search(query)
        assert [answer.entity_id for answer in response.answers] == ["ent:movie_a"]
        assert response.answers[0].supporting_tables == ("cast",)

    def test_other_club_other_movie(self, football_catalog, football_index):
        query = JoinQuery.from_catalog(
            football_catalog, "rel:acted_in", "rel:plays_for", "ent:rovers"
        )
        searcher = JoinSearcher(football_index, football_catalog)
        response = searcher.search(query)
        assert [answer.entity_id for answer in response.answers] == ["ent:movie_b"]

    def test_no_middle_entities_no_answers(self, football_catalog):
        empty_index = AnnotatedTableIndex(catalog=football_catalog)
        empty_index.freeze()
        query = JoinQuery.from_catalog(
            football_catalog, "rel:acted_in", "rel:plays_for", "ent:united"
        )
        response = JoinSearcher(empty_index, football_catalog).search(query)
        assert response.answers == []

    def test_on_generated_world(self, world, annotator):
        """End-to-end join on the synthetic world: movies acted in by
        actors born in a given city."""
        from repro.tables.generator import TableGeneratorConfig, WebTableGenerator, NoiseProfile

        tables = WebTableGenerator(
            world.full,
            TableGeneratorConfig(
                seed=71,
                n_tables=30,
                noise=NoiseProfile.WIKI,
                relations=("rel:acted_in", "rel:born_in"),
                id_prefix="join",
            ),
        ).generate()
        index = AnnotatedTableIndex(catalog=world.annotator_view)
        for labeled in tables:
            index.add_table(labeled.table, annotator.annotate(labeled.table))
        index.freeze()
        # pick a city that some actor with an acted_in tuple was born in
        for _movie, actor in sorted(world.full.relations.tuples("rel:acted_in")):
            cities = world.full.relations.objects_of("rel:born_in", actor)
            if cities:
                city = sorted(cities)[0]
                break
        query = JoinQuery.from_catalog(
            world.annotator_view, "rel:acted_in", "rel:born_in", city
        )
        response = JoinSearcher(index, world.annotator_view).search(query)
        # all answers must be movies (type check through the full catalog)
        for answer in response.answers:
            assert world.full.is_instance(answer.entity_id, "type:movie")
