"""Tests for query construction and evidence ranking."""

import pytest

from repro.search.query import RelationQuery
from repro.search.ranking import EvidenceAccumulator


class TestRelationQuery:
    def test_from_catalog(self, book_catalog):
        query = RelationQuery.from_catalog(book_catalog, "rel:wrote", "ent:einstein")
        assert query.answer_type == "type:book"
        assert query.given_type == "type:author"
        assert query.given_entity == "ent:einstein"
        assert query.given_text == "Albert Einstein"

    def test_as_strings(self, book_catalog):
        query = RelationQuery.from_catalog(book_catalog, "rel:wrote", "ent:einstein")
        relation_text, t1, t2, e2 = query.as_strings(book_catalog)
        assert relation_text == "written by"
        assert t1 == "book"
        assert t2 == "author"
        assert e2 == "Albert Einstein"


class TestEvidenceAccumulator:
    def test_entity_evidence_aggregates(self, book_catalog):
        acc = EvidenceAccumulator(book_catalog)
        acc.add_entity_evidence("ent:relativity", 1.0, "t1")
        acc.add_entity_evidence("ent:relativity", 0.5, "t2")
        acc.add_entity_evidence("ent:uncle_albert", 1.0, "t1")
        response = acc.response()
        assert response.answers[0].entity_id == "ent:relativity"
        assert response.answers[0].score == pytest.approx(1.5)
        assert response.answers[0].supporting_tables == ("t1", "t2")
        assert response.rows_matched == 3

    def test_string_evidence_clusters_by_normalised_text(self, book_catalog):
        acc = EvidenceAccumulator(book_catalog, resolve_strings_to_entities=False)
        acc.add_string_evidence("Some  Unknown Title", 1.0, "t1")
        acc.add_string_evidence("some unknown title", 1.0, "t2")
        response = acc.response()
        assert len(response.answers) == 1
        assert response.answers[0].score == pytest.approx(2.0)
        assert response.answers[0].entity_id is None

    def test_string_evidence_resolves_to_entity_when_unambiguous(self, book_catalog):
        acc = EvidenceAccumulator(book_catalog)
        acc.add_string_evidence("Russell Stannard", 1.0, "t1")
        response = acc.response()
        assert response.answers[0].entity_id == "ent:stannard"

    def test_baseline_mode_keeps_strings(self, book_catalog):
        acc = EvidenceAccumulator(book_catalog, resolve_strings_to_entities=False)
        acc.add_string_evidence("Russell Stannard", 1.0, "t1")
        response = acc.response()
        assert response.answers[0].entity_id is None

    def test_blank_string_ignored(self, book_catalog):
        acc = EvidenceAccumulator(book_catalog)
        acc.add_string_evidence("   ", 1.0, "t1")
        assert acc.response().answers == []

    def test_ranked_keys(self, book_catalog):
        acc = EvidenceAccumulator(book_catalog, resolve_strings_to_entities=False)
        acc.add_entity_evidence("ent:relativity", 2.0, "t1")
        acc.add_string_evidence("Mystery Book", 1.0, "t1")
        keys = acc.response().ranked_keys()
        assert keys == ["ent:relativity", "mystery book"]

    def test_top_k(self, book_catalog):
        acc = EvidenceAccumulator(book_catalog)
        for index in range(10):
            acc.add_string_evidence(f"title {index}", 1.0, "t")
        assert len(acc.response(top_k=3).answers) == 3

    def test_deterministic_tie_order(self, book_catalog):
        acc = EvidenceAccumulator(book_catalog, resolve_strings_to_entities=False)
        acc.add_string_evidence("bbb", 1.0, "t")
        acc.add_string_evidence("aaa", 1.0, "t")
        answers = acc.response().answers
        assert [a.text for a in answers] == ["aaa", "bbb"]
