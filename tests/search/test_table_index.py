"""Tests for the annotated table index."""

import pytest

from repro.core.annotation import (
    CellAnnotation,
    ColumnAnnotation,
    RelationAnnotation,
    TableAnnotation,
)
from repro.search.table_index import AnnotatedTableIndex
from repro.tables.model import Table


@pytest.fixture()
def index(book_catalog) -> AnnotatedTableIndex:
    idx = AnnotatedTableIndex(catalog=book_catalog)
    table = Table(
        table_id="t1",
        cells=[
            ["Relativity: The Special and the General Theory", "A. Einstein"],
            ["Uncle Albert and the Quantum Quest", "Russell Stannard"],
        ],
        headers=["Title", "Author"],
        context="famous books written by scientists",
    )
    annotation = TableAnnotation(table_id="t1")
    annotation.columns[0] = ColumnAnnotation(0, "type:science_books")
    annotation.columns[1] = ColumnAnnotation(1, "type:author")
    annotation.cells[(0, 0)] = CellAnnotation(0, 0, "ent:relativity")
    annotation.cells[(0, 1)] = CellAnnotation(0, 1, "ent:einstein")
    annotation.cells[(1, 0)] = CellAnnotation(1, 0, "ent:uncle_albert")
    annotation.cells[(1, 1)] = CellAnnotation(1, 1, None)
    annotation.relations[(0, 1)] = RelationAnnotation(0, 1, "rel:wrote")
    idx.add_table(table, annotation)

    headerless = Table(table_id="t2", cells=[["x", "y"], ["a", "b"]])
    idx.add_table(headerless)
    idx.freeze()
    return idx


class TestTextLookups:
    def test_header_lookup(self, index):
        hits = index.columns_with_header("Author")
        assert ("t1", 1) in [(table, column) for table, column, _s in hits]

    def test_context_lookup(self, index):
        scores = index.tables_with_context("books written by")
        assert "t1" in scores

    def test_headerless_table_invisible_to_header_index(self, index):
        hits = index.columns_with_header("x")
        assert all(table != "t2" for table, _c, _s in hits)


class TestSemanticLookups:
    def test_columns_of_type_exact(self, index):
        assert index.columns_of_type("type:science_books") == [("t1", 0)]

    def test_columns_of_type_subtype_expansion(self, index):
        # querying the supertype finds the subtype-annotated column
        assert index.columns_of_type("type:book") == [("t1", 0)]

    def test_cells_of_entity(self, index):
        assert index.cells_of_entity("ent:einstein") == [("t1", 0, 1)]
        assert index.cells_of_entity("ent:stannard") == []

    def test_relation_edges_orientation(self, index):
        edges = index.relation_edges("rel:wrote")
        assert len(edges) == 1
        assert edges[0].subject_column == 0
        assert edges[0].object_column == 1

    def test_reversed_relation_edge(self, book_catalog):
        idx = AnnotatedTableIndex(catalog=book_catalog)
        table = Table(table_id="r", cells=[["A. Einstein", "Relativity"]])
        annotation = TableAnnotation(table_id="r")
        annotation.relations[(0, 1)] = RelationAnnotation(0, 1, "rel:wrote^-1")
        idx.add_table(table, annotation)
        edges = idx.relation_edges("rel:wrote")
        assert edges[0].subject_column == 1
        assert edges[0].object_column == 0


class TestLifecycle:
    def test_duplicate_table_rejected(self, index, book_catalog):
        with pytest.raises(ValueError):
            index.add_table(Table(table_id="t1", cells=[["a", "b"]]))

    def test_add_after_freeze_rejected(self, index):
        with pytest.raises(RuntimeError):
            index.add_table(Table(table_id="t9", cells=[["a", "b"]]))

    def test_stats(self, index):
        stats = index.stats()
        assert stats["tables"] == 2
        assert stats["annotated_tables"] == 1
        assert stats["typed_columns"] == 2
        assert stats["entity_cells"] == 3
        assert stats["relation_edges"] == 1

    def test_len(self, index):
        assert len(index) == 2
