"""The multi-process serving tier: pool, dispatcher, hot-swap, drain.

Three layers of coverage:

* dispatcher semantics against a live 2-worker pool — byte parity with the
  inline backend, load shedding, dead-worker replacement, generational
  hot-swap (in-flight requests finish on the old bundle, new requests land
  on the new generation), graceful drain;
* the HTTP front end over a dispatcher backend — ``/admin/reload``, the
  per-worker ``/metrics`` split, 503 envelopes;
* the CLI process end to end — ``repro serve --workers 2`` answering
  requests and draining on SIGTERM within the configured timeout.

The ``_sleep`` endpoint used throughout is a dispatcher-only test aid
(never routed over HTTP): it parks a worker for a chosen duration, which
makes overload and drain timing deterministic without tuning real
annotation workloads.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from collections import Counter

import pytest

from repro.api.config import ServeConfig, SessionConfig
from repro.api.errors import ApiError
from repro.api.types import encode_json
from repro.serve.dispatcher import Dispatcher
from repro.serve.server import create_server

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="the pre-fork tier requires fork"
)

#: small, fast pool: 2 workers + 1 queued request = capacity 3
POOL_CONFIG = SessionConfig(
    serve=ServeConfig(
        workers=2,
        queue_depth=1,
        shed_timeout_seconds=0.2,
        request_timeout_seconds=15.0,
        health_interval_seconds=0.2,
        drain_timeout_seconds=10.0,
    )
)


@pytest.fixture(scope="module")
def dispatcher(bundle_dir):
    """One live 2-worker dispatcher shared by this module's tests.

    Tests that kill workers rely on the health sweep healing the pool, so
    cumulative counters (restarts, reloads) are asserted with ``>=``.
    """
    d = Dispatcher(bundle_dir, config=POOL_CONFIG)
    yield d
    d.shutdown(drain_timeout=5.0)


def annotate_payload(serve_corpus, index: int = 0) -> dict:
    return {
        "table": serve_corpus[index].table.to_dict(),
        "include_timing": False,
    }


def fire(dispatcher: Dispatcher, endpoint: str, payload: dict, out: list):
    try:
        out.append(("ok", dispatcher.call(endpoint, payload)))
    except ApiError as error:
        out.append((error.code, None))


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestDispatcher:
    def test_annotate_byte_identical_to_inline(
        self, dispatcher, serve_state, serve_corpus
    ):
        """A pool worker's response is the inline backend's response."""
        for index in range(3):
            payload = annotate_payload(serve_corpus, index)
            pooled = dispatcher.call("annotate", payload)
            inline = serve_state.handle("annotate", payload)
            assert encode_json(pooled) == encode_json(inline)

    def test_search_and_errors_cross_the_pipe(self, dispatcher, serve_state):
        query = {"query_type": "type", "type_id": "missing-type", "top_k": 3}
        with pytest.raises(ApiError) as pooled_error:
            dispatcher.call("search", query)
        with pytest.raises(ApiError) as inline_error:
            serve_state.handle("search", query)
        assert pooled_error.value.code == inline_error.value.code

    def test_overload_sheds_beyond_capacity(self, dispatcher):
        """capacity = workers + queue_depth; the rest shed as 503s."""
        results: list = []
        threads = [
            threading.Thread(
                target=fire, args=(dispatcher, "_sleep", {"seconds": 1.0}, results)
            )
            for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        outcomes = Counter(code for code, _ in results)
        capacity = dispatcher._current().capacity
        assert outcomes["ok"] == capacity == 3
        assert outcomes["overloaded"] == 6 - capacity
        snapshot = dispatcher.dispatch_metrics.snapshot()
        assert snapshot["shed_total"] >= 3
        assert snapshot["in_flight"] == 0

    def test_dead_idle_worker_is_replaced(self, dispatcher):
        generation = dispatcher._current()
        victim = generation.workers[0]
        victim.process.terminate()
        assert wait_until(lambda: not victim.process.is_alive())
        assert wait_until(
            lambda: dispatcher.dispatch_metrics.snapshot()["worker_restarts"]
            >= 1
        ), "health sweep did not notice the dead worker"
        assert wait_until(
            lambda: dispatcher.healthz()["workers"]["alive"] == 2
        ), "health sweep did not replace the dead worker"
        # the pool still serves
        assert dispatcher.call("_sleep", {"seconds": 0.0})["pid"] > 0

    def test_worker_death_mid_request_fails_that_request_only(
        self, dispatcher
    ):
        results: list = []
        threads = [
            threading.Thread(
                target=fire, args=(dispatcher, "_sleep", {"seconds": 2.0}, results)
            )
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        assert wait_until(
            lambda: dispatcher.dispatch_metrics.snapshot()["in_flight"] == 2
        )
        with dispatcher._lock:
            victim = dispatcher._active.workers[0]
        victim.process.terminate()
        for thread in threads:
            thread.join()
        outcomes = Counter(code for code, _ in results)
        assert outcomes["worker_failed"] == 1
        assert outcomes["ok"] == 1
        assert wait_until(
            lambda: dispatcher.healthz()["workers"]["alive"] == 2
        )

    def test_hot_swap_preserves_in_flight_and_moves_new_traffic(
        self, dispatcher, bundle_dir, serve_corpus
    ):
        old_generation = dispatcher._current()
        old_pids = {worker.pid for worker in old_generation.workers}
        results: list = []
        in_flight = threading.Thread(
            target=fire, args=(dispatcher, "_sleep", {"seconds": 1.5}, results)
        )
        in_flight.start()
        assert wait_until(
            lambda: dispatcher.dispatch_metrics.snapshot()["in_flight"] >= 1
        )
        report = dispatcher.reload({"bundle": str(bundle_dir)})
        in_flight.join()
        # the in-flight request finished on the old generation...
        assert results[0][0] == "ok"
        assert results[0][1]["pid"] in old_pids
        assert report["previous_generation_drained"] is True
        assert report["generation"] == old_generation.id + 1
        # ...new traffic lands on the new one, and still annotates correctly
        fresh = dispatcher.call("_sleep", {"seconds": 0.0})
        new_pids = {w.pid for w in dispatcher._current().workers}
        assert fresh["pid"] in new_pids
        assert not new_pids & old_pids
        assert dispatcher.call(
            "annotate", annotate_payload(serve_corpus)
        )["table_id"] == serve_corpus[0].table.table_id
        # the old workers are gone
        assert wait_until(
            lambda: all(not w.process.is_alive() for w in old_generation.workers)
        )

    def test_reload_with_bad_bundle_keeps_serving(self, dispatcher):
        from repro.serve.errors import BundleError

        before = dispatcher.healthz()["generation"]
        with pytest.raises((BundleError, OSError)):
            dispatcher.reload({"bundle": "/nonexistent/bundle"})
        health = dispatcher.healthz()
        assert health["status"] == "ok"
        assert health["generation"] == before
        assert dispatcher.call("_sleep", {"seconds": 0.0})["pid"] > 0

    def test_metrics_split_per_worker_plus_aggregate(self, dispatcher):
        dispatcher.observe("annotate", 0.01, error=False)
        snapshot = dispatcher.metrics_snapshot()
        assert "endpoints" in snapshot  # the aggregate section survives
        assert snapshot["dispatcher"]["reloads"] >= 1
        workers = snapshot["workers"]
        assert len(workers) == 2
        for name, entry in workers.items():
            assert re.fullmatch(r"g\d+\.w\d+", name)
            assert entry["generation"] == snapshot["dispatcher"]["generation"]
            assert {"pid", "alive", "requests", "errors", "handler_seconds"} <= (
                set(entry)
            )
            assert {"p50", "p90", "p99", "max", "window"} == set(
                entry["handler_seconds"]
            )
        # at least one worker answered something by this point in the module
        assert sum(entry["requests"] for entry in workers.values()) >= 1
        assert "queue_wait_seconds" in snapshot["dispatcher"]


class TestGracefulShutdown:
    def test_shutdown_drains_in_flight(self, bundle_dir):
        d = Dispatcher(bundle_dir, config=POOL_CONFIG)
        try:
            results: list = []
            in_flight = threading.Thread(
                target=fire, args=(d, "_sleep", {"seconds": 1.0}, results)
            )
            in_flight.start()
            assert wait_until(
                lambda: d.dispatch_metrics.snapshot()["in_flight"] >= 1
            )
            assert d.shutdown(drain_timeout=10.0) is True
            in_flight.join()
            assert results[0][0] == "ok"
        finally:
            d.shutdown(drain_timeout=1.0)

    def test_shutdown_force_stops_past_drain_timeout(self, bundle_dir):
        d = Dispatcher(bundle_dir, config=POOL_CONFIG)
        results: list = []
        wedged = threading.Thread(
            target=fire, args=(d, "_sleep", {"seconds": 30.0}, results)
        )
        wedged.start()
        assert wait_until(
            lambda: d.dispatch_metrics.snapshot()["in_flight"] >= 1
        )
        assert d.shutdown(drain_timeout=0.5) is False


class TestDispatcherOverHttp:
    @pytest.fixture(scope="class")
    def pool_server(self, bundle_dir):
        backend = Dispatcher(bundle_dir, config=POOL_CONFIG)
        server = create_server(backend, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield host, port
        server.shutdown()
        server.server_close()
        backend.shutdown(drain_timeout=5.0)

    @staticmethod
    def request(host, port, method, path, body=None):
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(
            f"http://{host}:{port}{path}", data=data, method=method
        )
        if data is not None:
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_annotate_and_metrics(self, pool_server, serve_corpus):
        host, port = pool_server
        status, payload = self.request(
            host, port, "POST", "/annotate", annotate_payload(serve_corpus)
        )
        assert status == 200
        assert payload["table_id"] == serve_corpus[0].table.table_id
        status, metrics = self.request(host, port, "GET", "/metrics")
        assert status == 200
        assert metrics["endpoints"]["annotate"]["requests"] >= 1
        assert len(metrics["workers"]) == 2
        assert metrics["dispatcher"]["generation"] >= 1
        assert "batched" in metrics["caches"]

    def test_admin_reload_over_http(self, pool_server, bundle_dir, serve_corpus):
        host, port = pool_server
        status, before = self.request(host, port, "GET", "/healthz")
        assert status == 200
        status, report = self.request(
            host, port, "POST", "/admin/reload", {"bundle": str(bundle_dir)}
        )
        assert status == 200
        assert report["status"] == "ok"
        assert report["generation"] == before["generation"] + 1
        status, payload = self.request(
            host, port, "POST", "/annotate", annotate_payload(serve_corpus)
        )
        assert status == 200
        assert payload["table_id"] == serve_corpus[0].table.table_id

    def test_admin_reload_rejects_get(self, pool_server):
        host, port = pool_server
        status, payload = self.request(host, port, "GET", "/admin/reload")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"

    def test_healthz_reports_pool(self, pool_server):
        host, port = pool_server
        status, health = self.request(host, port, "GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["workers"]["configured"] == 2
        assert health["workers"]["alive"] == 2


class TestServeCliSigterm:
    def test_sigterm_drains_within_timeout(self, bundle_dir, serve_corpus):
        """`repro serve --workers 2` exits 0 on SIGTERM after draining."""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--bundle",
                str(bundle_dir),
                "--port",
                "0",
                "--workers",
                "2",
                "--drain-timeout",
                "10",
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            match = None
            for _ in range(20):  # tolerate warnings before the banner
                line = process.stderr.readline()
                if not line:
                    break
                match = re.search(r"http://([\d.]+):(\d+)", line)
                if match:
                    break
            assert match, "no serving banner on stderr"
            host, port = match.group(1), int(match.group(2))
            status, payload = TestDispatcherOverHttp.request(
                host, port, "POST", "/annotate", annotate_payload(serve_corpus)
            )
            assert status == 200
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30)
            assert process.returncode == 0
            remainder = process.stderr.read()
            assert "drained" in remainder
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


class TestWireProtocol:
    """The framed protocol-5 pipe messaging (PEP-574 out-of-band buffers)."""

    @staticmethod
    def _roundtrip_with_frames(message):
        """send_message → raw frame sizes + the decoded reply."""
        import pickle
        import struct
        from multiprocessing import Pipe

        from repro.serve.pool import send_message

        parent, child = Pipe(duplex=True)
        captured: dict = {}

        def reader() -> None:
            (n_buffers,) = struct.unpack("<I", child.recv_bytes())
            payload = child.recv_bytes()
            buffers = [child.recv_bytes() for _ in range(n_buffers)]
            captured["payload"] = payload
            captured["buffer_sizes"] = [len(frame) for frame in buffers]
            captured["decoded"] = pickle.loads(payload, buffers=buffers)

        thread = threading.Thread(target=reader)
        thread.start()
        send_message(parent, message)
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        parent.close()
        child.close()
        return captured

    def test_numpy_payload_travels_out_of_band(self):
        """Wire-size regression: an 8 MB array must cross the pipe as a raw
        buffer frame, with the in-band pickle staying tiny — the default
        pickler used to copy the whole array through the pickle stream."""
        import numpy as np

        array = np.arange(1_000_000, dtype=np.float64)  # 8 MB raw
        captured = self._roundtrip_with_frames(("ok", {"x": array}, 0.5))
        assert len(captured["payload"]) < 16_384, (
            f"in-band pickle grew to {len(captured['payload'])} bytes — "
            "the array is being copied through the pickle stream again"
        )
        assert sum(captured["buffer_sizes"]) >= array.nbytes
        kind, result, seconds = captured["decoded"]
        assert kind == "ok" and seconds == 0.5
        assert np.array_equal(result["x"], array)

    def test_messages_pickle_at_highest_protocol(self):
        """The payload frame must be a protocol-5 pickle (PEP 574), not the
        interpreter default."""
        import pickle

        captured = self._roundtrip_with_frames(("ping",))
        # a pickle stream opens with PROTO <version>
        assert captured["payload"][:2] == bytes([0x80, pickle.HIGHEST_PROTOCOL])
        assert pickle.HIGHEST_PROTOCOL >= 5
        assert captured["decoded"] == ("ping",)

    def test_plain_payload_roundtrip_has_no_buffers(self):
        captured = self._roundtrip_with_frames(("ok", {"n": 3}, 0.0))
        assert captured["buffer_sizes"] == []
        assert captured["decoded"] == ("ok", {"n": 3}, 0.0)
