"""Serve-time dynamic micro-batching: byte-identity, isolation, FIFO.

The coalescer's contract is that batching must be invisible in responses:
every ``/annotate`` answer (success or error envelope) under concurrent
batched serving is byte-identical to what the inline unbatched backend
returns for the same payload.  The hypothesis test races N client threads
against a :class:`BatchingBackend` over mixed-shape tables with a poisoned
payload riding along, and checks every response byte-for-byte against solo
references.

Also covered here: per-request deadline enforcement (``request_timeout``
is per request, not per batch), the fused→per-table fallback when a fused
chunk dies, solo bypass for off-default engine overrides, FIFO admission
ordering (:class:`FifoSlots`), and the whole ``batch`` pipe message end to
end on a real pre-fork dispatcher.
"""

from __future__ import annotations

import os
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.config import ServeConfig, SessionConfig
from repro.api.errors import ApiError
from repro.api.types import encode_json
from repro.serve.dispatcher import BatchingBackend, Dispatcher, FifoSlots
from repro.serve.server import InlineBackend
from repro.serve.state import ServeState
from repro.tables.generator import (
    NoiseProfile,
    TableGeneratorConfig,
    WebTableGenerator,
)

#: a payload the wire layer rejects deterministically (missing table_id)
POISON_PAYLOAD = {"table": {"cells": "not-a-grid"}, "include_timing": False}


def _batching_config(
    max_batch_size: int = 8,
    batch_wait_ms: float = 25.0,
    request_timeout: float = 30.0,
    workers: int = 1,
) -> SessionConfig:
    return SessionConfig(
        serve=ServeConfig(
            workers=workers,
            queue_depth=32,
            shed_timeout_seconds=2.0,
            request_timeout_seconds=request_timeout,
            batching=True,
            max_batch_size=max_batch_size,
            batch_wait_ms=batch_wait_ms,
        )
    )


@pytest.fixture(scope="module")
def table_payloads(tiny_world, serve_corpus):
    """Mixed-shape wire payloads: the serve corpus plus a second generator
    run with different shape ranges, so batches span several buckets."""
    extra = WebTableGenerator(
        tiny_world.full,
        TableGeneratorConfig(
            seed=97, n_tables=8, rows_range=(4, 9), noise=NoiseProfile.WIKI
        ),
    ).generate()
    tables = [labeled.table for labeled in list(serve_corpus) + list(extra)]
    return [
        {"table": table.to_dict(), "include_timing": False}
        for table in tables
    ]


@pytest.fixture(scope="module")
def solo_state(loaded_bundle):
    """The oracle: a plain unbatched inline state."""
    return ServeState(loaded_bundle)


@pytest.fixture(scope="module")
def solo_responses(solo_state, table_payloads):
    """Byte-level solo reference for every pool payload."""
    return [
        encode_json(solo_state.handle("annotate", payload))
        for payload in table_payloads
    ]


@pytest.fixture(scope="module")
def solo_poison_error(solo_state):
    """The deterministic (code, message) the unbatched path gives POISON."""
    with pytest.raises(ApiError) as excinfo:
        solo_state.handle("annotate", POISON_PAYLOAD)
    return excinfo.value.code, str(excinfo.value)


def _drive_concurrently(backend, payloads):
    """POST every payload from its own thread; returns outcomes in order.

    Each outcome is ``("ok", bytes)`` or ``("error", code, message)`` —
    exactly what the HTTP layer would serialize either way.
    """
    outcomes: list = [None] * len(payloads)

    def client(index: int) -> None:
        try:
            result = backend.call("annotate", payloads[index])
        except ApiError as error:
            outcomes[index] = ("error", error.code, str(error))
        else:
            outcomes[index] = ("ok", encode_json(result))

    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(len(payloads))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    assert all(outcome is not None for outcome in outcomes)
    return outcomes


# ----------------------------------------------------------------------
# FIFO admission (the Semaphore replacement)
# ----------------------------------------------------------------------
def test_fifo_slots_wake_in_arrival_order():
    """Freed slots must go to waiters strictly in arrival order — the
    guarantee ``threading.Semaphore`` does not make."""
    slots = FifoSlots(1)
    assert slots.acquire(timeout=0.1)
    wake_order: list[int] = []
    wake_lock = threading.Lock()

    def waiter(index: int) -> None:
        assert slots.acquire(timeout=10.0)
        with wake_lock:
            wake_order.append(index)

    threads = []
    for index in range(8):
        thread = threading.Thread(target=waiter, args=(index,))
        thread.start()
        threads.append(thread)
        # park deterministically: each waiter must be queued before the
        # next arrives, so arrival order is exactly 0..7
        for _ in range(2000):
            with slots._lock:
                queued = len(slots._waiters)
            if queued == index + 1:
                break
            threading.Event().wait(0.001)
        else:  # pragma: no cover - scheduler stall
            pytest.fail(f"waiter {index} never parked")
    # one release at a time, observing which waiter each slot went to —
    # releasing in a burst would let thread scheduling shuffle the appends
    # even though the grants themselves were FIFO
    for step in range(8):
        slots.release()
        for _ in range(5000):
            with wake_lock:
                woken = len(wake_order)
            if woken == step + 1:
                break
            threading.Event().wait(0.001)
        else:  # pragma: no cover - scheduler stall
            pytest.fail(f"release {step} never woke a waiter")
    for thread in threads:
        thread.join(timeout=10.0)
    assert wake_order == list(range(8))


def test_fifo_slots_timeout_returns_slot():
    """A timed-out waiter must not leak its ticket or a slot."""
    slots = FifoSlots(1)
    assert slots.acquire(timeout=0.1)
    assert not slots.acquire(timeout=0.05)
    slots.release()
    assert slots.acquire(timeout=0.1)


# ----------------------------------------------------------------------
# the coalescer over the inline backend
# ----------------------------------------------------------------------
def test_batching_backend_byte_identity_under_concurrency(
    loaded_bundle, table_payloads, solo_responses
):
    """Concurrent batched responses == solo responses, byte for byte, and
    at least one multi-table fused batch actually formed."""
    backend = BatchingBackend(
        InlineBackend(ServeState(loaded_bundle)),
        config=_batching_config(max_batch_size=16, batch_wait_ms=50.0),
    )
    try:
        indices = list(range(len(table_payloads))) * 2
        outcomes = _drive_concurrently(
            backend, [table_payloads[i] for i in indices]
        )
        for slot, index in enumerate(indices):
            assert outcomes[slot] == ("ok", solo_responses[index])
        snapshot = backend.batch_metrics.snapshot()
        assert snapshot["batched_requests"] == len(indices)
        assert any(
            int(size) > 1 for size in snapshot["batch_size_histogram"]
        ), snapshot
    finally:
        backend.shutdown(drain_timeout=5.0)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_batching_property_byte_identity_with_poison(
    data, loaded_bundle, table_payloads, solo_responses, solo_poison_error
):
    """N concurrent clients, mixed shapes, one poisoned table per batch:
    every response byte-identical to the inline unbatched backend, and the
    poison never takes a batchmate down with it."""
    indices = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(table_payloads) - 1),
            min_size=1,
            max_size=10,
        )
    )
    poison_slot = data.draw(
        st.integers(min_value=0, max_value=len(indices))
    )
    payloads = [table_payloads[i] for i in indices]
    payloads.insert(poison_slot, POISON_PAYLOAD)
    backend = BatchingBackend(
        InlineBackend(ServeState(loaded_bundle)),
        config=_batching_config(max_batch_size=16, batch_wait_ms=30.0),
    )
    try:
        outcomes = _drive_concurrently(backend, payloads)
    finally:
        backend.shutdown(drain_timeout=5.0)
    expected_code, expected_message = solo_poison_error
    for slot, outcome in enumerate(outcomes):
        if slot == poison_slot:
            assert outcome == ("error", expected_code, expected_message)
        else:
            index = indices[slot if slot < poison_slot else slot - 1]
            assert outcome == ("ok", solo_responses[index])


def test_engine_override_bypasses_batching(
    loaded_bundle, table_payloads, solo_state
):
    """An off-default engine override runs solo — and still matches the
    unbatched backend byte for byte."""
    backend = BatchingBackend(
        InlineBackend(ServeState(loaded_bundle)),
        config=_batching_config(),
    )
    try:
        payload = {**table_payloads[0], "engine": "scalar"}
        result = backend.call("annotate", payload)
        assert encode_json(result) == encode_json(
            solo_state.handle("annotate", payload)
        )
        snapshot = backend.batch_metrics.snapshot()
        assert snapshot["solo_requests"] == 1
        assert snapshot["batched_requests"] == 0
    finally:
        backend.shutdown(drain_timeout=5.0)


def test_request_timeout_is_per_request_not_per_batch(loaded_bundle):
    """A request whose own deadline passes while the batch is still being
    held must fail overloaded instead of riding along late."""
    backend = BatchingBackend(
        InlineBackend(ServeState(loaded_bundle)),
        config=_batching_config(
            batch_wait_ms=300.0, request_timeout=0.01
        ),
    )
    try:
        with pytest.raises(ApiError) as excinfo:
            backend.call(
                "annotate", {"table": {"cells": "x"}, "include_timing": False}
            )
        assert excinfo.value.code == "overloaded"
        assert "batching queue" in str(excinfo.value)
    finally:
        backend.shutdown(drain_timeout=5.0)


def test_fused_chunk_failure_falls_back_per_table(
    loaded_bundle, table_payloads, solo_responses, monkeypatch
):
    """A fused super-graph blowing up must degrade to per-table execution
    with identical responses, not fail the whole batch."""
    import repro.api.session as session_module

    def explode(*args, **kwargs):
        raise RuntimeError("fused graph corrupted")

    monkeypatch.setattr(session_module, "annotate_fused_chunk", explode)
    state = ServeState(loaded_bundle)
    results = state.handle_batch("annotate", table_payloads)["results"]
    assert [
        ("ok", encode_json(outcome["ok"])) for outcome in results
    ] == [("ok", reference) for reference in solo_responses]


# ----------------------------------------------------------------------
# the batch message end to end on a real pre-fork pool
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="the pre-fork tier requires fork"
)
def test_batching_over_dispatcher_pool(
    bundle_dir, table_payloads, solo_responses, solo_poison_error
):
    """The full stack: coalescer → dispatcher → ``batch`` pipe message →
    worker ``handle_batch`` → demultiplexed responses, byte-identical and
    poison-isolated."""
    config = _batching_config(max_batch_size=8, batch_wait_ms=40.0)
    dispatcher = Dispatcher(bundle_dir, config=config)
    backend = BatchingBackend(dispatcher, config=config)
    try:
        payloads = [POISON_PAYLOAD, *table_payloads[:6]]
        outcomes = _drive_concurrently(backend, payloads)
        expected_code, expected_message = solo_poison_error
        assert outcomes[0] == ("error", expected_code, expected_message)
        for slot in range(1, len(payloads)):
            assert outcomes[slot] == ("ok", solo_responses[slot - 1])
        snapshot = backend.metrics_snapshot()
        assert snapshot["batching"]["enabled"] is True
        assert snapshot["batching"]["batched_requests"] == len(payloads)
    finally:
        backend.shutdown(drain_timeout=10.0)
