"""CLI ↔ HTTP parity: identical typed requests yield byte-identical payloads.

The acceptance bar of the unified API layer: for the same
:class:`AnnotateRequest` / :class:`SearchRequest`, ``repro annotate --wire``
/ ``repro search --json`` and ``POST /annotate`` / ``POST /search`` against
a bundle of the same world emit **the same bytes** — both frontends decode
into the same request type, run the same :class:`ReproSession` code and
encode through the same :func:`repro.api.encode_json`.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection

import pytest

from repro.api.types import AnnotateRequest, SearchRequest, encode_json
from repro.catalog.io import save_catalog_json
from repro.cli import main
from repro.tables.corpus import TableCorpus, save_corpus_jsonl
from tests.serve.conftest import find_productive_query


def raw_post(host, port, path, body: str, timeout=60) -> tuple[int, str]:
    """One POST round trip; returns (status, raw response text)."""
    conn = HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(
            "POST",
            path,
            body=body.encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


@pytest.fixture(scope="module")
def world_files(tiny_world, serve_corpus, tmp_path_factory):
    """The serving world written to disk for the CLI side of the parity."""
    directory = tmp_path_factory.mktemp("parity-world")
    catalog_path = directory / "catalog_view.json"
    corpus_path = directory / "corpus.jsonl"
    save_catalog_json(tiny_world.annotator_view, catalog_path)
    save_corpus_jsonl(TableCorpus(list(serve_corpus)), corpus_path)
    return catalog_path, corpus_path


class TestAnnotateParity:
    def test_wire_mode_matches_http_bytes(
        self, running_server, world_files, serve_corpus, tmp_path
    ):
        """`repro annotate --wire` == POST /annotate, byte for byte."""
        catalog_path, corpus_path = world_files
        output = tmp_path / "wire.jsonl"
        assert (
            main(
                [
                    "annotate",
                    "--catalog",
                    str(catalog_path),
                    "--corpus",
                    str(corpus_path),
                    "--wire",
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        cli_lines = output.read_text(encoding="utf-8").splitlines()
        assert len(cli_lines) == len(serve_corpus)

        host, port = running_server
        for labeled, cli_line in zip(serve_corpus, cli_lines):
            request = AnnotateRequest(
                table=labeled.table, engine="batched", include_timing=False
            )
            status, http_body = raw_post(
                host, port, "/annotate", encode_json(request.to_json())
            )
            assert status == 200
            assert http_body == cli_line

    def test_wire_payload_is_the_typed_response(
        self, world_files, serve_corpus, tmp_path
    ):
        """Every --wire line decodes as a valid AnnotateResponse."""
        from repro.api.types import AnnotateResponse

        catalog_path, corpus_path = world_files
        output = tmp_path / "wire.jsonl"
        assert (
            main(
                [
                    "annotate",
                    "--catalog",
                    str(catalog_path),
                    "--corpus",
                    str(corpus_path),
                    "--wire",
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        for line, labeled in zip(
            output.read_text(encoding="utf-8").splitlines(), serve_corpus
        ):
            response = AnnotateResponse.from_json(json.loads(line))
            assert response.table_id == labeled.table_id
            assert response.timing_seconds is None


class TestSearchParity:
    def test_json_mode_matches_http_bytes(
        self, running_server, world_files, tiny_world, serve_state, capsys
    ):
        """`repro search --json` == POST /search, byte for byte."""
        catalog_path, corpus_path = world_files
        relation_id, entity_id = find_productive_query(
            tiny_world, serve_state.index
        )
        request = SearchRequest(relation=relation_id, entity=entity_id, top_k=5)

        assert (
            main(
                [
                    "search",
                    "--catalog",
                    str(catalog_path),
                    "--corpus",
                    str(corpus_path),
                    "--relation",
                    relation_id,
                    "--entity",
                    entity_id,
                    "--top-k",
                    "5",
                    "--json",
                ]
            )
            == 0
        )
        cli_line = capsys.readouterr().out.strip()

        host, port = running_server
        status, http_body = raw_post(
            host, port, "/search", encode_json(request.to_json())
        )
        assert status == 200
        assert json.loads(cli_line)["answers"]  # the query is productive
        assert http_body == cli_line
