"""Fixtures for the serving subsystem: one bundle, one running server."""

from __future__ import annotations

import threading

import pytest

from repro.serve.bundle import build_bundle, load_bundle
from repro.serve.server import create_server
from repro.serve.state import ServeState
from repro.tables.generator import (
    NoiseProfile,
    TableGeneratorConfig,
    WebTableGenerator,
)


@pytest.fixture(scope="session")
def serve_corpus(tiny_world):
    """A small labeled corpus over the tiny world."""
    generator = WebTableGenerator(
        tiny_world.full,
        TableGeneratorConfig(seed=31, n_tables=8, noise=NoiseProfile.WIKI),
    )
    return generator.generate()


@pytest.fixture(scope="session")
def bundle_dir(tiny_world, serve_corpus, tmp_path_factory):
    """A bundle built once for the whole serve test session."""
    path = tmp_path_factory.mktemp("bundle") / "bundle"
    build_bundle(path, tiny_world.annotator_view, serve_corpus)
    return path


@pytest.fixture(scope="session")
def loaded_bundle(bundle_dir):
    return load_bundle(bundle_dir)


@pytest.fixture(scope="session")
def serve_state(loaded_bundle):
    return ServeState(loaded_bundle)


@pytest.fixture(scope="session")
def running_server(serve_state):
    """A live threaded server on an ephemeral port; yields (host, port)."""
    server = create_server(serve_state, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield host, port
    server.shutdown()
    server.server_close()


def find_productive_query(world, index) -> tuple[str, str]:
    """A (relation, entity) pair whose Type+Rel search returns answers.

    Walks the index's annotated relation edges and anchors E2 at an
    entity-annotated cell of the object column, so the query is guaranteed
    to match at least one row.
    """
    for relation_id, edges in sorted(index._edges_by_relation.items()):
        if relation_id not in world.annotator_view.relations:
            continue
        for edge in edges:
            annotation = index.annotations.get(edge.table_id)
            if annotation is None:
                continue
            table = index.tables[edge.table_id]
            for row in range(table.n_rows):
                entity_id = annotation.entity_of(row, edge.object_column)
                if entity_id is not None and entity_id in (
                    world.annotator_view.entities
                ):
                    return relation_id, entity_id
    raise AssertionError("no productive (relation, entity) query in the corpus")
