"""Live-server tests: endpoint behaviour and concurrent determinism."""

from __future__ import annotations

import json
import threading
from http.client import HTTPConnection

import pytest

from repro.pipeline.io import annotation_to_dict
from repro.pipeline.pipeline import AnnotationPipeline
from tests.serve.conftest import find_productive_query


def request(host, port, method, path, body=None, timeout=60):
    """One HTTP round trip; returns (status, parsed JSON)."""
    conn = HTTPConnection(host, port, timeout=timeout)
    try:
        headers = {"Content-Type": "application/json"} if body is not None else {}
        conn.request(
            method,
            path,
            body=json.dumps(body) if body is not None else None,
            headers=headers,
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestHealthAndMetrics:
    def test_healthz(self, running_server, serve_corpus):
        status, payload = request(*running_server, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["schema_version"] == 1
        assert payload["tables"] == len(serve_corpus)
        assert payload["default_engine"] == "batched"

    def test_metrics_shape(self, running_server):
        host, port = running_server
        request(host, port, "GET", "/healthz")
        status, payload = request(host, port, "GET", "/metrics")
        assert status == 200
        assert payload["schema_version"] == 1
        assert payload["uptime_seconds"] >= 0
        healthz = payload["endpoints"]["healthz"]
        assert healthz["requests"] >= 1
        assert set(healthz["latency_seconds"]) == {"p50", "p90", "p99", "max", "window"}
        assert "batched" in payload["caches"]
        assert "candidate_cache" in payload["caches"]["batched"]
        assert payload["bundle"]["identity"]["model_sha256"]

    def test_metrics_count_errors(self, running_server):
        host, port = running_server
        before = request(host, port, "GET", "/metrics")[1]
        request(host, port, "POST", "/search", {"relation": "rel:none"})
        after = request(host, port, "GET", "/metrics")[1]
        errors_before = before["endpoints"].get("search", {}).get("errors", 0)
        assert after["endpoints"]["search"]["errors"] == errors_before + 1


class TestAnnotateEndpoint:
    def test_matches_oneshot_pipeline(
        self, running_server, tiny_world, serve_corpus
    ):
        """/annotate from the bundle ≡ the one-shot CLI annotation path."""
        reference_pipeline = AnnotationPipeline(tiny_world.annotator_view)
        for labeled in serve_corpus[:3]:
            expected = annotation_to_dict(reference_pipeline.annotate(labeled.table))
            status, payload = request(
                *running_server,
                "POST",
                "/annotate",
                {"table": labeled.table.to_dict()},
            )
            assert status == 200
            assert payload["annotation"] == expected
            assert payload["engine"] == "batched"
            assert payload["timing_seconds"]["total"] > 0

    def test_engine_selectable_per_request(self, running_server, serve_corpus):
        table = serve_corpus[0].table.to_dict()
        batched = request(
            *running_server, "POST", "/annotate", {"table": table}
        )[1]
        scalar = request(
            *running_server,
            "POST",
            "/annotate",
            {"table": table, "engine": "scalar"},
        )[1]
        assert scalar["engine"] == "scalar"
        # interchangeable engines: identical labels either way
        assert scalar["annotation"] == batched["annotation"]

    def test_invalid_table_payload(self, running_server):
        status, payload = request(
            *running_server, "POST", "/annotate", {"table": {"cells": [["x"]]}}
        )
        assert status == 400
        assert payload["schema_version"] == 1
        assert payload["error"]["code"] == "invalid_table"
        assert "invalid table payload" in payload["error"]["message"]

    def test_unknown_engine(self, running_server, serve_corpus):
        status, payload = request(
            *running_server,
            "POST",
            "/annotate",
            {"table": serve_corpus[0].table.to_dict(), "engine": "quantum"},
        )
        assert status == 400
        assert payload["error"]["code"] == "unknown_engine"
        assert "unknown engine" in payload["error"]["message"]


class TestSearchEndpoints:
    def test_search_matches_direct_searcher(
        self, running_server, tiny_world, serve_state
    ):
        relation_id, entity_id = find_productive_query(
            tiny_world, serve_state.index
        )
        expected = serve_state.search_payload(
            {"relation": relation_id, "entity": entity_id}
        )
        status, payload = request(
            *running_server,
            "POST",
            "/search",
            {"relation": relation_id, "entity": entity_id},
        )
        assert status == 200
        assert payload == expected
        assert payload["answers"]

    def test_top_k_trims_answers(self, running_server, tiny_world, serve_state):
        relation_id, entity_id = find_productive_query(
            tiny_world, serve_state.index
        )
        payload = request(
            *running_server,
            "POST",
            "/search",
            {"relation": relation_id, "entity": entity_id, "top_k": 1},
        )[1]
        assert len(payload["answers"]) <= 1

    def test_unknown_relation_is_400(self, running_server):
        status, payload = request(
            *running_server,
            "POST",
            "/search",
            {"relation": "rel:nope", "entity": "ent:nope"},
        )
        assert status == 400
        assert payload["error"]["code"] == "unknown_id"
        assert "unknown" in payload["error"]["message"]

    def test_missing_field_is_400(self, running_server):
        status, payload = request(*running_server, "POST", "/search", {})
        assert status == 400
        assert payload["error"]["code"] == "validation_error"
        assert "missing required field" in payload["error"]["message"]

    def test_join_endpoint_answers(self, running_server, serve_state):
        # derive a valid join query from the catalog's relation schemas
        catalog = serve_state.catalog
        for first in catalog.relations.all_relations():
            for second in catalog.relations.all_relations():
                compatible = catalog.types.is_subtype(
                    second.subject_type, first.object_type
                ) or catalog.types.is_subtype(
                    first.object_type, second.subject_type
                )
                if not compatible:
                    continue
                objects = sorted(
                    catalog.relations.participating_objects(second.relation_id)
                )
                if not objects:
                    continue
                status, payload = request(
                    *running_server,
                    "POST",
                    "/search/join",
                    {
                        "first_relation": first.relation_id,
                        "second_relation": second.relation_id,
                        "entity": objects[0],
                    },
                )
                assert status == 200
                assert set(payload) == {
                    "schema_version",
                    "answers",
                    "tables_considered",
                    "rows_matched",
                }
                return
        pytest.skip("no join-compatible relation pair in the tiny world")


class TestRouting:
    def test_unknown_path_404(self, running_server):
        assert request(*running_server, "GET", "/nope")[0] == 404

    def test_post_only_routes_reject_get(self, running_server):
        assert request(*running_server, "GET", "/annotate")[0] == 405

    def test_get_only_routes_reject_post(self, running_server):
        assert request(*running_server, "POST", "/healthz", {})[0] == 405

    def test_invalid_json_body(self, running_server):
        host, port = running_server
        conn = HTTPConnection(host, port, timeout=30)
        try:
            conn.request(
                "POST",
                "/search",
                body="{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert payload["error"]["code"] == "bad_request"
        assert "invalid JSON" in payload["error"]["message"]

    def test_empty_body_rejected(self, running_server):
        status, payload = request(*running_server, "POST", "/search")
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert "body required" in payload["error"]["message"]

    def test_invalid_content_length_is_400(self, running_server):
        host, port = running_server
        conn = HTTPConnection(host, port, timeout=30)
        try:
            conn.putrequest("POST", "/search")
            conn.putheader("Content-Length", "abc")
            conn.endheaders()
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert "Content-Length" in payload["error"]["message"]

    def test_error_with_unread_body_does_not_desync_keepalive(
        self, running_server
    ):
        """A 404 that skips the POST body must not poison the connection.

        The server replies Connection: close on error paths, so the unread
        body bytes can never be misparsed as the next request line.
        """
        host, port = running_server
        conn = HTTPConnection(host, port, timeout=30)
        try:
            body = json.dumps({"x": 1})
            conn.request(
                "POST",
                "/nope",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 404
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            conn.close()
        # a fresh request afterwards works normally
        status, payload = request(host, port, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"


class TestServeStateConfig:
    def test_session_config_engine_respected(self, loaded_bundle):
        """An explicit SessionConfig engine stands when default_engine is
        unset; an explicit default_engine wins when both are given."""
        from repro.api import SessionConfig
        from repro.serve.state import ServeState

        state = ServeState(
            loaded_bundle, session_config=SessionConfig(engine="scalar")
        )
        assert state.default_engine == "scalar"
        assert state.healthz()["default_engine"] == "scalar"

        explicit = ServeState(
            loaded_bundle,
            default_engine="batched",
            session_config=SessionConfig(engine="scalar"),
        )
        assert explicit.default_engine == "batched"

    def test_legacy_pipeline_config_keeps_candidate_engine(self, loaded_bundle):
        """The legacy (engine, PipelineConfig) fold must not silently force
        the batched candidate engine over an explicit scalar request."""
        from repro.core.annotator import AnnotatorConfig
        from repro.pipeline.pipeline import PipelineConfig
        from repro.serve.state import ServeState

        state = ServeState(
            loaded_bundle,
            pipeline_config=PipelineConfig(
                annotator=AnnotatorConfig(candidate_engine="scalar")
            ),
        )
        assert state.session.config.candidate_engine == "scalar"
        pipeline = state.session.pipeline()
        assert pipeline.config.annotator.candidate_engine == "scalar"


class TestConcurrentDeterminism:
    """N threads hammering the warm server ≡ serial answers."""

    def test_concurrent_annotate_matches_serial(
        self, running_server, serve_corpus
    ):
        tables = [labeled.table.to_dict() for labeled in serve_corpus]
        serial = {
            table["table_id"]: request(
                *running_server, "POST", "/annotate", {"table": table}
            )[1]["annotation"]
            for table in tables
        }

        results: dict[tuple[int, str], dict] = {}
        errors: list[BaseException] = []

        def hammer(worker: int) -> None:
            try:
                # each worker annotates every table, in a different order
                ordered = tables[worker:] + tables[:worker]
                for table in ordered:
                    status, payload = request(
                        *running_server, "POST", "/annotate", {"table": table}
                    )
                    assert status == 200
                    results[(worker, table["table_id"])] = payload["annotation"]
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        workers = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(6)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=300)
        assert not errors, errors
        assert len(results) == 6 * len(tables)
        for (_worker, table_id), annotation in results.items():
            assert annotation == serial[table_id]

    def test_concurrent_mixed_traffic(
        self, running_server, tiny_world, serve_state, serve_corpus
    ):
        relation_id, entity_id = find_productive_query(
            tiny_world, serve_state.index
        )
        search_body = {"relation": relation_id, "entity": entity_id}
        expected_search = request(
            *running_server, "POST", "/search", search_body
        )[1]
        table = serve_corpus[0].table.to_dict()
        expected_annotation = request(
            *running_server, "POST", "/annotate", {"table": table}
        )[1]["annotation"]

        errors: list[BaseException] = []

        def mixed(worker: int) -> None:
            try:
                for round_ in range(4):
                    if (worker + round_) % 2:
                        payload = request(
                            *running_server, "POST", "/search", search_body
                        )[1]
                        assert payload == expected_search
                    else:
                        payload = request(
                            *running_server, "POST", "/annotate", {"table": table}
                        )[1]
                        assert payload["annotation"] == expected_annotation
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        workers = [
            threading.Thread(target=mixed, args=(worker,)) for worker in range(8)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=300)
        assert not errors, errors
