"""Bundle round-trip and integrity tests.

The contract under test: building a bundle and loading it back yields
byte-identical query behaviour to the freshly built in-memory state, and
any tampering (version, content, missing files) is rejected with a clear
error before the bundle is used.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.io import (
    annotation_from_payload,
    annotation_to_dict,
    annotation_to_payload,
)
from repro.pipeline.pipeline import AnnotationPipeline
from repro.search.annotated_search import AnnotatedSearcher
from repro.search.query import RelationQuery
from repro.search.table_index import AnnotatedTableIndex
from repro.serve.bundle import (
    FORMAT_VERSION,
    load_bundle,
    read_manifest,
)
from repro.serve.errors import (
    BundleError,
    BundleIntegrityError,
    BundleVersionError,
)
from repro.serve.state import response_to_dict
from repro.text.index import InvertedIndex
from tests.serve.conftest import find_productive_query


@pytest.fixture(scope="module")
def fresh_state(tiny_world, serve_corpus):
    """The reference: pipeline + index built directly from the corpus."""
    pipeline = AnnotationPipeline(tiny_world.annotator_view)
    index = AnnotatedTableIndex.from_corpus(
        tiny_world.annotator_view, serve_corpus, pipeline=pipeline
    )
    return pipeline, index


class TestManifest:
    def test_manifest_shape(self, bundle_dir):
        manifest = read_manifest(bundle_dir)
        assert manifest.format_version == FORMAT_VERSION
        assert manifest.stats["n_tables"] == 8
        assert manifest.identity["model_sha256"]
        assert manifest.identity["catalog_sha256"]
        # every non-manifest bundle file is hash-tracked
        tracked = set(manifest.files)
        on_disk = {
            path.relative_to(bundle_dir).as_posix()
            for path in bundle_dir.rglob("*")
            if path.is_file() and path.name != "manifest.json"
        }
        assert tracked == on_disk

    def test_model_fingerprint_matches(self, bundle_dir, loaded_bundle):
        manifest = read_manifest(bundle_dir)
        assert manifest.identity["model_sha256"] == loaded_bundle.model.fingerprint()


class TestCandidateTables:
    def test_candidate_state_restores_built_tables(
        self, loaded_bundle, tiny_world
    ):
        import numpy as np

        from repro.core.candidates_batched import InternedCandidateTables

        assert loaded_bundle.candidate_state is not None
        restored = InternedCandidateTables.from_state(
            loaded_bundle.candidate_state
        )
        built = InternedCandidateTables.from_catalog(tiny_world.annotator_view)
        assert restored.entity_ids == built.entity_ids
        assert restored.type_ids == built.type_ids
        assert restored.relation_ids == built.relation_ids
        for field in (
            "anc_offsets",
            "anc_flat",
            "type_specificity",
            "pair_keys",
            "pair_offsets",
            "pair_relations",
            "tuple_offsets",
            "tuple_keys_by_relation",
        ):
            assert np.array_equal(
                getattr(restored, field), getattr(built, field)
            ), field

    def test_bundle_session_reuses_candidate_state(self, bundle_dir):
        from repro.api.session import ReproSession
        from repro.core.candidates_batched import BatchedCandidateEngine

        session = ReproSession.from_bundle(bundle_dir)
        pipeline = session.pipeline()
        generator = pipeline.annotator.candidate_generator
        # the pipeline wraps the engine in the caching front; unwrap
        engine = getattr(generator, "_generator", generator)
        assert isinstance(engine, BatchedCandidateEngine)
        assert list(engine.tables.entity_ids) == list(
            session.bundle.candidate_state["entity_ids"]
        )


class TestRoundTrip:
    def test_annotations_identical(self, loaded_bundle, fresh_state):
        _pipeline, fresh_index = fresh_state
        assert set(loaded_bundle.table_index.annotations) == set(
            fresh_index.annotations
        )
        for table_id, fresh in fresh_index.annotations.items():
            restored = loaded_bundle.table_index.annotations[table_id]
            assert annotation_to_dict(restored) == annotation_to_dict(fresh)
            # scores survive too (full-fidelity payloads)
            assert annotation_to_payload(restored) == annotation_to_payload(fresh)

    def test_search_results_byte_identical(
        self, tiny_world, loaded_bundle, fresh_state
    ):
        _pipeline, fresh_index = fresh_state
        catalog = tiny_world.annotator_view
        relation_id, entity_id = find_productive_query(tiny_world, fresh_index)
        query = RelationQuery.from_catalog(catalog, relation_id, entity_id)
        for use_relations in (True, False):
            fresh_response = AnnotatedSearcher(
                fresh_index, catalog, use_relations=use_relations
            ).search(query)
            loaded_response = AnnotatedSearcher(
                loaded_bundle.table_index, catalog, use_relations=use_relations
            ).search(query)
            assert json.dumps(response_to_dict(loaded_response)) == json.dumps(
                response_to_dict(fresh_response)
            )
        assert fresh_response.answers  # the query is productive, not vacuous

    def test_header_and_context_lookups_identical(
        self, loaded_bundle, fresh_state
    ):
        _pipeline, fresh_index = fresh_state
        for table in fresh_index.tables.values():
            if table.headers:
                header = next((h for h in table.headers if h), None)
                if header:
                    assert loaded_bundle.table_index.columns_with_header(
                        header
                    ) == fresh_index.columns_with_header(header)
            if table.context:
                assert loaded_bundle.table_index.tables_with_context(
                    table.context
                ) == fresh_index.tables_with_context(table.context)

    def test_lemma_index_identical(self, loaded_bundle, fresh_state):
        pipeline, _fresh_index = fresh_state
        fresh_lemma = pipeline.annotator.candidate_generator.lemma_index
        for probe in ("a", "the", "john", "film", "club"):
            assert loaded_bundle.lemma_index.search(probe) == fresh_lemma.search(
                probe
            )

    def test_stats_identical(self, loaded_bundle, fresh_state):
        _pipeline, fresh_index = fresh_state
        assert loaded_bundle.table_index.stats() == fresh_index.stats()


class TestRejection:
    """Tampered bundles fail fast with precise errors."""

    @pytest.fixture()
    def copied_bundle(self, bundle_dir, tmp_path):
        import shutil

        target = tmp_path / "bundle"
        shutil.copytree(bundle_dir, target)
        return target

    def test_version_mismatch_rejected(self, copied_bundle):
        manifest_path = copied_bundle / "manifest.json"
        payload = json.loads(manifest_path.read_text())
        payload["format_version"] = FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(BundleVersionError, match="format version"):
            load_bundle(copied_bundle)

    def test_corrupted_file_rejected(self, copied_bundle):
        annotations = copied_bundle / "annotations.jsonl"
        annotations.write_text(annotations.read_text().replace("e", "E", 1))
        with pytest.raises(BundleIntegrityError, match="annotations.jsonl"):
            load_bundle(copied_bundle)

    def test_missing_file_rejected(self, copied_bundle):
        (copied_bundle / "tfidf.json").unlink()
        with pytest.raises(BundleIntegrityError, match="missing"):
            load_bundle(copied_bundle)

    def test_not_a_bundle_rejected(self, tmp_path):
        with pytest.raises(BundleError, match="manifest"):
            load_bundle(tmp_path)

    def test_verify_can_be_skipped(self, copied_bundle):
        # tampering an un-tracked byte region is out of scope; verify=False
        # must still load a *valid* bundle
        assert load_bundle(copied_bundle, verify=False).table_index.stats()


class TestAnnotationPayloadRoundTrip:
    def test_scores_and_labels_survive(self, fresh_state):
        _pipeline, fresh_index = fresh_state
        for annotation in fresh_index.annotations.values():
            payload = annotation_to_payload(annotation)
            restored = annotation_from_payload(
                json.loads(json.dumps(payload))
            )
            assert annotation_to_payload(restored) == payload


@settings(max_examples=25, deadline=None)
@given(
    documents=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.text(
                alphabet=st.sampled_from("abc xyz"),
                min_size=0,
                max_size=12,
            ),
        ),
        min_size=0,
        max_size=12,
    ),
    query=st.text(alphabet=st.sampled_from("abc xyz"), min_size=0, max_size=8),
)
def test_index_state_round_trip_property(documents, query):
    """Any built index serializes and restores to identical behaviour."""
    index = InvertedIndex()
    for key, text in documents:
        index.add(f"k{key}", text)
    restored = InvertedIndex.from_state(index.to_state())
    assert restored.search(query) == index.search(query)
    assert restored.document_count == index.document_count
    for token in ("abc", "xyz", "a"):
        assert restored.keys_with_token(token) == index.keys_with_token(token)
