"""Tests for the typed public API layer (repro.api)."""
