"""Property tests of the wire schema: every type round-trips exactly.

For each public request/response type ``T`` and every hypothesis-generated
instance ``x``: ``T.from_json(json.loads(encode_json(x.to_json()))) == x`` —
i.e. the round trip goes through real JSON text, not just dicts.  Plus the
strictness contract: unknown ``schema_version`` and unknown fields are
rejected with stable error codes.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import errors as api_errors
from repro.api.errors import ApiError
from repro.api.types import (
    SCHEMA_VERSION,
    WIRE_TYPES,
    AnnotateRequest,
    AnnotateResponse,
    BundleBuildRequest,
    BundleBuildResponse,
    ErrorEnvelope,
    JoinSearchRequest,
    SearchRequest,
    SearchResponse,
    TrainRequest,
    TrainResponse,
    encode_json,
)
from repro.search.ranking import SearchAnswer
from repro.tables.model import Table

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
texts = st.text(max_size=12)
ids = st.text(min_size=1, max_size=12)
scores = st.floats(allow_nan=False, allow_infinity=False)
counts = st.integers(min_value=0, max_value=10**9)
top_ks = st.one_of(st.none(), st.integers(min_value=1, max_value=100))
engines = st.one_of(st.none(), st.sampled_from(["batched", "scalar"]))


@st.composite
def tables(draw) -> Table:
    n_rows = draw(st.integers(min_value=1, max_value=3))
    n_cols = draw(st.integers(min_value=1, max_value=3))
    cells = [[draw(texts) for _ in range(n_cols)] for _ in range(n_rows)]
    headers = draw(
        st.one_of(
            st.none(),
            st.lists(
                st.one_of(st.none(), texts), min_size=n_cols, max_size=n_cols
            ),
        )
    )
    return Table(
        table_id=draw(ids),
        cells=cells,
        headers=headers,
        context=draw(texts),
        source=draw(st.one_of(st.none(), texts)),
    )


annotations = st.fixed_dictionaries(
    {
        "table_id": ids,
        "cells": st.dictionaries(texts, st.one_of(st.none(), texts), max_size=4),
        "columns": st.dictionaries(texts, st.one_of(st.none(), texts), max_size=3),
        "relations": st.dictionaries(texts, st.one_of(st.none(), texts), max_size=3),
    }
)

diagnostics = st.fixed_dictionaries(
    {
        "iterations": st.one_of(st.none(), counts),
        "converged": st.one_of(st.none(), st.booleans()),
        "n_variables": st.one_of(st.none(), counts),
        "n_factors": st.one_of(st.none(), counts),
    }
)

timings = st.one_of(
    st.none(),
    st.fixed_dictionaries(
        {"total": scores, "candidates": scores, "inference": scores}
    ),
)

answers = st.builds(
    SearchAnswer,
    text=texts,
    score=scores,
    entity_id=st.one_of(st.none(), ids),
    supporting_tables=st.tuples(ids).map(tuple)
    | st.just(())
    | st.lists(ids, max_size=3).map(tuple),
)

annotate_requests = st.builds(
    AnnotateRequest, table=tables(), engine=engines, include_timing=st.booleans()
)
annotate_responses = st.builds(
    AnnotateResponse,
    table_id=ids,
    engine=st.sampled_from(["batched", "scalar"]),
    annotation=annotations,
    diagnostics=diagnostics,
    timing_seconds=timings,
)
search_requests = st.builds(
    SearchRequest,
    relation=ids,
    entity=ids,
    use_relations=st.booleans(),
    top_k=top_ks,
)
join_requests = st.builds(
    JoinSearchRequest,
    first_relation=ids,
    second_relation=ids,
    entity=ids,
    top_k=top_ks,
)
search_responses = st.builds(
    SearchResponse,
    answers=st.lists(answers, max_size=4).map(tuple),
    tables_considered=counts,
    rows_matched=counts,
)
train_requests = st.builds(
    TrainRequest,
    corpus_path=ids,
    epochs=st.integers(min_value=1, max_value=50),
    seed=st.integers(min_value=-(2**31), max_value=2**31),
    method=st.sampled_from(["perceptron", "ssvm"]),
    output_path=st.one_of(st.none(), ids),
)
train_responses = st.builds(
    TrainResponse,
    n_tables=counts,
    epochs=st.integers(min_value=1, max_value=50),
    final_hamming_loss=scores,
    model_fingerprint=ids,
    model_path=st.one_of(st.none(), ids),
)
bundle_requests = st.builds(
    BundleBuildRequest, corpus_path=ids, output_path=ids
)
bundle_responses = st.builds(
    BundleBuildResponse,
    output_path=ids,
    n_tables=counts,
    n_files=counts,
    annotate_seconds=scores,
)
envelopes = st.builds(
    ErrorEnvelope, code=st.sampled_from(api_errors.ERROR_CODES), message=texts
)


def roundtrip(value):
    """to_json -> real JSON text -> from_json."""
    payload = json.loads(encode_json(value.to_json()))
    return type(value).from_json(payload)


# ----------------------------------------------------------------------
# round-trip properties (one per wire type)
# ----------------------------------------------------------------------
@settings(max_examples=50)
@given(annotate_requests)
def test_annotate_request_roundtrip(value):
    assert roundtrip(value) == value


@settings(max_examples=50)
@given(annotate_responses)
def test_annotate_response_roundtrip(value):
    assert roundtrip(value) == value


@settings(max_examples=50)
@given(search_requests)
def test_search_request_roundtrip(value):
    assert roundtrip(value) == value


@settings(max_examples=50)
@given(join_requests)
def test_join_search_request_roundtrip(value):
    assert roundtrip(value) == value


@settings(max_examples=50)
@given(search_responses)
def test_search_response_roundtrip(value):
    assert roundtrip(value) == value


@settings(max_examples=50)
@given(train_requests)
def test_train_request_roundtrip(value):
    assert roundtrip(value) == value


@settings(max_examples=50)
@given(train_responses)
def test_train_response_roundtrip(value):
    assert roundtrip(value) == value


@settings(max_examples=25)
@given(bundle_requests)
def test_bundle_build_request_roundtrip(value):
    assert roundtrip(value) == value


@settings(max_examples=25)
@given(bundle_responses)
def test_bundle_build_response_roundtrip(value):
    assert roundtrip(value) == value


@settings(max_examples=25)
@given(envelopes)
def test_error_envelope_roundtrip(value):
    assert roundtrip(value) == value


# ----------------------------------------------------------------------
# strictness: versioning, unknown fields, stable codes
# ----------------------------------------------------------------------
EXAMPLES = {
    AnnotateRequest: AnnotateRequest(table=Table("t1", [["x"]])),
    AnnotateResponse: AnnotateResponse(
        table_id="t1", engine="batched", annotation={"table_id": "t1"}
    ),
    SearchRequest: SearchRequest(relation="rel:r", entity="ent:e"),
    JoinSearchRequest: JoinSearchRequest(
        first_relation="rel:a", second_relation="rel:b", entity="ent:e"
    ),
    SearchResponse: SearchResponse(),
    TrainRequest: TrainRequest(corpus_path="corpus.jsonl"),
    TrainResponse: TrainResponse(
        n_tables=1, epochs=1, final_hamming_loss=0.0, model_fingerprint="abc"
    ),
    BundleBuildRequest: BundleBuildRequest(
        corpus_path="corpus.jsonl", output_path="bundle"
    ),
    BundleBuildResponse: BundleBuildResponse(
        output_path="bundle", n_tables=1, n_files=1, annotate_seconds=0.0
    ),
    ErrorEnvelope: ErrorEnvelope(code="internal_error", message="boom"),
}


def test_examples_cover_every_wire_type():
    assert set(EXAMPLES) == set(WIRE_TYPES)


@pytest.mark.parametrize("wire_type", WIRE_TYPES, ids=lambda t: t.__name__)
def test_unknown_schema_version_rejected(wire_type):
    payload = EXAMPLES[wire_type].to_json()
    assert payload["schema_version"] == SCHEMA_VERSION
    payload["schema_version"] = SCHEMA_VERSION + 99
    with pytest.raises(ApiError) as excinfo:
        wire_type.from_json(payload)
    assert excinfo.value.code == "schema_version_unsupported"
    assert excinfo.value.http_status == 400


@pytest.mark.parametrize("wire_type", WIRE_TYPES, ids=lambda t: t.__name__)
def test_missing_schema_version_means_current(wire_type):
    example = EXAMPLES[wire_type]
    payload = example.to_json()
    del payload["schema_version"]
    assert wire_type.from_json(payload) == example


@pytest.mark.parametrize("wire_type", WIRE_TYPES, ids=lambda t: t.__name__)
def test_unknown_field_rejected(wire_type):
    payload = EXAMPLES[wire_type].to_json()
    payload["definitely_not_a_field"] = 1
    with pytest.raises(ApiError) as excinfo:
        wire_type.from_json(payload)
    assert excinfo.value.code == "validation_error"


@pytest.mark.parametrize("wire_type", WIRE_TYPES, ids=lambda t: t.__name__)
def test_non_object_payload_rejected(wire_type):
    with pytest.raises(ApiError) as excinfo:
        wire_type.from_json(["not", "an", "object"])
    assert excinfo.value.code == "validation_error"


def test_missing_required_field_code_is_stable():
    with pytest.raises(ApiError) as excinfo:
        SearchRequest.from_json({"relation": "rel:r"})
    assert excinfo.value.code == "validation_error"
    assert "missing required field: 'entity'" in excinfo.value.message


def test_invalid_table_payload_code():
    with pytest.raises(ApiError) as excinfo:
        AnnotateRequest.from_json({"table": {"cells": [["x"]]}})
    assert excinfo.value.code == "invalid_table"


def test_bad_top_k_rejected():
    for bad in (0, -3, "five", 1.5, True):
        with pytest.raises(ApiError) as excinfo:
            SearchRequest.from_json(
                {"relation": "r", "entity": "e", "top_k": bad}
            )
        assert excinfo.value.code == "validation_error"


def test_malformed_response_fields_map_to_validation_error():
    """Response decoders classify bad field types, never leak TypeError."""
    with pytest.raises(ApiError) as excinfo:
        AnnotateResponse.from_json(
            {
                "table_id": "t",
                "engine": "batched",
                "annotation": {},
                "timing_seconds": 3.5,
            }
        )
    assert excinfo.value.code == "validation_error"
    with pytest.raises(ApiError) as excinfo:
        AnnotateResponse.from_json(
            {"table_id": "t", "engine": "batched", "annotation": {},
             "diagnostics": "oops"}
        )
    assert excinfo.value.code == "validation_error"
    with pytest.raises(ApiError) as excinfo:
        SearchResponse.from_json({"answers": [], "tables_considered": None})
    assert excinfo.value.code == "validation_error"


def test_bad_request_error_keeps_serve_hierarchy():
    """The serve-layer shim is both an ApiError and a ServeError."""
    from repro.serve.errors import BadRequestError, ServeError

    error = BadRequestError("nope")
    assert isinstance(error, ApiError)
    assert isinstance(error, ServeError)
    assert error.code == "bad_request"
    assert error.http_status == 400


def test_every_error_code_has_a_status():
    for code in api_errors.ERROR_CODES:
        assert api_errors.http_status_for(code) in (400, 404, 405, 409, 500, 503)
    assert api_errors.http_status_for("never_registered") == 500


def test_envelope_status_derived_from_code():
    assert ErrorEnvelope(code="not_found", message="x").http_status == 404
    assert ErrorEnvelope(code="internal_error", message="x").http_status == 500


def test_to_api_error_classifies_internal_exceptions():
    from repro.catalog.errors import UnknownIdError
    from repro.serve.errors import BundleIntegrityError, BundleVersionError

    assert api_errors.to_api_error(UnknownIdError("entity", "e")).code == (
        "unknown_id"
    )
    assert api_errors.to_api_error(BundleVersionError("v")).code == (
        "bundle_version_unsupported"
    )
    assert api_errors.to_api_error(BundleIntegrityError("h")).code == (
        "bundle_integrity"
    )
    assert api_errors.to_api_error(FileNotFoundError("f")).code == "io_error"
    assert api_errors.to_api_error(RuntimeError("boom")).code == "internal_error"
    # already-classified errors pass through untouched
    original = ApiError("unknown_engine", "nope")
    assert api_errors.to_api_error(original) is original


def test_to_api_error_classifies_worker_failures():
    # regression: WorkerTimeout and WorkerSpawnError fell through to the
    # opaque internal_error even though both mean "retry against another
    # worker" — they must classify as the retryable worker_failed
    from repro.serve.errors import WorkerSpawnError, WorkerTimeout
    from repro.serve.pool import WorkerTimeout as pool_timeout

    timeout = api_errors.to_api_error(WorkerTimeout("w0 silent for 120s"))
    assert timeout.code == "worker_failed"
    assert timeout.http_status == 503

    spawn = api_errors.to_api_error(WorkerSpawnError("fork failed"))
    assert spawn.code == "worker_failed"
    # the old spelling subclassed RuntimeError; keep old handlers working
    assert isinstance(WorkerSpawnError("x"), RuntimeError)
    assert pool_timeout is WorkerTimeout  # pool re-exports the moved class
