"""Fixtures for the typed API tests: one tiny world, corpus and session."""

from __future__ import annotations

import pytest

from repro.api.session import ReproSession
from repro.tables.generator import (
    NoiseProfile,
    TableGeneratorConfig,
    WebTableGenerator,
)


@pytest.fixture(scope="session")
def api_corpus(tiny_world):
    """A small labeled corpus over the tiny world."""
    generator = WebTableGenerator(
        tiny_world.full,
        TableGeneratorConfig(seed=47, n_tables=6, noise=NoiseProfile.WIKI),
    )
    return generator.generate()


@pytest.fixture(scope="session")
def api_session(tiny_world, api_corpus):
    """One indexed world session shared by the read-only API tests."""
    session = ReproSession.from_world(tiny_world.annotator_view)
    session.index_corpus(api_corpus)
    return session


def find_productive_query(world, index) -> tuple[str, str]:
    """A (relation, entity) pair whose Type+Rel search returns answers."""
    for relation_id, edges in sorted(index._edges_by_relation.items()):
        if relation_id not in world.annotator_view.relations:
            continue
        for edge in edges:
            annotation = index.annotations.get(edge.table_id)
            if annotation is None:
                continue
            table = index.tables[edge.table_id]
            for row in range(table.n_rows):
                entity_id = annotation.entity_of(row, edge.object_column)
                if entity_id is not None and entity_id in (
                    world.annotator_view.entities
                ):
                    return relation_id, entity_id
    raise AssertionError("no productive (relation, entity) query in the corpus")
