"""Behaviour of the :class:`ReproSession` facade and its error taxonomy."""

from __future__ import annotations

import json

import pytest

from repro.api.config import SessionConfig, validate_engine
from repro.api.errors import ApiError
from repro.api.session import ReproSession
from repro.api.types import (
    AnnotateRequest,
    BundleBuildRequest,
    JoinSearchRequest,
    SearchRequest,
    TrainRequest,
    encode_json,
)
from repro.catalog.io import save_catalog_json
from repro.core.model import AnnotationModel
from repro.pipeline.io import annotation_to_dict
from repro.pipeline.pipeline import AnnotationPipeline
from repro.tables.corpus import TableCorpus, save_corpus_jsonl
from tests.api.conftest import find_productive_query


class TestSessionConfig:
    def test_roundtrip_json(self):
        config = SessionConfig(engine="scalar", workers=2, cache_size=10)
        assert SessionConfig.from_json(config.to_json()) == config

    def test_unknown_field_rejected(self):
        with pytest.raises(ApiError) as excinfo:
            SessionConfig.from_json({"no_such_knob": 1})
        assert excinfo.value.code == "validation_error"

    def test_bad_engine_rejected_everywhere(self):
        for build in (
            lambda: SessionConfig(engine="quantum"),
            lambda: validate_engine("quantum"),
            lambda: SessionConfig().pipeline_config("quantum"),
        ):
            with pytest.raises(ApiError) as excinfo:
                build()
            assert excinfo.value.code == "unknown_engine"
            # the message must name the valid engines
            assert "batched" in excinfo.value.message
            assert "scalar" in excinfo.value.message

    def test_pipeline_config_carries_engine(self):
        config = SessionConfig(engine="batched").pipeline_config("scalar")
        assert config.annotator.engine == "scalar"

    def test_roundtrip_json_with_candidate_engine(self):
        config = SessionConfig(candidate_engine="scalar")
        assert SessionConfig.from_json(config.to_json()) == config
        assert config.to_json()["candidate_engine"] == "scalar"

    def test_bad_candidate_engine_rejected_everywhere(self):
        from repro.api.config import validate_candidate_engine

        for build in (
            lambda: SessionConfig(candidate_engine="quantum"),
            lambda: validate_candidate_engine("quantum"),
            lambda: SessionConfig().pipeline_config(candidate_engine="quantum"),
        ):
            with pytest.raises(ApiError) as excinfo:
                build()
            assert excinfo.value.code == "unknown_engine"
            assert "batched" in excinfo.value.message
            assert "scalar" in excinfo.value.message

    def test_pipeline_config_carries_candidate_engine(self):
        config = SessionConfig().pipeline_config(candidate_engine="scalar")
        assert config.annotator.candidate_engine == "scalar"
        assert config.annotator.engine == "batched"


class TestCandidateEngines:
    def test_scalar_candidate_engine_session(self, tiny_world):
        from repro.core.candidates import CandidateGenerator

        session = ReproSession.from_world(
            tiny_world.annotator_view,
            config=SessionConfig(candidate_engine="scalar"),
        )
        generator = session.pipeline().annotator.candidate_generator
        unwrapped = getattr(generator, "_generator", generator)
        assert type(unwrapped) is CandidateGenerator

    def test_candidate_engines_share_generator_and_agree(
        self, tiny_world, api_corpus
    ):
        session = ReproSession.from_world(tiny_world.annotator_view)
        batched = session.pipeline()
        scalar = session.pipeline(candidate_engine="scalar")
        assert batched is not scalar
        # both candidate paths share one frozen lemma index
        assert (
            batched.annotator.candidate_generator.lemma_index
            is scalar.annotator.candidate_generator.lemma_index
        )
        table = api_corpus[0].table
        assert annotation_to_dict(batched.annotate(table)) == annotation_to_dict(
            scalar.annotate(table)
        )
        names = set(session.pipelines())
        assert "batched" in names
        assert "batched/scalar" in names

    def test_batched_engine_built_once_under_race(
        self, tiny_world, monkeypatch
    ):
        """Concurrent callers get one shared BatchedCandidateEngine.

        Regression for the lazy-init race flagged by reprolint's
        lock-unguarded-attr rule: ``train()`` reaches
        ``_candidate_generator_for`` without ``_pipeline_lock``, so the
        construction itself must serialize on ``_state_lock``.
        """
        import threading
        import time

        import repro.api.session as session_module

        session = ReproSession.from_world(
            tiny_world.annotator_view,
            config=SessionConfig(candidate_engine="scalar"),
        )
        assert session._batched_engine is None  # scalar warmup skips it

        real_engine = session_module.BatchedCandidateEngine
        built = []

        class CountingEngine(real_engine):
            def __init__(self, *args, **kwargs):
                built.append(self)
                time.sleep(0.05)  # widen the race window
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(
            session_module, "BatchedCandidateEngine", CountingEngine
        )

        results = []
        barrier = threading.Barrier(8)

        def build():
            barrier.wait()
            results.append(session._candidate_generator_for("batched"))

        threads = [threading.Thread(target=build) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(built) == 1
        assert all(result is results[0] for result in results)


class TestAnnotate:
    def test_matches_direct_pipeline(self, tiny_world, api_session, api_corpus):
        reference = AnnotationPipeline(tiny_world.annotator_view)
        for labeled in api_corpus[:3]:
            response = api_session.annotate(AnnotateRequest(table=labeled.table))
            expected = annotation_to_dict(reference.annotate(labeled.table))
            assert response.annotation == expected
            assert response.table_id == labeled.table_id
            assert response.engine == "batched"
            assert response.timing_seconds["total"] > 0

    def test_engine_override_and_timing_opt_out(self, api_session, api_corpus):
        table = api_corpus[0].table
        batched = api_session.annotate(
            AnnotateRequest(table=table, include_timing=False)
        )
        scalar = api_session.annotate(
            AnnotateRequest(table=table, engine="scalar", include_timing=False)
        )
        assert batched.timing_seconds is None
        assert scalar.engine == "scalar"
        assert scalar.annotation == batched.annotation

    def test_unknown_engine_code(self, api_session, api_corpus):
        with pytest.raises(ApiError) as excinfo:
            api_session.annotate(
                AnnotateRequest(table=api_corpus[0].table, engine="quantum")
            )
        assert excinfo.value.code == "unknown_engine"
        assert excinfo.value.http_status == 400


class TestSearch:
    def test_search_matches_direct_searcher(
        self, tiny_world, api_session
    ):
        relation_id, entity_id = find_productive_query(
            tiny_world, api_session.index
        )
        response = api_session.search(
            SearchRequest(relation=relation_id, entity=entity_id)
        )
        assert response.answers
        assert response.tables_considered > 0

    def test_top_k_trims(self, tiny_world, api_session):
        relation_id, entity_id = find_productive_query(
            tiny_world, api_session.index
        )
        trimmed = api_session.search(
            SearchRequest(relation=relation_id, entity=entity_id, top_k=1)
        )
        assert len(trimmed.answers) <= 1

    def test_unknown_relation_code(self, api_session):
        with pytest.raises(ApiError) as excinfo:
            api_session.search(
                SearchRequest(relation="rel:nope", entity="ent:nope")
            )
        assert excinfo.value.code == "unknown_id"

    def test_no_index_code(self, tiny_world):
        session = ReproSession.from_world(tiny_world.annotator_view)
        with pytest.raises(ApiError) as excinfo:
            session.search(SearchRequest(relation="rel:x", entity="ent:x"))
        assert excinfo.value.code == "no_index"
        assert excinfo.value.http_status == 409

    def test_join_incompatible_types_code(self, tiny_world, api_session):
        catalog = tiny_world.annotator_view
        relations = list(catalog.relations.all_relations())
        incompatible = None
        for first in relations:
            for second in relations:
                compatible = catalog.types.is_subtype(
                    second.subject_type, first.object_type
                ) or catalog.types.is_subtype(
                    first.object_type, second.subject_type
                )
                if not compatible:
                    incompatible = (first, second)
                    break
            if incompatible:
                break
        if incompatible is None:
            pytest.skip("all relation pairs joinable in the tiny world")
        entity = sorted(
            catalog.relations.participating_objects(
                incompatible[1].relation_id
            )
        )
        if not entity:
            pytest.skip("no participating object for the second relation")
        with pytest.raises(ApiError) as excinfo:
            api_session.join_search(
                JoinSearchRequest(
                    first_relation=incompatible[0].relation_id,
                    second_relation=incompatible[1].relation_id,
                    entity=entity[0],
                )
            )
        assert excinfo.value.code == "invalid_query"


class TestWorldLoading:
    def test_from_world_directory(self, tiny_world, tmp_path):
        world_dir = tmp_path / "world"
        world_dir.mkdir()
        save_catalog_json(tiny_world.annotator_view, world_dir / "catalog_view.json")
        session = ReproSession.from_world(world_dir)
        assert session.catalog.name == tiny_world.annotator_view.name

    def test_from_world_missing_paths(self, tmp_path):
        with pytest.raises(ApiError) as excinfo:
            ReproSession.from_world(tmp_path / "nope.json")
        assert excinfo.value.code == "io_error"
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ApiError) as excinfo:
            ReproSession.from_world(empty)
        assert excinfo.value.code == "io_error"


class TestTrainAndBundle:
    @pytest.fixture()
    def world_files(self, tiny_world, api_corpus, tmp_path):
        catalog_path = tmp_path / "catalog_view.json"
        corpus_path = tmp_path / "corpus.jsonl"
        save_catalog_json(tiny_world.annotator_view, catalog_path)
        save_corpus_jsonl(TableCorpus(list(api_corpus)), corpus_path)
        return catalog_path, corpus_path

    def test_train_writes_model(self, world_files, tmp_path):
        catalog_path, corpus_path = world_files
        session = ReproSession.from_world(catalog_path)
        model_path = tmp_path / "model.json"
        response = session.train(
            TrainRequest(
                corpus_path=str(corpus_path),
                epochs=1,
                output_path=str(model_path),
            )
        )
        assert response.n_tables == 6
        assert response.epochs == 1
        assert model_path.exists()
        assert AnnotationModel.load(model_path).fingerprint() == (
            response.model_fingerprint
        )
        # the session's own model is untouched by training
        assert session.model.fingerprint() != response.model_fingerprint

    def test_train_missing_corpus_code(self, world_files):
        catalog_path, _corpus_path = world_files
        session = ReproSession.from_world(catalog_path)
        with pytest.raises(ApiError) as excinfo:
            session.train(TrainRequest(corpus_path="/does/not/exist.jsonl"))
        assert excinfo.value.code == "io_error"

    def test_bundle_roundtrip_matches_world_session(
        self, tiny_world, api_corpus, world_files, tmp_path
    ):
        catalog_path, corpus_path = world_files
        world_session = ReproSession.from_world(catalog_path)
        response = world_session.build_bundle(
            BundleBuildRequest(
                corpus_path=str(corpus_path), output_path=str(tmp_path / "bundle")
            )
        )
        assert response.n_tables == len(api_corpus)
        assert response.n_files > 0

        bundle_session = ReproSession.from_bundle(tmp_path / "bundle")
        assert bundle_session.index is not None
        assert len(bundle_session.index) == len(api_corpus)
        for labeled in api_corpus[:2]:
            request = AnnotateRequest(table=labeled.table, include_timing=False)
            assert encode_json(
                bundle_session.annotate(request).to_json()
            ) == encode_json(world_session.annotate(request).to_json())

        relation_id, entity_id = find_productive_query(
            tiny_world, bundle_session.index
        )
        search = SearchRequest(relation=relation_id, entity=entity_id)
        world_session.index_corpus(str(corpus_path))
        assert json.loads(
            encode_json(bundle_session.search(search).to_json())
        ) == json.loads(encode_json(world_session.search(search).to_json()))

    def test_describe_reports_identity(self, api_session):
        info = api_session.describe()
        assert info["schema_version"] == 1
        assert info["default_engine"] == "batched"
        assert info["tables"] == 6
        assert "batched" in info["engines"]
