"""Tests for the text subsystem."""
