"""Tests for tokenisation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenize import STOP_TOKENS, ngrams, token_counts, token_set, tokenize


class TestTokenize:
    def test_basic(self):
        assert tokenize("Albert Einstein") == ["albert", "einstein"]

    def test_punctuation_split(self):
        assert tokenize("Relativity: The Special, and the General Theory") == [
            "relativity",
            "the",
            "special",
            "and",
            "the",
            "general",
            "theory",
        ]

    def test_numbers_kept_as_tokens(self):
        assert tokenize("1951 novels") == ["1951", "novels"]

    def test_mixed_alnum_splits_digits(self):
        assert tokenize("b-52s") == ["b", "52", "s"]

    def test_unicode(self):
        assert tokenize("Café Müller") == ["café", "müller"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("  \t\n ") == []

    def test_stop_token_removal(self):
        assert tokenize("The Lord of the Rings", drop_stop_tokens=True) == [
            "lord",
            "rings",
        ]

    def test_stop_removal_never_empties(self):
        assert tokenize("The Of A", drop_stop_tokens=True) == ["the", "of", "a"]

    @given(st.text(max_size=80))
    def test_tokens_are_lowercase_word_chars(self, text):
        for token in tokenize(text):
            assert token == token.lower()
            assert token  # never empty
            assert not any(ch.isspace() for ch in token)

    @given(st.text(max_size=80))
    def test_token_set_matches_counts(self, text):
        assert token_set(text) == frozenset(token_counts(text))


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_window_larger_than_input(self):
        assert ngrams(["a"], 2) == []

    def test_unigrams(self):
        assert ngrams(["a", "b"], 1) == [("a",), ("b",)]

    def test_invalid_n(self):
        import pytest

        with pytest.raises(ValueError):
            ngrams(["a"], 0)

    def test_stop_tokens_frozen(self):
        assert "the" in STOP_TOKENS
        assert isinstance(STOP_TOKENS, frozenset)
