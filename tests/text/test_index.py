"""Tests for the inverted index (Lucene substitute)."""

import pytest

from repro.text.index import InvertedIndex


@pytest.fixture()
def index() -> InvertedIndex:
    idx = InvertedIndex()
    idx.add("e1", "Albert Einstein")
    idx.add("e1", "Einstein")
    idx.add("e2", "Albert Brooks")
    idx.add("e3", "Einstein Bros Bagels")
    idx.add("e4", "Isaac Newton")
    idx.freeze()
    return idx


class TestRetrieval:
    def test_exact_match_ranks_first(self, index):
        hits = index.search("Albert Einstein")
        assert hits[0].key == "e1"

    def test_single_token_hits_all_holders(self, index):
        keys = {hit.key for hit in index.search("einstein")}
        assert keys == {"e1", "e3"}

    def test_no_match(self, index):
        assert index.search("zzz qqq") == []

    def test_empty_query(self, index):
        assert index.search("") == []

    def test_top_k_limits(self, index):
        hits = index.search("albert einstein newton", top_k=2)
        assert len(hits) == 2

    def test_key_deduplication_takes_best(self, index):
        # e1 indexed under two lemmas; must appear once
        hits = index.search("einstein")
        keys = [hit.key for hit in hits]
        assert keys.count("e1") == 1

    def test_scores_sorted_descending(self, index):
        hits = index.search("albert einstein bagels")
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_deterministic_tie_break(self):
        idx = InvertedIndex()
        idx.add("b", "same text")
        idx.add("a", "same text")
        hits = idx.search("same text")
        # ties broken by string form of key, descending heapq order
        assert [hit.key for hit in hits] == ["b", "a"]

    def test_pooled_scratch_resets_between_queries(self, index):
        # back-to-back identical queries share the scratch accumulator; a
        # dirty reset would double every score
        first = index.search("albert einstein bagels")
        second = index.search("albert einstein bagels")
        assert first == second
        assert index.search("newton") == index.search("newton")


class TestSearchBatch:
    def test_matches_single_query_search(self, index):
        queries = [
            "Albert Einstein",
            "einstein",
            "albert einstein newton",
            "albert einstein bagels",
            "zzz qqq",
            "",
            "Einstein!",
            "newton isaac",
        ]
        batch = index.search_batch(queries, top_k=3)
        for query, hits in zip(queries, batch):
            assert hits == index.search(query, top_k=3), query

    def test_duplicate_queries_share_one_result(self, index):
        batch = index.search_batch(["einstein", "einstein"])
        assert batch[0] is batch[1]

    def test_tie_break_matches_scalar(self):
        idx = InvertedIndex()
        idx.add("b", "same text")
        idx.add("a", "same text")
        idx.add("c", "same text")
        for top_k in (1, 2, 3, 5):
            assert idx.search_batch(["same text"], top_k=top_k) == [
                idx.search("same text", top_k=top_k)
            ]

    def test_boundary_ties_kept_exactly(self):
        # three tied keys around the top-k cut: the partition must keep the
        # whole tie group before the (score, str(key)) sort truncates
        idx = InvertedIndex()
        for key in ("t1", "t2", "t3"):
            idx.add(key, "shared words")
        idx.add("best", "shared words unique")
        assert idx.search_batch(["shared words unique"], top_k=2) == [
            idx.search("shared words unique", top_k=2)
        ]

    def test_batch_on_state_restored_index(self, index):
        restored = InvertedIndex.from_state(index.to_state())
        queries = ["einstein", "albert", "isaac newton", "nope"]
        assert restored.search_batch(queries) == index.search_batch(queries)


class TestStatistics:
    def test_idf_and_df(self, index):
        # df counts documents, not keys: e1 holds two einstein documents
        assert index.document_frequency("einstein") == 3
        assert index.document_frequency("albert") == 2
        assert index.idf("newton") > index.idf("einstein")

    def test_document_count(self, index):
        assert index.document_count == 5

    def test_keys_with_token(self, index):
        assert index.keys_with_token("Einstein") == {"e1", "e3"}
        assert index.keys_with_token("nothere") == set()

    def test_keys_with_token_normalises_like_documents(self, index):
        # regression: the raw argument used to be lower-cased only, so any
        # input tokenize() would have rewritten (punctuation, accents around
        # word boundaries) silently missed its postings
        assert index.keys_with_token("Einstein!") == {"e1", "e3"}
        assert index.keys_with_token("  EINSTEIN  ") == {"e1", "e3"}
        assert index.keys_with_token("...") == set()

    def test_keys_with_multi_token_input_intersects(self, index):
        assert index.keys_with_token("Albert Einstein") == {"e1"}
        assert index.keys_with_token("Albert nothere") == set()

    def test_idf_precomputed_at_freeze_matches_formula(self, index):
        import math

        n_docs = index.document_count
        for token in ("einstein", "albert", "newton"):
            expected = 1.0 + math.log(
                (n_docs + 1) / (index.document_frequency(token) + 1)
            )
            assert index.idf(token) == pytest.approx(expected)
        # unseen tokens still get the df=0 fallback after freezing
        assert index.idf("zzz") == pytest.approx(1.0 + math.log(n_docs + 1))


class TestLifecycle:
    def test_add_after_freeze_rejected(self, index):
        with pytest.raises(RuntimeError):
            index.add("e9", "late entry")

    def test_search_auto_freezes(self):
        idx = InvertedIndex()
        idx.add("k", "hello world")
        assert idx.search("hello")[0].key == "k"

    def test_empty_document_ignored(self):
        idx = InvertedIndex()
        idx.add("k", "...")
        idx.freeze()
        assert idx.document_count == 0

    def test_add_many(self):
        idx = InvertedIndex()
        idx.add_many([("a", "one"), ("b", "two")])
        assert idx.document_count == 2


class TestStateRoundTrip:
    """to_state/from_state must reproduce the frozen index exactly."""

    def test_search_results_identical(self, index):
        restored = InvertedIndex.from_state(index.to_state())
        for query in ("albert einstein", "einstein", "newton", "bagels", "zzz"):
            assert restored.search(query) == index.search(query)

    def test_statistics_identical(self, index):
        restored = InvertedIndex.from_state(index.to_state())
        assert restored.document_count == index.document_count
        for token in ("einstein", "albert", "zzz"):
            assert restored.document_frequency(token) == index.document_frequency(
                token
            )
            assert restored.idf(token) == index.idf(token)
        assert restored.keys_with_token("einstein") == index.keys_with_token(
            "einstein"
        )
        assert restored.keys_with_token("albert einstein") == index.keys_with_token(
            "albert einstein"
        )

    def test_restored_index_is_frozen(self, index):
        restored = InvertedIndex.from_state(index.to_state())
        with pytest.raises(RuntimeError):
            restored.add("e9", "late entry")

    def test_double_round_trip_is_stable(self, index):
        once = InvertedIndex.from_state(index.to_state())
        state_a = index.to_state()
        state_b = once.to_state()
        assert state_a["tokens"] == state_b["tokens"]
        assert state_a["doc_keys"] == state_b["doc_keys"]
        for field in ("offsets", "doc_ids", "weights", "idf", "doc_norm"):
            assert (state_a[field] == state_b[field]).all()

    def test_tuple_keys_survive(self):
        idx = InvertedIndex()
        idx.add(("t1", 0), "director name")
        idx.add(("t1", 1), "film title")
        restored = InvertedIndex.from_state(idx.to_state())
        assert restored.search("director")[0].key == ("t1", 0)
        assert restored.keys_with_token("title") == {("t1", 1)}

    def test_empty_index_round_trips(self):
        restored = InvertedIndex.from_state(InvertedIndex().to_state())
        assert restored.document_count == 0
        assert restored.search("anything") == []
