"""Tests (incl. hypothesis properties) for the similarity measures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.similarity import (
    cosine_tfidf,
    dice,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein_distance,
    levenshtein_similarity,
    soft_tfidf,
)
from repro.text.tfidf import TfidfWeights

texts = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd", "Zs")),
    max_size=30,
)

ALL_MEASURES = [jaccard, dice, cosine_tfidf, levenshtein_similarity, soft_tfidf]


class TestExamples:
    def test_jaccard(self):
        assert jaccard("new york", "new york city") == pytest.approx(2 / 3)
        assert jaccard("a b", "c d") == 0.0

    def test_dice(self):
        assert dice("new york", "new york city") == pytest.approx(4 / 5)

    def test_cosine_plain(self):
        assert cosine_tfidf("albert einstein", "albert einstein") == pytest.approx(1.0)
        assert cosine_tfidf("albert", "einstein") == 0.0

    def test_cosine_idf_downweights_common_tokens(self):
        weights = TfidfWeights.from_documents(
            ["the clock", "the staircase", "the keys", "rare gem"]
        )
        # 'the' is common -> matching only on 'the' scores low
        common_only = cosine_tfidf("the thing", "the other", weights)
        rare_match = cosine_tfidf("rare gem", "rare gem", weights)
        assert rare_match == pytest.approx(1.0)
        assert common_only < 0.5

    def test_levenshtein_distance(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "abc") == 0

    def test_levenshtein_similarity_case_insensitive(self):
        assert levenshtein_similarity("Einstein", "einstein") == 1.0

    def test_jaro_winkler_prefix_boost(self):
        plain = jaro("einstein", "einstien")
        boosted = jaro_winkler("einstein", "einstien")
        assert boosted >= plain

    def test_jaro_disjoint(self):
        assert jaro("abc", "xyz") == 0.0

    def test_soft_tfidf_catches_typos(self):
        hard = cosine_tfidf("albert einstien", "albert einstein")
        soft = soft_tfidf("albert einstien", "albert einstein")
        assert soft > hard
        assert soft > 0.9

    def test_soft_tfidf_threshold(self):
        # completely different tokens fall below the JW threshold
        assert soft_tfidf("zebra", "quux") == 0.0


class TestProperties:
    @given(texts, texts)
    @settings(max_examples=60)
    def test_range_and_symmetry(self, a, b):
        for measure in (jaccard, dice, cosine_tfidf, levenshtein_similarity):
            value_ab = measure(a, b)
            value_ba = measure(b, a)
            assert 0.0 <= value_ab <= 1.0 + 1e-9
            assert value_ab == pytest.approx(value_ba)

    @given(texts)
    @settings(max_examples=60)
    def test_identity(self, a):
        for measure in ALL_MEASURES:
            assert measure(a, a) == pytest.approx(1.0)

    @given(texts, texts)
    @settings(max_examples=60)
    def test_soft_tfidf_dominates_cosine(self, a, b):
        # fuzzy matching can only add mass relative to exact cosine
        assert soft_tfidf(a, b) >= cosine_tfidf(a, b) - 1e-9

    @given(texts, texts)
    @settings(max_examples=60)
    def test_levenshtein_triangle(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)
        assert levenshtein_distance(a, b) <= max(len(a), len(b))

    @given(texts, texts)
    @settings(max_examples=60)
    def test_jaro_winkler_range(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0 + 1e-9


class TestTfidfWeights:
    def test_idf_decreases_with_frequency(self):
        weights = TfidfWeights.from_documents(["a b", "a c", "a d"])
        assert weights.idf("a") < weights.idf("b")
        assert weights.document_frequency("a") == 3
        assert weights.document_count == 3

    def test_unseen_token_gets_max_idf(self):
        weights = TfidfWeights.from_documents(["a b", "a c"])
        assert weights.idf("zzz") >= weights.idf("b")

    def test_vector_and_norm(self):
        weights = TfidfWeights.from_documents(["a b", "c"])
        vector = weights.vector("a a b")
        assert vector["a"] == pytest.approx(2 * weights.idf("a"))
        assert weights.norm(vector) > 0

    def test_duplicate_tokens_counted_once_per_doc(self):
        weights = TfidfWeights.from_documents(["a a a"])
        assert weights.document_frequency("a") == 1
