"""Tests for cell/header normalisation and numeric detection."""

from repro.text.normalize import is_numeric_text, is_year_text, normalize_text


class TestNormalize:
    def test_whitespace_collapsed(self):
        assert normalize_text("  New   York \n City ") == "New York City"

    def test_html_entities_unescaped(self):
        assert normalize_text("Tom &amp; Jerry") == "Tom & Jerry"

    def test_bracketed_removed(self):
        assert normalize_text("Paris (France)") == "Paris"
        assert normalize_text("Einstein [1]") == "Einstein"

    def test_bracketed_kept_when_disabled(self):
        assert normalize_text("Paris (France)", strip_bracketed=False) == (
            "Paris (France)"
        )

    def test_footnote_markers_stripped(self):
        assert normalize_text("Einstein*") == "Einstein"
        assert normalize_text("Einstein†") == "Einstein"

    def test_empty(self):
        assert normalize_text("") == ""
        assert normalize_text("   ") == ""


class TestNumericDetection:
    def test_integers_and_floats(self):
        assert is_numeric_text("42")
        assert is_numeric_text("3.14")
        assert is_numeric_text("-7")
        assert is_numeric_text("1,234,567")

    def test_units_and_percent(self):
        assert is_numeric_text("85%")
        assert is_numeric_text("12 km")

    def test_non_numeric(self):
        assert not is_numeric_text("Einstein")
        assert not is_numeric_text("12 Monkeys")
        assert not is_numeric_text("")

    def test_year(self):
        assert is_year_text("1951")
        assert is_year_text("2009")
        assert not is_year_text("951")
        assert not is_year_text("3000")
        assert not is_year_text("1951 films")
