"""Tests for the factor-graph container."""

import numpy as np
import pytest

from repro.graph.factor_graph import Factor, FactorGraph, Variable


class TestVariable:
    def test_basic(self):
        variable = Variable("v", ("a", "b"), np.array([0.0, 1.0]))
        assert variable.size == 2
        assert variable.index_of("b") == 1

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            Variable("v", (), np.array([]))

    def test_unary_shape_checked(self):
        with pytest.raises(ValueError):
            Variable("v", ("a", "b"), np.array([0.0]))


class TestFactor:
    def test_rank_checked(self):
        with pytest.raises(ValueError):
            Factor("f", ("a", "b"), np.zeros(3))

    def test_unary_factor_rejected(self):
        with pytest.raises(ValueError):
            Factor("f", ("a",), np.zeros(3))

    def test_axis_of(self):
        factor = Factor("f", ("a", "b"), np.zeros((2, 3)))
        assert factor.axis_of("b") == 1


class TestGraph:
    def test_build_and_score(self):
        graph = FactorGraph()
        graph.add_variable("x", ("p", "q"), [1.0, 0.0])
        graph.add_variable("y", ("p", "q"), [0.0, 0.0])
        graph.add_factor("f", ("x", "y"), np.array([[2.0, 0.0], [0.0, 2.0]]))
        assert graph.score({"x": "p", "y": "p"}) == pytest.approx(3.0)
        assert graph.score({"x": "p", "y": "q"}) == pytest.approx(1.0)
        assert graph.factors_of("x") == ["f"]

    def test_duplicate_names_rejected(self):
        graph = FactorGraph()
        graph.add_variable("x", ("a",), [0.0])
        with pytest.raises(ValueError):
            graph.add_variable("x", ("a",), [0.0])

    def test_factor_unknown_variable_rejected(self):
        graph = FactorGraph()
        graph.add_variable("x", ("a", "b"), [0.0, 0.0])
        with pytest.raises(KeyError):
            graph.add_factor("f", ("x", "zzz"), np.zeros((2, 2)))

    def test_factor_shape_checked(self):
        graph = FactorGraph()
        graph.add_variable("x", ("a", "b"), [0.0, 0.0])
        graph.add_variable("y", ("a", "b", "c"), [0.0, 0.0, 0.0])
        with pytest.raises(ValueError):
            graph.add_factor("f", ("x", "y"), np.zeros((2, 2)))

    def test_three_way_factor(self):
        graph = FactorGraph()
        graph.add_variable("x", ("a", "b"), [0.0, 0.0])
        graph.add_variable("y", ("a", "b"), [0.0, 0.0])
        graph.add_variable("z", ("a", "b"), [0.0, 0.0])
        table = np.zeros((2, 2, 2))
        table[1, 1, 1] = 5.0
        graph.add_factor("f", ("x", "y", "z"), table)
        assert graph.score({"x": "b", "y": "b", "z": "b"}) == pytest.approx(5.0)
