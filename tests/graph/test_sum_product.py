"""Tests for sum-product BP: exact marginals on trees."""

import itertools
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.bp import SumProductBP
from repro.graph.factor_graph import FactorGraph

from tests.graph.test_bp import random_tree_graph


def brute_force_marginals(graph: FactorGraph) -> dict[str, np.ndarray]:
    names = list(graph.variables)
    domains = [graph.variables[name].domain for name in names]
    marginals = {
        name: np.zeros(graph.variables[name].size) for name in names
    }
    total = 0.0
    for combo in itertools.product(*domains):
        assignment = dict(zip(names, combo))
        weight = np.exp(graph.score(assignment))
        total += weight
        for name, value in assignment.items():
            marginals[name][graph.variables[name].index_of(value)] += weight
    for name in names:
        marginals[name] /= total
    return marginals


class TestTreeExactness:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_marginals_match_brute_force_on_trees(self, seed):
        rng = random.Random(seed)
        graph = random_tree_graph(rng, n_variables=rng.randint(2, 5))
        engine = SumProductBP(graph)
        engine.run_flooding(max_iterations=40)
        exact = brute_force_marginals(graph)
        for name in graph.variables:
            assert np.allclose(engine.marginals(name), exact[name], atol=1e-7)

    def test_marginals_sum_to_one(self):
        rng = random.Random(3)
        graph = random_tree_graph(rng, n_variables=4)
        engine = SumProductBP(graph)
        engine.run_flooding(max_iterations=40)
        for name in graph.variables:
            assert engine.marginals(name).sum() == pytest.approx(1.0)

    def test_independent_variable_marginal_is_softmax_of_unary(self):
        graph = FactorGraph()
        graph.add_variable("a", (0, 1), [1.0, 0.0])
        graph.add_variable("b", (0, 1), [0.0, 0.0])
        graph.add_factor("f", ("a", "b"), np.zeros((2, 2)))
        engine = SumProductBP(graph)
        engine.run_flooding()
        expected = np.exp([1.0, 0.0])
        expected /= expected.sum()
        assert np.allclose(engine.marginals("a"), expected)


class TestVersusMaxProduct:
    def test_map_agrees_on_dominant_mode(self):
        """When one mode dominates, sum- and max-product agree on argmax."""
        graph = FactorGraph()
        graph.add_variable("a", (0, 1), [3.0, 0.0])
        graph.add_variable("b", (0, 1), [0.0, 0.0])
        graph.add_factor("f", ("a", "b"), np.array([[2.0, 0.0], [0.0, 2.0]]))
        sum_engine = SumProductBP(graph)
        sum_engine.run_flooding()
        assert int(np.argmax(sum_engine.marginals("a"))) == 0
        assert int(np.argmax(sum_engine.marginals("b"))) == 0

    def test_marginals_soften_hard_beliefs(self):
        """Sum-product keeps probability on the runner-up; max-product's
        belief gap understates nothing — marginals are strictly inside
        (0, 1) for a near-tied variable."""
        graph = FactorGraph()
        graph.add_variable("a", (0, 1), [0.05, 0.0])
        graph.add_variable("b", (0, 1), [0.0, 0.0])
        graph.add_factor("f", ("a", "b"), np.zeros((2, 2)))
        engine = SumProductBP(graph)
        engine.run_flooding()
        marginal = engine.marginals("a")
        assert 0.4 < marginal[1] < 0.5
