"""Tests for max-product BP: exactness on trees, behaviour on loopy graphs."""

import itertools
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.bp import MaxProductBP
from repro.graph.factor_graph import FactorGraph


def brute_force_map(graph: FactorGraph):
    """Exhaustive optimum (for graphs with a handful of variables)."""
    names = list(graph.variables)
    domains = [graph.variables[name].domain for name in names]
    best_assignment = None
    best_score = float("-inf")
    for combo in itertools.product(*domains):
        assignment = dict(zip(names, combo))
        score = graph.score(assignment)
        if score > best_score:
            best_score = score
            best_assignment = assignment
    return best_assignment, best_score


def random_tree_graph(rng: random.Random, n_variables: int) -> FactorGraph:
    """A random tree-structured pairwise graph with random potentials."""
    graph = FactorGraph()
    sizes = [rng.randint(2, 4) for _ in range(n_variables)]
    for index, size in enumerate(sizes):
        unary = np.array([rng.uniform(-2, 2) for _ in range(size)])
        graph.add_variable(f"v{index}", tuple(range(size)), unary)
    for index in range(1, n_variables):
        parent = rng.randrange(index)
        table = np.array(
            [
                [rng.uniform(-2, 2) for _ in range(sizes[index])]
                for _ in range(sizes[parent])
            ]
        )
        graph.add_factor(f"f{index}", (f"v{parent}", f"v{index}"), table)
    return graph


class TestTreeExactness:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force_on_random_trees(self, seed):
        rng = random.Random(seed)
        graph = random_tree_graph(rng, n_variables=rng.randint(2, 5))
        result = MaxProductBP(graph).run_flooding(max_iterations=30)
        _best, best_score = brute_force_map(graph)
        assert result.log_score == pytest.approx(best_score, abs=1e-9)

    def test_chain(self):
        graph = FactorGraph()
        graph.add_variable("a", ("x", "y"), [0.0, 0.1])
        graph.add_variable("b", ("x", "y"), [0.0, 0.0])
        graph.add_variable("c", ("x", "y"), [0.5, 0.0])
        attract = np.array([[1.0, -1.0], [-1.0, 1.0]])
        graph.add_factor("ab", ("a", "b"), attract)
        graph.add_factor("bc", ("b", "c"), attract)
        result = MaxProductBP(graph).run_flooding()
        assert result.converged
        # chain prefers all-equal; unaries tip it to all-x (0.5 beats 0.1)
        assert result.assignment == {"a": "x", "b": "x", "c": "x"}

    def test_single_factor_three_way(self):
        graph = FactorGraph()
        for name in ("a", "b", "c"):
            graph.add_variable(name, (0, 1), [0.0, 0.0])
        table = np.zeros((2, 2, 2))
        table[1, 0, 1] = 3.0
        graph.add_factor("f", ("a", "b", "c"), table)
        result = MaxProductBP(graph).run_flooding()
        assert result.assignment == {"a": 1, "b": 0, "c": 1}
        assert result.log_score == pytest.approx(3.0)


class TestLoopyBehaviour:
    def test_attractive_loop_converges(self):
        graph = FactorGraph()
        for name in ("a", "b", "c"):
            graph.add_variable(name, (0, 1), [0.0, 0.0])
        attract = np.array([[0.5, -0.5], [-0.5, 0.5]])
        graph.add_factor("ab", ("a", "b"), attract)
        graph.add_factor("bc", ("b", "c"), attract)
        graph.add_factor("ca", ("c", "a"), attract)
        # tip one variable
        graph.variables["a"].unary = np.array([0.3, 0.0])
        result = MaxProductBP(graph).run_flooding(max_iterations=50)
        assert result.assignment == {"a": 0, "b": 0, "c": 0}

    def test_damping_validated(self):
        graph = FactorGraph()
        graph.add_variable("a", (0, 1), [0.0, 0.0])
        graph.add_variable("b", (0, 1), [0.0, 0.0])
        graph.add_factor("f", ("a", "b"), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            MaxProductBP(graph, damping=1.0)

    def test_convergence_delta_is_undamped(self):
        """The reported delta measures the raw message change, not the damped
        step actually stored — otherwise damping 0.9 shrinks every reported
        delta 10x and a still-moving schedule can fake convergence."""
        graph = FactorGraph()
        graph.add_variable("a", (0, 1), [3.0, 0.0])
        graph.add_variable("b", (0, 1), [0.0, 0.0])
        graph.add_factor("f", ("a", "b"), np.zeros((2, 2)))
        engine = MaxProductBP(graph, damping=0.9)
        # raw message = unary normalised = [0, -3]; old message = [0, 0]
        delta = engine.update_var_to_factor("a", "f")
        assert delta == pytest.approx(3.0)
        # ... while the stored message took only the damped 10% step
        stored = engine._var_to_factor[("a", "f")]
        assert stored == pytest.approx([0.0, -0.3])

    def test_damping_still_finds_map(self):
        graph = FactorGraph()
        graph.add_variable("a", (0, 1), [1.0, 0.0])
        graph.add_variable("b", (0, 1), [0.0, 0.0])
        graph.add_factor("f", ("a", "b"), np.array([[1.0, 0.0], [0.0, 1.0]]))
        result = MaxProductBP(graph, damping=0.3).run_flooding(max_iterations=60)
        assert result.assignment == {"a": 0, "b": 0}


class TestDiagnostics:
    def test_result_fields(self):
        graph = FactorGraph()
        graph.add_variable("a", (0, 1), [1.0, 0.0])
        graph.add_variable("b", (0, 1), [0.0, 0.0])
        graph.add_factor("f", ("a", "b"), np.zeros((2, 2)))
        result = MaxProductBP(graph).run_flooding()
        assert result.converged
        assert result.iterations >= 1
        assert set(result.max_beliefs) == {"a", "b"}
        assert result.log_score == pytest.approx(1.0)

    def test_beliefs_normalised(self):
        graph = FactorGraph()
        graph.add_variable("a", (0, 1), [5.0, 2.0])
        graph.add_variable("b", (0, 1), [0.0, 0.0])
        graph.add_factor("f", ("a", "b"), np.zeros((2, 2)))
        engine = MaxProductBP(graph)
        engine.run_flooding()
        assert engine.belief("a").max() == pytest.approx(0.0)

    def test_tie_breaks_to_first_domain_position(self):
        graph = FactorGraph()
        graph.add_variable("a", ("na", "x"), [0.0, 0.0])
        graph.add_variable("b", ("na", "x"), [0.0, 0.0])
        graph.add_factor("f", ("a", "b"), np.zeros((2, 2)))
        result = MaxProductBP(graph).run_flooding()
        assert result.assignment == {"a": "na", "b": "na"}
