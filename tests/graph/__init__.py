"""Tests for the graph subsystem."""
