"""Equivalence tests: the batched engine against the scalar reference.

The batched engine must be a drop-in replacement for the scalar one: exact
on trees, identical message trajectories on loopy graphs (up to float
summation order, hence the 1e-9 tolerances), identical MAP assignments
wherever beliefs are not float-level ties, and the same damping/delta
semantics.
"""

import itertools
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.bp import MaxProductBP, SumProductBP
from repro.graph.compiled import (
    BatchedMaxProductBP,
    BatchedSumProductBP,
    CompiledFactorGraph,
)
from repro.graph.factor_graph import FactorGraph

#: belief gaps below this are float-level ties: argmax may legitimately
#: differ between engines whose summation orders differ
TIE_MARGIN = 1e-6


def brute_force_score(graph: FactorGraph) -> float:
    names = list(graph.variables)
    domains = [graph.variables[name].domain for name in names]
    return max(
        graph.score(dict(zip(names, combo)))
        for combo in itertools.product(*domains)
    )


def random_tree_graph(rng: random.Random, n_variables: int) -> FactorGraph:
    graph = FactorGraph()
    sizes = [rng.randint(2, 5) for _ in range(n_variables)]
    for index, size in enumerate(sizes):
        unary = np.array([rng.uniform(-2, 2) for _ in range(size)])
        graph.add_variable(f"v{index}", tuple(range(size)), unary)
    for index in range(1, n_variables):
        parent = rng.randrange(index)
        table = np.array(
            [
                [rng.uniform(-2, 2) for _ in range(sizes[index])]
                for _ in range(sizes[parent])
            ]
        )
        graph.add_factor(f"f{index}", (f"v{parent}", f"v{index}"), table)
    return graph


def random_loopy_graph(rng: random.Random) -> FactorGraph:
    """A ragged-domain tree plus extra pairwise loops and a triple factor."""
    n_variables = rng.randint(4, 8)
    graph = random_tree_graph(rng, n_variables)
    sizes = [graph.variables[f"v{i}"].size for i in range(n_variables)]
    for loop in range(rng.randint(1, 3)):
        a, b = rng.sample(range(n_variables), 2)
        table = np.array(
            [
                [rng.uniform(-2, 2) for _ in range(sizes[b])]
                for _ in range(sizes[a])
            ]
        )
        graph.add_factor(f"loop{loop}", (f"v{a}", f"v{b}"), table)
    a, b, c = rng.sample(range(n_variables), 3)
    table = np.array(
        [
            [
                [rng.uniform(-1, 1) for _ in range(sizes[c])]
                for _ in range(sizes[b])
            ]
            for _ in range(sizes[a])
        ]
    )
    graph.add_factor("triple", (f"v{a}", f"v{b}", f"v{c}"), table)
    return graph


def assert_messages_match(scalar: MaxProductBP, batched: BatchedMaxProductBP):
    for factor in scalar.graph.factors.values():
        for variable_name in factor.variables:
            np.testing.assert_allclose(
                scalar._var_to_factor[(variable_name, factor.name)],
                batched.message_var_to_factor(variable_name, factor.name),
                atol=1e-9,
                err_msg=f"v2f {variable_name} -> {factor.name}",
            )
            np.testing.assert_allclose(
                scalar._factor_to_var[(factor.name, variable_name)],
                batched.message_factor_to_var(factor.name, variable_name),
                atol=1e-9,
                err_msg=f"f2v {factor.name} -> {variable_name}",
            )


def assert_decodings_match(scalar: MaxProductBP, batched: BatchedMaxProductBP):
    """Beliefs within 1e-9; identical argmax outside float-level ties."""
    scalar_map = scalar.map_assignment()
    batched_map = batched.map_assignment()
    for name in scalar.graph.variables:
        belief_a = scalar.belief(name)
        belief_b = batched.belief(name)
        np.testing.assert_allclose(belief_a, belief_b, atol=1e-9)
        if belief_a.shape[0] < 2:
            continue
        top_two = np.sort(belief_a)[-2:]
        if top_two[1] - top_two[0] > TIE_MARGIN:
            assert scalar_map[name] == batched_map[name], name


class TestCompilation:
    def test_buckets_merge_same_shaped_factors(self):
        graph = FactorGraph()
        # one "column": head variable + 5 rows of ragged entity domains
        graph.add_variable("t", tuple(range(4)), np.zeros(4))
        for row, size in enumerate((2, 3, 2, 4, 3)):
            graph.add_variable(f"e{row}", tuple(range(size)), np.zeros(size))
            graph.add_factor(
                f"phi3:{row}",
                ("t", f"e{row}"),
                np.arange(4 * size, dtype=float).reshape(4, size),
                kind="phi3",
            )
        compiled = CompiledFactorGraph(graph)
        # all 5 factors share (kind, arity, head size): one padded block
        assert len(compiled.blocks) == 1
        block = compiled.blocks[0]
        assert block.shape == (4, 4)  # tails padded to the widest row
        assert block.n_factors == 5
        # padded slots hold -inf, real slots the original tables
        table0 = block.tables[0]
        np.testing.assert_array_equal(
            table0[:, :2], np.arange(8, dtype=float).reshape(4, 2)
        )
        assert np.all(np.isneginf(table0[:, 2:]))
        # the edge index recovers every original edge
        for row in range(5):
            block_id, position, slot = compiled.edge_slot(f"e{row}", f"phi3:{row}")
            assert (block_id, position) == (0, 1)
            assert block.names[slot] == f"phi3:{row}"

    def test_head_axis_separates_buckets(self):
        graph = FactorGraph()
        graph.add_variable("a", (0, 1), np.zeros(2))
        graph.add_variable("b", (0, 1, 2), np.zeros(3))
        graph.add_variable("c", (0, 1), np.zeros(2))
        graph.add_factor("f1", ("a", "c"), np.zeros((2, 2)))
        graph.add_factor("f2", ("b", "c"), np.zeros((3, 2)))
        compiled = CompiledFactorGraph(graph)
        assert len(compiled.blocks) == 2


class TestTreeExactness:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force_on_random_trees(self, seed):
        rng = random.Random(seed)
        graph = random_tree_graph(rng, n_variables=rng.randint(2, 5))
        engine = BatchedMaxProductBP(CompiledFactorGraph(graph))
        result = engine.run_flooding(max_iterations=30)
        assert result.log_score == pytest.approx(
            brute_force_score(graph), abs=1e-9
        )


class TestFloodingEquivalence:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_loopy_trajectories_match(self, seed):
        """Same messages after every flooding iteration count, loops included."""
        graph = random_loopy_graph(random.Random(seed))
        for iterations in (1, 2, 5, 12):
            scalar = MaxProductBP(graph)
            scalar.run_flooding(max_iterations=iterations, tolerance=0.0)
            batched = BatchedMaxProductBP(CompiledFactorGraph(graph))
            batched.run_flooding(max_iterations=iterations, tolerance=0.0)
            assert_messages_match(scalar, batched)
        assert_decodings_match(scalar, batched)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_damped_runs_match(self, seed):
        graph = random_loopy_graph(random.Random(seed))
        scalar = MaxProductBP(graph, damping=0.4)
        result_a = scalar.run_flooding(max_iterations=25)
        batched = BatchedMaxProductBP(CompiledFactorGraph(graph), damping=0.4)
        result_b = batched.run_flooding(max_iterations=25)
        assert (result_a.iterations, result_a.converged) == (
            result_b.iterations,
            result_b.converged,
        )
        assert_messages_match(scalar, batched)
        assert_decodings_match(scalar, batched)

    def test_convergence_iterations_agree(self):
        graph = random_loopy_graph(random.Random(99))
        result_a = MaxProductBP(graph).run_flooding(max_iterations=40)
        result_b = BatchedMaxProductBP(CompiledFactorGraph(graph)).run_flooding(
            max_iterations=40
        )
        assert result_a.converged == result_b.converged
        assert result_a.iterations == result_b.iterations


class TestPaperScheduleEquivalence:
    """Scalar and batched Figure-11 schedules on real annotation graphs."""

    @pytest.fixture(scope="class")
    def problems(self, annotator, wiki_tables):
        return [
            annotator.build_problem(labeled.table) for labeled in wiki_tables[:4]
        ]

    def test_message_trajectories_match(self, problems, annotator):
        from repro.core.inference import run_scalar_paper_schedule
        from repro.core.problem import build_factor_graph

        for problem in problems:
            graph = build_factor_graph(problem, annotator.model)
            for iterations in (1, 2, 4):
                scalar = MaxProductBP(graph)
                run_scalar_paper_schedule(
                    scalar, max_iterations=iterations, tolerance=0.0
                )
                batched = BatchedMaxProductBP(CompiledFactorGraph(graph))
                batched.run_paper_schedule(
                    max_iterations=iterations, tolerance=0.0
                )
                assert_messages_match(scalar, batched)
                assert_decodings_match(scalar, batched)

    def test_annotations_identical(self, problems, annotator):
        from repro.core.inference import InferenceConfig, annotate_collective

        for problem in problems:
            scalar = annotate_collective(
                problem, annotator.model, InferenceConfig(engine="scalar")
            )
            batched = annotate_collective(
                problem, annotator.model, InferenceConfig(engine="batched")
            )
            assert scalar.diagnostics["engine"] == "scalar"
            assert batched.diagnostics["engine"] == "batched"
            assert (
                scalar.diagnostics["iterations"] == batched.diagnostics["iterations"]
            )
            assert set(scalar.cells) == set(batched.cells)
            for key, cell in scalar.cells.items():
                assert batched.cells[key].entity_id == cell.entity_id
                assert batched.cells[key].score == pytest.approx(
                    cell.score, abs=1e-9
                )
            for key, column in scalar.columns.items():
                assert batched.columns[key].type_id == column.type_id
            for key, relation in scalar.relations.items():
                assert batched.relations[key].label == relation.label
            assert scalar.diagnostics["log_score"] == pytest.approx(
                batched.diagnostics["log_score"], abs=1e-9
            )


class TestDampingSemantics:
    def test_delta_is_undamped(self):
        """Mirror of the scalar test: damping shrinks the stored step, not
        the reported convergence delta."""
        graph = FactorGraph()
        graph.add_variable("a", (0, 1), [3.0, 0.0])
        graph.add_variable("b", (0, 1), [0.0, 0.0])
        graph.add_factor("f", ("a", "b"), np.zeros((2, 2)))
        engine = BatchedMaxProductBP(CompiledFactorGraph(graph), damping=0.9)
        block_id, position, _slot = engine.compiled.edge_slot("a", "f")
        delta = engine.update_block_vars_to_factor(block_id, (position,))
        assert delta == pytest.approx(3.0)
        assert engine.message_var_to_factor("a", "f") == pytest.approx([0.0, -0.3])


class TestSumProduct:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_marginals_match_scalar(self, seed):
        graph = random_loopy_graph(random.Random(seed))
        scalar = SumProductBP(graph)
        scalar.run_flooding(max_iterations=10, tolerance=0.0)
        batched = BatchedSumProductBP(CompiledFactorGraph(graph))
        batched.run_flooding(max_iterations=10, tolerance=0.0)
        for name in graph.variables:
            np.testing.assert_allclose(
                scalar.marginals(name), batched.marginals(name), atol=1e-9
            )


class TestCompiledGraphCache:
    def test_reuse_returns_same_object(self, annotator, wiki_tables):
        from repro.core.problem import build_compiled_graph
        from repro.pipeline.cache import LRUCache

        problem = annotator.build_problem(wiki_tables[0].table)
        cache = LRUCache(max_entries=8)
        first = build_compiled_graph(problem, annotator.model, cache=cache)
        second = build_compiled_graph(problem, annotator.model, cache=cache)
        assert second is first
        assert cache.stats().hits == 1

    def test_model_change_invalidates(self, annotator, wiki_tables):
        from repro.core.model import default_model
        from repro.core.problem import build_compiled_graph
        from repro.pipeline.cache import LRUCache

        problem = annotator.build_problem(wiki_tables[0].table)
        cache = LRUCache(max_entries=8)
        first = build_compiled_graph(problem, annotator.model, cache=cache)
        other_model = default_model()
        other_model.w1 = other_model.w1 + 0.5
        second = build_compiled_graph(problem, other_model, cache=cache)
        assert second is not first
        assert cache.stats().hits == 0
