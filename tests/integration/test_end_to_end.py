"""End-to-end integration: world → tables → train → annotate → search.

These tests exercise the exact pipeline of the paper's system diagram in one
process, at miniature scale.
"""

import pytest

from repro import (
    AnnotatedSearcher,
    AnnotatedTableIndex,
    BaselineSearcher,
    RelationQuery,
    TableAnnotator,
    TrainingConfig,
)
from repro.core.learning import StructuredTrainer
from repro.core.model import default_model
from repro.eval.metrics import average_precision
from repro.eval.workload import relevance_keys
from repro.tables.generator import (
    NoiseProfile,
    TableGeneratorConfig,
    WebTableGenerator,
)


@pytest.fixture(scope="module")
def pipeline(world):
    """Train on clean tables, annotate + index a search corpus."""
    train_tables = WebTableGenerator(
        world.full,
        TableGeneratorConfig(seed=41, n_tables=8, noise=NoiseProfile.WIKI, id_prefix="train"),
    ).generate()
    annotator = TableAnnotator(world.annotator_view, model=default_model())
    trainer = StructuredTrainer(annotator, TrainingConfig(epochs=2, seed=0))
    model = trainer.train(train_tables)

    corpus = WebTableGenerator(
        world.full,
        TableGeneratorConfig(seed=42, n_tables=30, noise=NoiseProfile.WIKI, id_prefix="corpus"),
    ).generate()
    index = AnnotatedTableIndex(catalog=world.annotator_view)
    for labeled in corpus:
        index.add_table(labeled.table, annotator.annotate(labeled.table))
    index.freeze()
    return world, model, annotator, index, corpus


class TestEndToEnd:
    def test_trained_annotation_quality(self, pipeline):
        world, _model, annotator, _index, corpus = pipeline
        correct = total = 0
        for labeled in corpus[:8]:
            annotation = annotator.annotate(labeled.table)
            for (row, column), truth in labeled.truth.cell_entities.items():
                total += 1
                correct += annotation.entity_of(row, column) == truth
        assert correct / total > 0.85

    def test_index_contains_semantics(self, pipeline):
        _world, _model, _annotator, index, _corpus = pipeline
        stats = index.stats()
        assert stats["annotated_tables"] == 30
        assert stats["typed_columns"] > 0
        assert stats["relation_edges"] > 0

    def test_search_beats_baseline_on_answerable_query(self, pipeline):
        world, _model, _annotator, index, _corpus = pipeline
        # find a query whose relation is present in the index
        chosen_query = None
        for relation_id in world.query_relations:
            edges = index.relation_edges(relation_id)
            if not edges:
                continue
            table_id = edges[0].table_id
            annotation = index.annotations[table_id]
            object_column = edges[0].object_column
            for (_row, column), cell in annotation.cells.items():
                if column == object_column and cell.entity_id is not None:
                    chosen_query = RelationQuery.from_catalog(
                        world.full, relation_id, cell.entity_id
                    )
                    break
            if chosen_query:
                break
        assert chosen_query is not None
        relevant = relevance_keys(
            world,
            frozenset(
                world.full.relations.subjects_of(
                    chosen_query.relation_id, chosen_query.given_entity
                )
            ),
        )
        annotated = AnnotatedSearcher(index, world.annotator_view, use_relations=True)
        baseline = BaselineSearcher(index, world.annotator_view)
        ap_annotated = average_precision(
            annotated.search(chosen_query).ranked_keys(), relevant
        )
        ap_baseline = average_precision(
            baseline.search(chosen_query).ranked_keys(), relevant
        )
        assert ap_annotated > 0.0
        assert ap_annotated >= ap_baseline

    def test_html_to_annotation_path(self, pipeline):
        """HTML extraction feeds straight into the annotator."""
        world, _model, annotator, _index, _corpus = pipeline
        director_tuples = list(world.full.relations.tuples("rel:directed"))[:3]
        rows = "".join(
            "<tr><td>{}</td><td>{}</td></tr>".format(
                world.full.entities.get(subject).primary_lemma,
                world.full.entities.get(object_).primary_lemma,
            )
            for subject, object_ in director_tuples
        )
        html = (
            "<p>List of films and the people who directed them.</p>"
            "<table><tr><th>Film</th><th>Director</th></tr>" + rows + "</table>"
        )
        from repro.tables.html_extract import extract_tables_from_html

        tables = extract_tables_from_html(html)
        assert len(tables) == 1
        annotation = annotator.annotate(tables[0])
        assert annotation.type_of(0) is not None
        predicted_entities = [
            annotation.entity_of(row, 0) for row in range(tables[0].n_rows)
        ]
        true_subjects = [subject for subject, _o in director_tuples]
        matches = sum(
            1 for predicted, truth in zip(predicted_entities, true_subjects)
            if predicted == truth
        )
        assert matches >= 2
