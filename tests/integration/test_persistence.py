"""Integration: everything that touches disk round-trips through a workflow."""

from repro.catalog.io import load_catalog_json, save_catalog_json
from repro.core.annotator import TableAnnotator
from repro.core.model import AnnotationModel, default_model
from repro.tables.corpus import TableCorpus, load_corpus_jsonl, save_corpus_jsonl


class TestPersistenceWorkflow:
    def test_catalog_model_corpus_round_trip(self, world, wiki_tables, tmp_path):
        """Save world + model + corpus; reload; annotations must agree."""
        catalog_path = tmp_path / "catalog.json"
        model_path = tmp_path / "model.json"
        corpus_path = tmp_path / "corpus.jsonl"

        save_catalog_json(world.annotator_view, catalog_path)
        model = default_model()
        model.save(model_path)
        save_corpus_jsonl(TableCorpus(wiki_tables[:3]), corpus_path)

        catalog = load_catalog_json(catalog_path)
        loaded_model = AnnotationModel.load(model_path)
        corpus = load_corpus_jsonl(corpus_path)

        original = TableAnnotator(world.annotator_view, model=default_model())
        reloaded = TableAnnotator(catalog, model=loaded_model)
        for labeled in corpus:
            annotation_a = original.annotate(labeled.table)
            annotation_b = reloaded.annotate(labeled.table)
            assert {
                key: cell.entity_id for key, cell in annotation_a.cells.items()
            } == {key: cell.entity_id for key, cell in annotation_b.cells.items()}
            assert {
                column: ann.type_id for column, ann in annotation_a.columns.items()
            } == {column: ann.type_id for column, ann in annotation_b.columns.items()}

    def test_trained_model_round_trip_preserves_predictions(
        self, world, wiki_tables, tmp_path
    ):
        from repro.core.learning import StructuredTrainer, TrainingConfig

        annotator = TableAnnotator(world.annotator_view, model=default_model())
        trained = StructuredTrainer(
            annotator, TrainingConfig(epochs=1, seed=2)
        ).train(wiki_tables[:3])
        path = tmp_path / "trained.json"
        trained.save(path)
        reloaded = AnnotationModel.load(path)
        fresh = TableAnnotator(world.annotator_view, model=reloaded)
        table = wiki_tables[4].table
        a = annotator.annotate(table)
        b = fresh.annotate(table)
        assert {c: ann.type_id for c, ann in a.columns.items()} == {
            c: ann.type_id for c, ann in b.columns.items()
        }
