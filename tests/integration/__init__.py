"""Tests for the integration subsystem."""
