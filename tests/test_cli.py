"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def world_dir(tmp_path):
    output = tmp_path / "world"
    exit_code = main(
        [
            "generate-world",
            "--output",
            str(output),
            "--seed",
            "5",
            "--tables",
            "4",
            "--noise",
            "wiki",
        ]
    )
    assert exit_code == 0
    return output


class TestGenerateWorld:
    def test_files_written(self, world_dir):
        assert (world_dir / "catalog_full.json").exists()
        assert (world_dir / "catalog_view.json").exists()
        assert (world_dir / "corpus.jsonl").exists()

    def test_corpus_size(self, world_dir):
        lines = (world_dir / "corpus.jsonl").read_text().strip().splitlines()
        assert len(lines) == 4

    def test_without_tables(self, tmp_path):
        output = tmp_path / "bare"
        assert main(["generate-world", "--output", str(output)]) == 0
        assert not (output / "corpus.jsonl").exists()


class TestAnnotate:
    def test_annotation_output(self, world_dir, tmp_path):
        output = tmp_path / "annotations.json"
        exit_code = main(
            [
                "annotate",
                "--catalog",
                str(world_dir / "catalog_view.json"),
                "--corpus",
                str(world_dir / "corpus.jsonl"),
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        annotations = json.loads(output.read_text())
        assert len(annotations) == 4
        first = annotations[0]
        assert set(first) == {"table_id", "cells", "columns", "relations"}
        assert any(value is not None for value in first["columns"].values())

    def test_stdout_mode(self, world_dir, capsys):
        exit_code = main(
            [
                "annotate",
                "--catalog",
                str(world_dir / "catalog_view.json"),
                "--corpus",
                str(world_dir / "corpus.jsonl"),
            ]
        )
        assert exit_code == 0
        printed = capsys.readouterr().out
        assert json.loads(printed)


class TestAnnotateStreaming:
    def test_jsonl_round_trips_with_json_output(self, world_dir, tmp_path):
        """--jsonl streams the same annotations the JSON-array mode writes."""
        json_output = tmp_path / "annotations.json"
        jsonl_output = tmp_path / "annotations.jsonl"
        base_args = [
            "annotate",
            "--catalog",
            str(world_dir / "catalog_view.json"),
            "--corpus",
            str(world_dir / "corpus.jsonl"),
        ]
        assert main(base_args + ["--output", str(json_output)]) == 0
        assert main(base_args + ["--jsonl", "--output", str(jsonl_output)]) == 0
        as_array = json.loads(json_output.read_text())
        as_lines = [
            json.loads(line)
            for line in jsonl_output.read_text().splitlines()
            if line.strip()
        ]
        assert as_lines == as_array

    def test_jsonl_stdout(self, world_dir, capsys):
        exit_code = main(
            [
                "annotate",
                "--catalog",
                str(world_dir / "catalog_view.json"),
                "--corpus",
                str(world_dir / "corpus.jsonl"),
                "--jsonl",
            ]
        )
        assert exit_code == 0
        lines = [
            line for line in capsys.readouterr().out.splitlines() if line.strip()
        ]
        assert len(lines) == 4
        assert all("table_id" in json.loads(line) for line in lines)

    def test_parallel_workers_match_serial(self, world_dir, tmp_path):
        serial = tmp_path / "serial.jsonl"
        threaded = tmp_path / "threaded.jsonl"
        base_args = [
            "annotate",
            "--catalog",
            str(world_dir / "catalog_view.json"),
            "--corpus",
            str(world_dir / "corpus.jsonl"),
            "--jsonl",
            "--batch-size",
            "2",
        ]
        assert main(base_args + ["--output", str(serial)]) == 0
        assert main(base_args + ["--workers", "4", "--output", str(threaded)]) == 0
        assert serial.read_text() == threaded.read_text()


class TestSearchIndex:
    def test_reports_stats_and_writes_annotations(self, world_dir, tmp_path, capsys):
        annotations = tmp_path / "annotations.jsonl"
        exit_code = main(
            [
                "search-index",
                "--catalog",
                str(world_dir / "catalog_view.json"),
                "--corpus",
                str(world_dir / "corpus.jsonl"),
                "--annotations",
                str(annotations),
            ]
        )
        assert exit_code == 0
        printed = capsys.readouterr().out
        assert "tables: 4" in printed
        assert "annotated_tables: 4" in printed
        lines = annotations.read_text().strip().splitlines()
        assert len(lines) == 4


class TestTrainAndSearch:
    def test_train_then_annotate_with_model(self, world_dir, tmp_path):
        model_path = tmp_path / "model.json"
        exit_code = main(
            [
                "train",
                "--catalog",
                str(world_dir / "catalog_view.json"),
                "--corpus",
                str(world_dir / "corpus.jsonl"),
                "--output",
                str(model_path),
                "--epochs",
                "1",
            ]
        )
        assert exit_code == 0
        assert model_path.exists()
        output = tmp_path / "annotations.json"
        exit_code = main(
            [
                "annotate",
                "--catalog",
                str(world_dir / "catalog_view.json"),
                "--corpus",
                str(world_dir / "corpus.jsonl"),
                "--model",
                str(model_path),
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0

    def test_search(self, world_dir, capsys):
        # find a directed tuple from the full catalog to query for
        from repro.catalog.io import load_catalog_json

        full = load_catalog_json(world_dir / "catalog_full.json")
        director = sorted(full.relations.participating_objects("rel:directed"))[0]
        exit_code = main(
            [
                "search",
                "--catalog",
                str(world_dir / "catalog_view.json"),
                "--corpus",
                str(world_dir / "corpus.jsonl"),
                "--relation",
                "rel:directed",
                "--entity",
                director,
            ]
        )
        assert exit_code == 0
        printed = capsys.readouterr().out
        assert "answers" in printed


class TestAugment:
    def test_augment_prints_proposals(self, world_dir, capsys):
        exit_code = main(
            [
                "augment",
                "--catalog",
                str(world_dir / "catalog_view.json"),
                "--corpus",
                str(world_dir / "corpus.jsonl"),
                "--min-confidence",
                "0",
            ]
        )
        assert exit_code == 0
        printed = capsys.readouterr().out
        assert "tuple proposals" in printed

    def test_augment_writes_catalog(self, world_dir, tmp_path):
        from repro.catalog.io import load_catalog_json

        output = tmp_path / "augmented.json"
        exit_code = main(
            [
                "augment",
                "--catalog",
                str(world_dir / "catalog_view.json"),
                "--corpus",
                str(world_dir / "corpus.jsonl"),
                "--min-confidence",
                "0",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        before = load_catalog_json(world_dir / "catalog_view.json")
        after = load_catalog_json(output)
        assert after.stats()["tuples"] >= before.stats()["tuples"]


class TestWireMode:
    def test_wire_lines_are_annotate_responses(self, world_dir, capsys):
        """--wire streams one AnnotateResponse wire payload per table."""
        from repro.api import AnnotateResponse

        exit_code = main(
            [
                "annotate",
                "--catalog",
                str(world_dir / "catalog_view.json"),
                "--corpus",
                str(world_dir / "corpus.jsonl"),
                "--wire",
            ]
        )
        assert exit_code == 0
        lines = [
            line for line in capsys.readouterr().out.splitlines() if line.strip()
        ]
        assert len(lines) == 4
        for line in lines:
            response = AnnotateResponse.from_json(json.loads(line))
            assert response.engine == "batched"
            assert response.timing_seconds is None

    def test_wire_annotations_match_plain_mode(self, world_dir, tmp_path, capsys):
        json_output = tmp_path / "annotations.json"
        base = [
            "annotate",
            "--catalog",
            str(world_dir / "catalog_view.json"),
            "--corpus",
            str(world_dir / "corpus.jsonl"),
        ]
        assert main(base + ["--output", str(json_output)]) == 0
        capsys.readouterr()
        assert main(base + ["--wire"]) == 0
        wire_lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        plain = json.loads(json_output.read_text())
        assert [entry["annotation"] for entry in wire_lines] == plain


class TestApiErrorExit:
    def test_wire_and_jsonl_mutually_exclusive(self, world_dir, capsys):
        exit_code = main(
            [
                "annotate",
                "--catalog",
                str(world_dir / "catalog_view.json"),
                "--corpus",
                str(world_dir / "corpus.jsonl"),
                "--wire",
                "--jsonl",
            ]
        )
        assert exit_code == 1
        assert "error [validation_error]" in capsys.readouterr().err

    def test_missing_catalog_exits_nonzero(self, tmp_path, capsys):
        exit_code = main(
            [
                "annotate",
                "--catalog",
                str(tmp_path / "nope.json"),
                "--corpus",
                str(tmp_path / "nope.jsonl"),
            ]
        )
        assert exit_code == 1
        assert "error [io_error]" in capsys.readouterr().err


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_compiled_cache_size_flag_reaches_session_config(self):
        # regression: the field existed on SessionConfig but had no CLI
        # flag, so operators could never change the compiled-graph LRU
        from repro.api.config import SessionConfig
        from repro.cli import build_parser

        parser = build_parser()
        for command in (
            ["annotate", "--catalog", "c", "--corpus", "x"],
            ["serve", "--bundle", "b"],
        ):
            args = parser.parse_args([*command, "--compiled-cache-size", "7"])
            assert SessionConfig.from_args(args).compiled_cache_size == 7
            defaulted = parser.parse_args(command)
            assert SessionConfig.from_args(defaulted).compiled_cache_size == (
                SessionConfig().compiled_cache_size
            )


class TestAnnotateStreamedArray:
    def test_output_bytes_match_json_dumps(self, world_dir, tmp_path):
        """The streamed JSON-array writer is byte-identical to json.dumps."""
        output = tmp_path / "annotations.json"
        exit_code = main(
            [
                "annotate",
                "--catalog",
                str(world_dir / "catalog_view.json"),
                "--corpus",
                str(world_dir / "corpus.jsonl"),
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        text = output.read_text()
        assert text == json.dumps(json.loads(text), indent=1)


class TestBundleAndServeCli:
    @pytest.fixture()
    def bundle_dir(self, world_dir, tmp_path):
        output = tmp_path / "bundle"
        exit_code = main(
            [
                "bundle",
                "build",
                "--catalog",
                str(world_dir / "catalog_view.json"),
                "--corpus",
                str(world_dir / "corpus.jsonl"),
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        return output

    def test_bundle_build_writes_manifest(self, bundle_dir, capsys):
        assert (bundle_dir / "manifest.json").exists()
        assert (bundle_dir / "annotations.jsonl").exists()
        assert (bundle_dir / "indexes" / "lemma.meta.json").exists()

    def test_bundle_info_verifies(self, bundle_dir, capsys):
        exit_code = main(
            ["bundle", "info", "--bundle", str(bundle_dir), "--verify"]
        )
        assert exit_code == 0
        printed = capsys.readouterr().out
        assert "all file hashes match" in printed
        assert '"format_version"' in printed

    def test_bundle_serves_cli_identical_annotations(
        self, world_dir, bundle_dir, tmp_path
    ):
        """ServeState /annotate == `repro annotate` output, table by table."""
        from repro.pipeline.io import iter_corpus_jsonl
        from repro.serve.bundle import load_bundle
        from repro.serve.state import ServeState

        output = tmp_path / "annotations.json"
        assert (
            main(
                [
                    "annotate",
                    "--catalog",
                    str(world_dir / "catalog_view.json"),
                    "--corpus",
                    str(world_dir / "corpus.jsonl"),
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        cli_annotations = {
            entry["table_id"]: entry for entry in json.loads(output.read_text())
        }
        state = ServeState(load_bundle(bundle_dir))
        for labeled in iter_corpus_jsonl(world_dir / "corpus.jsonl"):
            served = state.annotate_payload({"table": labeled.table.to_dict()})
            assert served["annotation"] == cli_annotations[labeled.table_id]
