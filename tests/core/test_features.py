"""Tests for the five feature families."""

import math

import numpy as np
import pytest

from repro.core.features import (
    F1_FEATURE_NAMES,
    F3_FEATURE_NAMES,
    F4_FEATURE_NAMES,
    F5_FEATURE_NAMES,
    TypeEntityFeatureMode,
    header_absent_features,
    participation_fraction,
    relation_entities_features,
    relation_types_features,
    text_lemma_features,
    type_entity_features,
)


class TestF1F2:
    def test_exact_match_fires_everything(self):
        vector = text_lemma_features(
            "Albert Einstein", ("Albert Einstein", "Einstein"), None
        )
        named = dict(zip(F1_FEATURE_NAMES, vector))
        assert named["cosine"] == pytest.approx(1.0)
        assert named["exact"] == 1.0
        assert named["bias"] == 1.0

    def test_max_over_lemmas(self):
        weak = text_lemma_features("Einstein", ("Albert Einstein",), None)
        strong = text_lemma_features(
            "Einstein", ("Albert Einstein", "Einstein"), None
        )
        assert strong[0] > weak[0]
        assert strong[4] == 1.0  # exact fires on the second lemma

    def test_no_lemmas_only_bias(self):
        vector = text_lemma_features("anything", (), None)
        assert vector[-1] == 1.0
        assert np.all(vector[:-1] == 0.0)

    def test_header_absent_is_all_zero(self):
        assert np.all(header_absent_features() == 0.0)

    def test_case_insensitive_exact(self):
        vector = text_lemma_features("einstein", ("Einstein",), None)
        assert vector[4] == 1.0


class TestF3:
    def test_contained_inv_dist(self, book_catalog):
        vector = type_entity_features(
            book_catalog, "type:person", "ent:einstein", TypeEntityFeatureMode.INV_DIST
        )
        named = dict(zip(F3_FEATURE_NAMES, vector))
        # einstein -> physicist/author -> person: dist 2
        assert named["distance_compatibility"] == pytest.approx(0.5)
        assert named["contained"] == 1.0
        assert named["idf_specificity"] > 0.0

    def test_contained_inv_sqrt_dist(self, book_catalog):
        vector = type_entity_features(
            book_catalog,
            "type:person",
            "ent:einstein",
            TypeEntityFeatureMode.INV_SQRT_DIST,
        )
        assert vector[0] == pytest.approx(1 / math.sqrt(2))

    def test_idf_mode_has_no_distance_feature(self, book_catalog):
        vector = type_entity_features(
            book_catalog, "type:person", "ent:einstein", TypeEntityFeatureMode.IDF
        )
        assert vector[0] == 0.0
        assert vector[1] > 0.0

    def test_direct_type_distance_one(self, book_catalog):
        vector = type_entity_features(
            book_catalog,
            "type:physicist",
            "ent:einstein",
            TypeEntityFeatureMode.INV_DIST,
        )
        assert vector[0] == pytest.approx(1.0)

    def test_missing_link_repair_scales_by_relatedness(self, book_catalog):
        # stannard is an author but NOT a physicist; authors and physicists
        # overlap only via einstein -> relatedness 1/2, min dist 1
        vector = type_entity_features(
            book_catalog,
            "type:physicist",
            "ent:stannard",
            TypeEntityFeatureMode.INV_DIST,
        )
        named = dict(zip(F3_FEATURE_NAMES, vector))
        assert named["contained"] == 0.0
        assert named["distance_compatibility"] == pytest.approx(0.5)

    def test_unrelated_type_all_zero_compat(self, book_catalog):
        vector = type_entity_features(
            book_catalog,
            "type:book",
            "ent:stannard",
            TypeEntityFeatureMode.INV_SQRT_DIST,
        )
        assert vector[0] == 0.0
        assert vector[2] == 0.0

    def test_specific_type_higher_idf(self, book_catalog):
        specific = type_entity_features(
            book_catalog,
            "type:physicist",
            "ent:einstein",
            TypeEntityFeatureMode.IDF,
        )[1]
        general = type_entity_features(
            book_catalog, "type:person", "ent:einstein", TypeEntityFeatureMode.IDF
        )[1]
        assert specific > general


class TestF4:
    def test_schema_match_exact(self, book_catalog):
        vector = relation_types_features(
            book_catalog, "rel:wrote", "type:book", "type:author"
        )
        named = dict(zip(F4_FEATURE_NAMES, vector))
        assert named["schema_match"] == 1.0
        assert named["bias"] == 1.0
        assert 0.0 < named["subject_participation"] <= 1.0

    def test_schema_match_via_subtype(self, book_catalog):
        vector = relation_types_features(
            book_catalog, "rel:wrote", "type:science_books", "type:author"
        )
        assert vector[0] == 1.0

    def test_schema_mismatch(self, book_catalog):
        vector = relation_types_features(
            book_catalog, "rel:wrote", "type:author", "type:book"
        )
        assert vector[0] == 0.0

    def test_reversed_label_swaps_roles(self, book_catalog):
        vector = relation_types_features(
            book_catalog, "rel:wrote^-1", "type:author", "type:book"
        )
        assert vector[0] == 1.0

    def test_participation_fraction(self, book_catalog):
        # all 3 books participate as subjects of wrote
        assert participation_fraction(
            book_catalog, "rel:wrote", "type:book", "subject"
        ) == pytest.approx(1.0)
        # both authors participate as objects; einstein does via relativity
        assert participation_fraction(
            book_catalog, "rel:wrote", "type:author", "object"
        ) == pytest.approx(1.0)
        assert participation_fraction(
            book_catalog, "rel:wrote", "type:book", "object"
        ) == 0.0

    def test_participation_unknown_role(self, book_catalog):
        with pytest.raises(ValueError):
            participation_fraction(book_catalog, "rel:wrote", "type:book", "sideways")


class TestF5:
    def test_tuple_exists(self, book_catalog):
        vector = relation_entities_features(
            book_catalog, "rel:wrote", "ent:relativity", "ent:einstein"
        )
        named = dict(zip(F5_FEATURE_NAMES, vector))
        assert named["tuple_exists"] == 1.0
        assert named["functional_violation"] == 0.0

    def test_reversed_tuple(self, book_catalog):
        vector = relation_entities_features(
            book_catalog, "rel:wrote^-1", "ent:einstein", "ent:relativity"
        )
        assert vector[0] == 1.0

    def test_functional_violation(self, book_catalog):
        # relativity was written by einstein (many_to_one): pairing it with
        # stannard contradicts the catalog
        vector = relation_entities_features(
            book_catalog, "rel:wrote", "ent:relativity", "ent:stannard"
        )
        assert vector[0] == 0.0
        assert vector[1] == 1.0

    def test_no_signal_for_unknown_pair(self, book_catalog):
        vector = relation_entities_features(
            book_catalog, "rel:wrote", "ent:uncle_albert", "ent:einstein"
        )
        # uncle_albert written by stannard -> violation fires
        assert vector[1] == 1.0
