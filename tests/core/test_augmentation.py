"""Tests for catalog augmentation from annotated tables."""


from repro.core.annotation import (
    CellAnnotation,
    ColumnAnnotation,
    RelationAnnotation,
    TableAnnotation,
)
from repro.core.augmentation import CatalogAugmenter, recovered_fraction


def annotation_with(
    table_id: str,
    cells: dict,
    columns: dict,
    relations: dict,
    cell_score: float = 1.0,
    relation_score: float = 1.0,
) -> TableAnnotation:
    annotation = TableAnnotation(table_id=table_id)
    for (row, column), entity in cells.items():
        annotation.cells[(row, column)] = CellAnnotation(
            row, column, entity, score=cell_score
        )
    for column, type_id in columns.items():
        annotation.columns[column] = ColumnAnnotation(
            column, type_id, score=cell_score
        )
    for (left, right), label in relations.items():
        annotation.relations[(left, right)] = RelationAnnotation(
            left, right, label, score=relation_score
        )
    return annotation


class TestTupleMining:
    def test_new_tuple_proposed(self, book_catalog):
        # the catalog knows wrote(time_space, stannard); pretend a table
        # asserts wrote(petros-like new fact): use an unknown pairing
        augmenter = CatalogAugmenter(book_catalog)
        annotation = annotation_with(
            "t1",
            cells={(0, 0): "ent:uncle_albert", (0, 1): "ent:einstein"},
            columns={0: "type:book", 1: "type:author"},
            relations={(0, 1): "rel:wrote"},
        )
        augmenter.add_annotated_table(annotation)
        report = augmenter.report()
        assert len(report.tuples) == 1
        proposal = report.tuples[0]
        assert proposal.relation_id == "rel:wrote"
        assert proposal.subject == "ent:uncle_albert"
        assert proposal.object_ == "ent:einstein"
        assert proposal.support == 1

    def test_known_tuple_not_proposed(self, book_catalog):
        augmenter = CatalogAugmenter(book_catalog)
        annotation = annotation_with(
            "t1",
            cells={(0, 0): "ent:relativity", (0, 1): "ent:einstein"},
            columns={0: "type:book", 1: "type:author"},
            relations={(0, 1): "rel:wrote"},
        )
        augmenter.add_annotated_table(annotation)
        assert augmenter.report().tuples == []

    def test_reversed_label_orientation(self, book_catalog):
        augmenter = CatalogAugmenter(book_catalog)
        annotation = annotation_with(
            "t1",
            cells={(0, 0): "ent:einstein", (0, 1): "ent:uncle_albert"},
            columns={0: "type:author", 1: "type:book"},
            relations={(0, 1): "rel:wrote^-1"},
        )
        augmenter.add_annotated_table(annotation)
        proposal = augmenter.report().tuples[0]
        assert proposal.subject == "ent:uncle_albert"
        assert proposal.object_ == "ent:einstein"

    def test_support_accumulates_across_tables(self, book_catalog):
        augmenter = CatalogAugmenter(book_catalog)
        for table_id in ("t1", "t2", "t3"):
            augmenter.add_annotated_table(
                annotation_with(
                    table_id,
                    cells={(0, 0): "ent:uncle_albert", (0, 1): "ent:einstein"},
                    columns={0: "type:book", 1: "type:author"},
                    relations={(0, 1): "rel:wrote"},
                )
            )
        proposal = augmenter.report().tuples[0]
        assert proposal.support == 3
        assert proposal.source_tables == ("t1", "t2", "t3")

    def test_na_cells_contribute_nothing(self, book_catalog):
        augmenter = CatalogAugmenter(book_catalog)
        augmenter.add_annotated_table(
            annotation_with(
                "t1",
                cells={(0, 0): None, (0, 1): "ent:einstein"},
                columns={0: "type:book", 1: "type:author"},
                relations={(0, 1): "rel:wrote"},
            )
        )
        assert augmenter.report().tuples == []


class TestInstanceLinkMining:
    def test_missing_link_proposed(self, book_catalog):
        # stannard is not a physicist in the catalog; a (hypothetical)
        # annotation asserting it should surface as a proposal
        augmenter = CatalogAugmenter(book_catalog)
        augmenter.add_annotated_table(
            annotation_with(
                "t1",
                cells={(0, 0): "ent:stannard"},
                columns={0: "type:physicist"},
                relations={},
            )
        )
        report = augmenter.report()
        assert len(report.instance_links) == 1
        assert report.instance_links[0].entity_id == "ent:stannard"
        assert report.instance_links[0].type_id == "type:physicist"

    def test_known_link_not_proposed(self, book_catalog):
        augmenter = CatalogAugmenter(book_catalog)
        augmenter.add_annotated_table(
            annotation_with(
                "t1",
                cells={(0, 0): "ent:einstein"},
                columns={0: "type:person"},
                relations={},
            )
        )
        assert augmenter.report().instance_links == []


class TestApply:
    def test_apply_writes_facts(self, book_catalog):
        augmenter = CatalogAugmenter(book_catalog)
        augmenter.add_annotated_table(
            annotation_with(
                "t1",
                cells={(0, 0): "ent:uncle_albert", (0, 1): "ent:einstein"},
                columns={0: "type:book", 1: "type:author"},
                relations={(0, 1): "rel:wrote"},
            )
        )
        report = augmenter.report()
        counts = report.apply_to(book_catalog)
        assert counts["tuples"] == 1
        assert book_catalog.relations.has_tuple(
            "rel:wrote", "ent:uncle_albert", "ent:einstein"
        )

    def test_min_support_filter(self, book_catalog):
        augmenter = CatalogAugmenter(book_catalog)
        augmenter.add_annotated_table(
            annotation_with(
                "t1",
                cells={(0, 0): "ent:uncle_albert", (0, 1): "ent:einstein"},
                columns={0: "type:book", 1: "type:author"},
                relations={(0, 1): "rel:wrote"},
            )
        )
        counts = augmenter.report().apply_to(book_catalog, min_support=2)
        assert counts["tuples"] == 0


class TestEndToEndRecovery:
    def test_recovers_dropped_tuples(self, world, annotator, wiki_tables):
        """Annotating clean tables must recover some of the tuples that the
        corruption dropped from the annotator's view, at high precision."""
        augmenter = CatalogAugmenter(world.annotator_view, min_confidence=1.0)
        for labeled in wiki_tables:
            augmenter.add_annotated_table(annotator.annotate(labeled.table))
        report = augmenter.report()
        assert report.tuples, "no tuple proposals mined"
        stats = recovered_fraction(
            report.tuples, world.full, world.annotator_view
        )
        assert stats["precision"] > 0.7
        assert stats["recall_of_dropped"] > 0.0

    def test_confidence_threshold_trades_recall_for_precision(
        self, world, annotator, wiki_tables
    ):
        annotations = [annotator.annotate(labeled.table) for labeled in wiki_tables]
        stats_by_threshold = {}
        for threshold in (0.0, 1.0):
            augmenter = CatalogAugmenter(
                world.annotator_view, min_confidence=threshold
            )
            for annotation in annotations:
                augmenter.add_annotated_table(annotation)
            stats_by_threshold[threshold] = recovered_fraction(
                augmenter.report().tuples, world.full, world.annotator_view
            )
        assert (
            stats_by_threshold[1.0]["precision"]
            >= stats_by_threshold[0.0]["precision"]
        )
        assert (
            stats_by_threshold[0.0]["recall_of_dropped"]
            >= stats_by_threshold[1.0]["recall_of_dropped"]
        )
