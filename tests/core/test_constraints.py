"""Tests for the unique-column (primary key) constrained assignment."""

import pytest

from repro.catalog.builder import CatalogBuilder
from repro.core.candidates import CandidateGenerator
from repro.core.constraints import assign_unique_entities
from repro.core.model import default_model
from repro.core.problem import FeatureComputer, build_problem
from repro.core.simple_inference import annotate_simple
from repro.tables.model import Table


@pytest.fixture()
def twin_catalog():
    """Two persons sharing the lemma 'Baker' — per-cell argmax assigns the
    same entity to both rows; the unique constraint must split them."""
    return (
        CatalogBuilder(name="twins")
        .type("type:person", "person")
        .entity("ent:alan", ["Alan Baker", "Baker"], types=["type:person"])
        .entity("ent:zoe", ["Zoe Baker", "Baker"], types=["type:person"])
        .build()
    )


def build(catalog, cells):
    generator = CandidateGenerator(catalog, top_k_entities=4)
    features = FeatureComputer(catalog, default_model().mode, generator)
    table = Table(table_id="t", cells=cells, headers=["Name"])
    return build_problem(table, generator, features), features


class TestUniqueAssignment:
    def test_splits_ambiguous_duplicates(self, twin_catalog):
        problem, features = build(twin_catalog, [["Baker"], ["Baker"]])
        model = default_model()
        assigned = assign_unique_entities(
            problem, model, features, column=0, type_id="type:person"
        )
        values = [assigned[0], assigned[1]]
        assert set(values) == {"ent:alan", "ent:zoe"}

    def test_unconstrained_argmax_duplicates(self, twin_catalog):
        """Sanity: without the constraint both cells pick the same winner."""
        problem, _features = build(twin_catalog, [["Baker"], ["Baker"]])
        annotation = annotate_simple(problem, default_model())
        assert annotation.entity_of(0, 0) == annotation.entity_of(1, 0)

    def test_clear_cells_keep_their_entity(self, twin_catalog):
        problem, features = build(
            twin_catalog, [["Alan Baker"], ["Zoe Baker"]]
        )
        assigned = assign_unique_entities(
            problem, default_model(), features, column=0, type_id="type:person"
        )
        assert assigned[0] == "ent:alan"
        assert assigned[1] == "ent:zoe"

    def test_more_rows_than_entities_overflows_to_na(self, twin_catalog):
        problem, features = build(
            twin_catalog, [["Baker"], ["Baker"], ["Baker"]]
        )
        assigned = assign_unique_entities(
            problem, default_model(), features, column=0, type_id="type:person"
        )
        concrete = [entity for entity in assigned.values() if entity is not None]
        assert sorted(concrete) == ["ent:alan", "ent:zoe"]
        assert list(assigned.values()).count(None) == 1

    def test_na_type_still_assigns_by_text(self, twin_catalog):
        problem, features = build(twin_catalog, [["Alan Baker"], ["Zoe Baker"]])
        assigned = assign_unique_entities(
            problem, default_model(), features, column=0, type_id=None
        )
        assert assigned[0] == "ent:alan"

    def test_empty_column(self, twin_catalog):
        problem, features = build(twin_catalog, [["123"], ["456"]])
        assert (
            assign_unique_entities(
                problem, default_model(), features, column=0, type_id=None
            )
            == {}
        )


class TestSimpleInferenceIntegration:
    def test_unique_columns_through_annotate_simple(self, twin_catalog):
        problem, features = build(twin_catalog, [["Baker"], ["Baker"]])
        annotation = annotate_simple(
            problem, default_model(), unique_columns=(0,), features=features
        )
        values = {annotation.entity_of(0, 0), annotation.entity_of(1, 0)}
        assert values == {"ent:alan", "ent:zoe"}

    def test_unique_requires_features(self, twin_catalog):
        problem, _features = build(twin_catalog, [["Baker"], ["Baker"]])
        with pytest.raises(ValueError):
            annotate_simple(problem, default_model(), unique_columns=(0,))

    def test_annotator_facade(self, world):
        from repro.core.annotator import TableAnnotator

        annotator = TableAnnotator(world.annotator_view)
        table = Table(
            table_id="t", cells=[["Baker"], ["Baker"]], headers=["Name"]
        )
        annotation = annotator.annotate_simple(table, unique_columns=(0,))
        first = annotation.entity_of(0, 0)
        second = annotation.entity_of(1, 0)
        if first is not None and second is not None:
            assert first != second
