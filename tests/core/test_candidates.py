"""Tests for candidate space generation (Erc, Tc, Bcc')."""

import pytest

from repro.core.candidates import CandidateGenerator


@pytest.fixture()
def generator(book_catalog) -> CandidateGenerator:
    return CandidateGenerator(book_catalog, top_k_entities=5)


class TestCellCandidates:
    def test_exact_cell_retrieves_entity(self, generator):
        candidates = generator.cell_candidates("Albert Einstein")
        assert candidates[0].entity_id == "ent:einstein"
        assert candidates[0].retrieval_score > 0

    def test_ambiguous_token_retrieves_several(self, generator):
        # 'Albert' appears in einstein lemmas and two book titles
        ids = {c.entity_id for c in generator.cell_candidates("Albert")}
        assert "ent:einstein" in ids
        assert "ent:uncle_albert" in ids or "ent:time_space" in ids

    def test_numeric_cell_has_no_candidates(self, generator):
        assert generator.cell_candidates("1951") == []
        assert generator.cell_candidates("85%") == []

    def test_blank_cell_has_no_candidates(self, generator):
        assert generator.cell_candidates("") == []
        assert generator.cell_candidates("   ") == []

    def test_unmatched_text_empty(self, generator):
        assert generator.cell_candidates("zzz qqq xxx") == []

    def test_top_k_respected(self, book_catalog):
        generator = CandidateGenerator(book_catalog, top_k_entities=1)
        assert len(generator.cell_candidates("Albert")) == 1

    def test_validation(self, book_catalog):
        with pytest.raises(ValueError):
            CandidateGenerator(book_catalog, top_k_entities=0)
        with pytest.raises(ValueError):
            CandidateGenerator(book_catalog, max_type_candidates=0)

    def test_paper_candidate_count_scale(self, world):
        """On the synthetic world, ambiguous surname cells should retrieve
        multiple candidates (the paper reports 7-8 typical)."""
        generator = CandidateGenerator(world.annotator_view, top_k_entities=8)
        # a bare surname from the shared pool
        candidates = generator.cell_candidates("Baker")
        assert len(candidates) >= 2


class TestTypeCandidates:
    def test_union_of_ancestors(self, generator, book_catalog):
        column = [
            generator.cell_candidates("Relativity: The Special and the General Theory"),
            generator.cell_candidates("Uncle Albert and the Quantum Quest"),
        ]
        types = generator.column_type_candidates(column)
        assert "type:book" in types
        assert "type:science_books" in types

    def test_ranked_by_cell_support(self, generator):
        column = [
            generator.cell_candidates("Relativity"),
            generator.cell_candidates("Uncle Albert and the Quantum Quest"),
            generator.cell_candidates("The Time and Space of Uncle Albert"),
        ]
        types = generator.column_type_candidates(column)
        # book-family types supported by all cells outrank person types
        book_rank = types.index("type:book")
        person_rank = (
            types.index("type:person") if "type:person" in types else len(types)
        )
        assert book_rank < person_rank

    def test_empty_column(self, generator):
        assert generator.column_type_candidates([[], []]) == []

    def test_cap_respected(self, book_catalog):
        generator = CandidateGenerator(book_catalog, max_type_candidates=2)
        column = [generator.cell_candidates("Albert")]
        assert len(generator.column_type_candidates(column)) <= 2


class TestRelationCandidates:
    def test_forward_relation_found(self, generator):
        left = [generator.cell_candidates("Relativity")]
        right = [generator.cell_candidates("A. Einstein")]
        labels = generator.relation_candidates(left, right)
        assert "rel:wrote" in labels

    def test_reversed_relation_found(self, generator):
        left = [generator.cell_candidates("A. Einstein")]
        right = [generator.cell_candidates("Relativity")]
        labels = generator.relation_candidates(left, right)
        assert "rel:wrote^-1" in labels

    def test_no_relation_between_unrelated(self, generator):
        left = [generator.cell_candidates("Russell Stannard")]
        right = [generator.cell_candidates("A. Einstein")]
        assert generator.relation_candidates(left, right) == []

    def test_rowwise_pairing(self, generator):
        # candidates in different rows must not combine
        left = [generator.cell_candidates("Relativity"), []]
        right = [[], generator.cell_candidates("A. Einstein")]
        assert generator.relation_candidates(left, right) == []
