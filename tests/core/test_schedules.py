"""Tests comparing the paper's Figure-11 schedule with generic flooding."""

import pytest

from repro.core.annotator import AnnotatorConfig, TableAnnotator
from repro.core.inference import InferenceConfig, annotate_collective
from repro.core.model import default_model


class TestScheduleOptions:
    def test_unknown_schedule_rejected(self, annotator, wiki_tables):
        problem = annotator.build_problem(wiki_tables[0].table)
        with pytest.raises(ValueError):
            annotate_collective(
                problem, default_model(), InferenceConfig(schedule="sideways")
            )

    def test_flooding_matches_paper_schedule_labels(self, world, wiki_tables):
        paper = TableAnnotator(
            world.annotator_view, config=AnnotatorConfig(schedule="paper")
        )
        flooding = TableAnnotator(
            world.annotator_view,
            config=AnnotatorConfig(schedule="flooding", max_iterations=30),
        )
        agree = total = 0
        for labeled in wiki_tables[:4]:
            annotation_a = paper.annotate(labeled.table)
            annotation_b = flooding.annotate(labeled.table)
            for key, cell in annotation_a.cells.items():
                total += 1
                agree += annotation_b.cells[key].entity_id == cell.entity_id
        assert total > 0
        assert agree / total > 0.95

    def test_flooding_diagnostics(self, world, wiki_tables):
        annotator = TableAnnotator(
            world.annotator_view, config=AnnotatorConfig(schedule="flooding")
        )
        annotation = annotator.annotate(wiki_tables[0].table)
        assert annotation.diagnostics["method"] == "collective"
        assert annotation.diagnostics["iterations"] >= 1

    def test_damping_does_not_change_easy_map(self, world, wiki_tables):
        plain = TableAnnotator(world.annotator_view)
        damped = TableAnnotator(
            world.annotator_view, config=AnnotatorConfig(damping=0.3, max_iterations=25)
        )
        labeled = wiki_tables[1]
        annotation_a = plain.annotate(labeled.table)
        annotation_b = damped.annotate(labeled.table)
        types_a = {c: a.type_id for c, a in annotation_a.columns.items()}
        types_b = {c: a.type_id for c, a in annotation_b.columns.items()}
        assert types_a == types_b
