"""Tests for the LCA and Majority baselines."""

import pytest

from repro.core.annotator import TableAnnotator
from repro.core.candidates import CandidateGenerator
from repro.core.model import default_model
from repro.core.problem import FeatureComputer, build_problem
from repro.eval.datasets import missing_link_fixture
from repro.tables.model import Table


@pytest.fixture()
def book_problem(book_catalog):
    generator = CandidateGenerator(book_catalog, top_k_entities=5)
    features = FeatureComputer(book_catalog, default_model().mode, generator)
    table = Table(
        table_id="books",
        cells=[
            ["Relativity: The Special and the General Theory", "A. Einstein"],
            ["Uncle Albert and the Quantum Quest", "Russell Stannard"],
        ],
        headers=["Title", "Author"],
    )
    return build_problem(table, generator, features), features


class TestLCA:
    def test_finds_common_type(self, book_problem):
        from repro.core.baselines import LCAAnnotator

        problem, features = book_problem
        result = LCAAnnotator(features).annotate(problem)
        assert result.column_type_sets[0] == {"type:science_books"}

    def test_empty_candidate_cell_kills_column(self, book_catalog):
        """Strict Section-4.5.1 reading: a candidate-less cell empties the
        intersection."""
        from repro.core.baselines import LCAAnnotator

        generator = CandidateGenerator(book_catalog, top_k_entities=5)
        features = FeatureComputer(book_catalog, default_model().mode, generator)
        table = Table(
            table_id="t",
            cells=[["Relativity", "x"], ["zzz unmatched qqq", "y"]],
            headers=None,
        )
        problem = build_problem(table, generator, features)
        result = LCAAnnotator(features).annotate(problem)
        assert result.column_type_sets[0] == set()
        assert result.annotation.type_of(0) is None
        # cells of a killed column fall to na
        assert result.annotation.entity_of(0, 0) is None

    def test_entity_assignment_respects_type(self, book_problem):
        from repro.core.baselines import LCAAnnotator

        problem, features = book_problem
        result = LCAAnnotator(features).annotate(problem)
        assert result.annotation.entity_of(0, 0) == "ent:relativity"
        assert result.annotation.entity_of(0, 1) == "ent:einstein"


class TestLCAOverGeneralisation:
    def test_appendix_f_anecdote(self):
        """With the missing links of Appendix F, LCA escalates to the root
        while the full-catalog LCA stays on the series category."""
        from repro.core.baselines import LCAAnnotator

        full, broken, fixture = missing_link_fixture()
        table = Table(
            table_id="nancy",
            cells=[[title] for title in fixture.column_cells],
            headers=["Title"],
        )
        for catalog, expect_specific in ((full, True), (broken, False)):
            # top_k=1: the distinct titles retrieve exactly their entity, so
            # the broken link cannot be papered over by homonym candidates
            generator = CandidateGenerator(catalog, top_k_entities=1)
            features = FeatureComputer(catalog, default_model().mode, generator)
            problem = build_problem(table, generator, features)
            result = LCAAnnotator(features).annotate(problem)
            type_set = result.column_type_sets[0]
            if expect_specific:
                assert type_set == {fixture.expected_type}
            else:
                assert fixture.expected_type not in type_set


class TestMajority:
    def test_majority_finds_common_type(self, book_problem):
        from repro.core.baselines import MajorityAnnotator

        problem, features = book_problem
        result = MajorityAnnotator(features).annotate(problem)
        assert "type:science_books" in result.column_type_sets[0]

    def test_threshold_100_behaves_like_lca_voting(self, book_problem):
        from repro.core.baselines import LCAAnnotator, MajorityAnnotator

        problem, features = book_problem
        majority = MajorityAnnotator(features, threshold_percent=100.0).annotate(
            problem
        )
        lca = LCAAnnotator(features).annotate(problem)
        # both require support from every row with candidates
        assert majority.column_type_sets[0] == lca.column_type_sets[0]

    def test_lower_threshold_is_more_permissive(self, world, wiki_tables):
        annotator = TableAnnotator(world.annotator_view)
        problem = annotator.build_problem(wiki_tables[0].table)
        low = annotator.majority_baseline(50.0).annotate(problem)
        annotator.majority_baseline(90.0).annotate(problem)
        for column in low.column_type_sets:
            # a type surviving the high threshold had >90% votes, hence also
            # >50%; its minimal-set may differ but supersets hold pre-minimal
            assert len(low.column_type_sets[column]) >= 0  # smoke shape
        assert low.annotation.diagnostics["method"] == "majority@50"

    def test_entity_assignment_is_text_only(self, book_problem):
        from repro.core.baselines import MajorityAnnotator

        problem, features = book_problem
        result = MajorityAnnotator(features).annotate(problem)
        # every cell with candidates gets a label (or na) from phi1 alone
        assert (0, 0) in result.annotation.cells
        assert result.annotation.entity_of(0, 0) == "ent:relativity"

    def test_invalid_threshold(self, book_problem):
        from repro.core.baselines import MajorityAnnotator

        _problem, features = book_problem
        with pytest.raises(ValueError):
            MajorityAnnotator(features, threshold_percent=0.0)
        with pytest.raises(ValueError):
            MajorityAnnotator(features, threshold_percent=101.0)


class TestOrderingOnGeneratedData:
    def test_collective_beats_baselines_on_types(self, world, datasets):
        """The Figure-6 headline: Collective > Majority and LCA on types."""
        from repro.eval.experiments import evaluate_annotation

        scores = evaluate_annotation(
            world, datasets["wiki_manual"], default_model()
        )
        collective = scores["collective"].type_.mean_f1
        assert collective > scores["majority"].type_.mean_f1
        assert collective > scores["lca"].type_.mean_f1

    def test_collective_beats_baselines_on_entities(self, world, datasets):
        from repro.eval.experiments import evaluate_annotation

        scores = evaluate_annotation(
            world, datasets["wiki_manual"], default_model()
        )
        collective = scores["collective"].entity.accuracy
        assert collective > scores["majority"].entity.accuracy
        assert collective > scores["lca"].entity.accuracy
