"""Tests for problem construction and the score/feature-map consistency.

The central invariant: for every full assignment y,
``graph.score(y) == w · Φ(y)`` — the factor graph and the joint feature map
describe the same objective.  The structured learner depends on this.
"""

import random

import numpy as np
import pytest

from repro.core.annotator import TableAnnotator
from repro.core.candidates import CandidateGenerator
from repro.core.model import default_model
from repro.core.problem import (
    NA,
    FeatureComputer,
    build_factor_graph,
    build_problem,
    joint_feature_vector,
)
from repro.tables.model import Table


@pytest.fixture()
def book_problem(book_catalog):
    generator = CandidateGenerator(book_catalog, top_k_entities=5)
    features = FeatureComputer(
        book_catalog, default_model().mode, generator
    )
    table = Table(
        table_id="books",
        cells=[
            ["Relativity: The Special and the General Theory", "A. Einstein"],
            ["Uncle Albert and the Quantum Quest", "Russell Stannard"],
            ["The Time and Space of Uncle Albert", "Stannard"],
        ],
        headers=["Title", "Author"],
        context="books and their authors",
    )
    return build_problem(table, generator, features)


class TestProblemStructure:
    def test_cells_have_candidates(self, book_problem):
        assert (0, 0) in book_problem.cells
        assert (0, 1) in book_problem.cells
        labels = book_problem.cells[(0, 0)].labels
        assert labels[0] is NA
        assert "ent:relativity" in labels

    def test_columns_have_types(self, book_problem):
        assert "type:book" in book_problem.columns[0].labels
        assert "type:author" in book_problem.columns[1].labels

    def test_pair_has_wrote(self, book_problem):
        assert (0, 1) in book_problem.pairs
        assert "rel:wrote" in book_problem.pairs[(0, 1)].labels

    def test_f3_shapes(self, book_problem):
        column = book_problem.columns[0]
        for row, f3 in column.f3.items():
            cell = book_problem.cells[(row, 0)]
            assert f3.shape == (len(column.labels) - 1, len(cell.labels) - 1, 3)

    def test_f4_f5_shapes(self, book_problem):
        pair = book_problem.pairs[(0, 1)]
        n_b = len(pair.labels) - 1
        n_tl = len(book_problem.columns[0].labels) - 1
        n_tr = len(book_problem.columns[1].labels) - 1
        assert pair.f4.shape == (n_b, n_tl, n_tr, 4)
        for row, f5 in pair.f5.items():
            left = book_problem.cells[(row, 0)]
            right = book_problem.cells[(row, 1)]
            assert f5.shape == (n_b, len(left.labels) - 1, len(right.labels) - 1, 2)

    def test_stats(self, book_problem):
        stats = book_problem.stats()
        assert stats["cells_with_candidates"] == 6
        assert stats["avg_entity_candidates"] >= 1
        assert stats["avg_relation_candidates"] >= 1


class TestScoreFeatureConsistency:
    def test_graph_score_equals_weight_dot_features(self, book_problem):
        """graph.score(y) == w·Φ(y) for random assignments."""
        model = default_model()
        graph = build_factor_graph(book_problem, model)
        rng = random.Random(0)
        flat = model.as_flat()
        for _ in range(25):
            assignment = {}
            for name, variable in graph.variables.items():
                assignment[name] = rng.choice(variable.domain)
            phi = joint_feature_vector(book_problem, assignment)
            assert graph.score(assignment) == pytest.approx(
                float(flat @ phi), abs=1e-9
            )

    def test_all_na_scores_zero(self, book_problem):
        model = default_model()
        graph = build_factor_graph(book_problem, model)
        assignment = {name: NA for name in graph.variables}
        assert graph.score(assignment) == pytest.approx(0.0)
        assert np.all(joint_feature_vector(book_problem, assignment) == 0.0)

    def test_without_relations_graph_has_no_pairs(self, book_problem):
        model = default_model()
        graph = build_factor_graph(book_problem, model, with_relations=False)
        assert not any(name.startswith("b:") for name in graph.variables)
        assert not any(f.kind in ("phi4", "phi5") for f in graph.factors.values())

    def test_missing_variables_count_as_na(self, book_problem):
        phi = joint_feature_vector(book_problem, {})
        assert np.all(phi == 0.0)

    def test_unknown_label_ignored(self, book_problem):
        phi = joint_feature_vector(book_problem, {"e:0,0": "ent:never-heard-of"})
        assert np.all(phi == 0.0)


class TestProblemViaAnnotator:
    def test_numeric_column_gets_no_variables(self, world):
        annotator = TableAnnotator(world.annotator_view)
        table = Table(
            table_id="t",
            cells=[["Baker", "1999"], ["Evans", "2001"]],
            headers=["Name", "Year"],
        )
        problem = annotator.build_problem(table)
        assert 1 not in problem.columns
        assert (0, 1) not in problem.cells

    def test_max_column_pairs_cap(self, world, wiki_tables):
        annotator = TableAnnotator(world.annotator_view)
        problem = annotator.build_problem(wiki_tables[0].table)
        assert len(problem.pairs) <= annotator.config.max_column_pairs
