"""Tests for simple (Figure 2) and collective (Figure 11) inference."""

import itertools

import pytest

from repro.core.annotator import AnnotatorConfig, TableAnnotator
from repro.core.candidates import CandidateGenerator
from repro.core.inference import InferenceConfig, annotate_collective, map_assignment_of
from repro.core.model import default_model
from repro.core.problem import (
    FeatureComputer,
    build_factor_graph,
    build_problem,
)
from repro.core.simple_inference import annotate_simple
from repro.tables.model import Table


@pytest.fixture()
def book_table() -> Table:
    return Table(
        table_id="books",
        cells=[
            ["Relativity: The Special and the General Theory", "A. Einstein"],
            ["Uncle Albert and the Quantum Quest", "Russell Stannard"],
            ["The Time and Space of Uncle Albert", "Stannard"],
        ],
        headers=["Title", "Author"],
        context="books and authors",
    )


@pytest.fixture()
def book_problem(book_catalog, book_table):
    generator = CandidateGenerator(book_catalog, top_k_entities=5)
    features = FeatureComputer(book_catalog, default_model().mode, generator)
    return build_problem(book_table, generator, features)


def brute_force_best(problem, model, with_relations=True):
    graph = build_factor_graph(problem, model, with_relations=with_relations)
    names = list(graph.variables)
    best, best_score = None, float("-inf")
    for combo in itertools.product(*[graph.variables[n].domain for n in names]):
        assignment = dict(zip(names, combo))
        score = graph.score(assignment)
        if score > best_score:
            best, best_score = assignment, score
    return best, best_score


class TestSimpleInference:
    def test_figure1_scenario(self, book_problem):
        """The paper's Figure-1 example: titles resolve to books, authors to
        persons, despite 'Albert' appearing in book titles."""
        annotation = annotate_simple(book_problem, default_model())
        assert annotation.entity_of(0, 0) == "ent:relativity"
        assert annotation.entity_of(0, 1) == "ent:einstein"
        assert annotation.entity_of(1, 0) == "ent:uncle_albert"
        assert annotation.entity_of(1, 1) == "ent:stannard"
        assert annotation.entity_of(2, 1) == "ent:stannard"
        assert annotation.type_of(0) in ("type:book", "type:science_books")
        assert annotation.type_of(1) == "type:author"

    def test_matches_brute_force(self, book_problem):
        """Figure-2 inference is exact for the relation-free objective."""
        model = default_model()
        annotation = annotate_simple(book_problem, model)
        assignment = map_assignment_of(annotation)
        graph = build_factor_graph(book_problem, model, with_relations=False)
        _best, best_score = brute_force_best(
            book_problem, model, with_relations=False
        )
        assert graph.score(assignment) == pytest.approx(best_score, abs=1e-9)

    def test_diagnostics(self, book_problem):
        annotation = annotate_simple(book_problem, default_model())
        assert annotation.diagnostics["method"] == "simple"


class TestCollectiveInference:
    def test_matches_brute_force_on_small_problem(self, book_problem):
        """Message passing finds the exact MAP on this (loopy) problem."""
        model = default_model()
        annotation = annotate_collective(book_problem, model)
        assignment = map_assignment_of(annotation)
        graph = build_factor_graph(book_problem, model)
        _best, best_score = brute_force_best(book_problem, model)
        assert graph.score(assignment) == pytest.approx(best_score, abs=1e-6)

    def test_relation_recovered(self, book_problem):
        annotation = annotate_collective(book_problem, default_model())
        assert annotation.relation_of(0, 1) == "rel:wrote"

    def test_converges_within_few_iterations(self, book_problem):
        annotation = annotate_collective(book_problem, default_model())
        assert annotation.diagnostics["converged"]
        # the paper: "convergence was achieved within three iterations"
        assert annotation.diagnostics["iterations"] <= 5

    def test_without_relations_equals_simple(self, book_problem):
        """With bcc' variables disabled the schedule reduces to Figure 2."""
        model = default_model()
        config = InferenceConfig(with_relations=False)
        collective = annotate_collective(book_problem, model, config)
        simple = annotate_simple(book_problem, model)
        graph = build_factor_graph(book_problem, model, with_relations=False)
        assert graph.score(map_assignment_of(collective)) == pytest.approx(
            graph.score(map_assignment_of(simple)), abs=1e-9
        )

    def test_unary_bonus_changes_decision(self, book_problem):
        """Loss augmentation must be able to flip labels."""
        model = default_model()
        plain = annotate_collective(book_problem, model)
        space = book_problem.cells[(0, 0)]
        bonus = {
            space.variable_name: [
                0.0 if label is None else -100.0 for label in space.labels
            ]
        }
        augmented = annotate_collective(book_problem, model, unary_bonus=bonus)
        assert plain.entity_of(0, 0) == "ent:relativity"
        assert augmented.entity_of(0, 0) is None

    def test_collective_on_generated_tables_beats_chance(
        self, annotator, wiki_tables
    ):
        correct = total = 0
        for labeled in wiki_tables[:4]:
            annotation = annotator.annotate(labeled.table)
            for (row, column), truth in labeled.truth.cell_entities.items():
                total += 1
                correct += annotation.entity_of(row, column) == truth
        assert correct / total > 0.8


class TestAnnotatorFacade:
    def test_timing_recorded(self, world, wiki_tables):
        annotator = TableAnnotator(world.annotator_view)
        annotation = annotator.annotate(wiki_tables[0].table)
        timing = annotation.diagnostics["timing"]
        assert timing.total_seconds > 0
        assert timing.candidate_seconds + timing.inference_seconds == pytest.approx(
            timing.total_seconds, rel=1e-6
        )
        assert annotator.timings

    def test_simple_mode_config(self, world, wiki_tables):
        annotator = TableAnnotator(
            world.annotator_view, config=AnnotatorConfig(with_relations=False)
        )
        annotation = annotator.annotate(wiki_tables[0].table)
        assert annotation.relations == {}

    def test_unknown_baseline_rejected(self, world, wiki_tables):
        annotator = TableAnnotator(world.annotator_view)
        with pytest.raises(ValueError):
            annotator.annotate_with_baseline(wiki_tables[0].table, "nonsense")

    def test_every_column_annotated(self, annotator, wiki_tables):
        labeled = wiki_tables[0]
        annotation = annotator.annotate(labeled.table)
        assert set(annotation.columns) == set(range(labeled.table.n_columns))
