"""Tests for structured training."""

import numpy as np
import pytest

from repro.core.annotator import TableAnnotator
from repro.core.learning import StructuredTrainer, TrainingConfig, truth_assignment
from repro.core.model import AnnotationModel, default_model
from repro.eval.experiments import evaluate_annotation


class TestTruthAssignment:
    def test_maps_truth_onto_variables(self, annotator, wiki_tables):
        labeled = wiki_tables[0]
        problem = annotator.build_problem(labeled.table)
        gold = truth_assignment(problem, labeled.truth)
        for (row, column), space in problem.cells.items():
            name = space.variable_name
            assert name in gold
            assert gold[name] in space.labels

    def test_unreachable_truth_clamps_to_na(self, annotator, wiki_tables):
        import copy

        labeled = wiki_tables[0]
        problem = annotator.build_problem(labeled.table)
        truth = copy.deepcopy(labeled.truth)  # session fixture: never mutate
        # inject an impossible truth label
        some_cell = next(iter(problem.cells))
        truth.cell_entities[some_cell] = "ent:not-a-real-entity"
        gold = truth_assignment(problem, truth)
        assert gold[problem.cells[some_cell].variable_name] is None


class TestTrainingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(method="magic").validate()
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0).validate()
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=-1).validate()


class TestPerceptron:
    def test_training_improves_over_bad_weights(self, world, wiki_tables):
        """Start from deliberately broken weights; training must recover."""
        bad = AnnotationModel()  # all zeros: everything decodes to na
        annotator = TableAnnotator(world.annotator_view, model=bad)
        before = evaluate_annotation(
            world,
            _as_dataset(wiki_tables[:6]),
            bad,
            algorithms=("collective",),
        )["collective"].entity.accuracy
        trainer = StructuredTrainer(
            annotator, TrainingConfig(epochs=3, learning_rate=0.2, seed=1)
        )
        trained = trainer.train(wiki_tables[:6])
        after = evaluate_annotation(
            world,
            _as_dataset(wiki_tables[:6]),
            trained,
            algorithms=("collective",),
        )["collective"].entity.accuracy
        assert after > before
        assert after > 0.5

    def test_history_recorded(self, world, wiki_tables):
        annotator = TableAnnotator(world.annotator_view, model=default_model())
        trainer = StructuredTrainer(annotator, TrainingConfig(epochs=2))
        trainer.train(wiki_tables[:3])
        assert len(trainer.history) == 2
        assert all("hamming_loss" in entry for entry in trainer.history)

    def test_empty_training_set_rejected(self, world):
        annotator = TableAnnotator(world.annotator_view)
        trainer = StructuredTrainer(annotator)
        with pytest.raises(ValueError):
            trainer.train([])

    def test_determinism(self, world, wiki_tables):
        results = []
        for _ in range(2):
            annotator = TableAnnotator(world.annotator_view, model=default_model())
            trainer = StructuredTrainer(
                annotator, TrainingConfig(epochs=2, seed=42)
            )
            results.append(trainer.train(wiki_tables[:4]).as_flat())
        assert np.allclose(results[0], results[1])

    def test_model_written_back_to_annotator(self, world, wiki_tables):
        annotator = TableAnnotator(world.annotator_view, model=default_model())
        trainer = StructuredTrainer(annotator, TrainingConfig(epochs=1))
        trained = trainer.train(wiki_tables[:3])
        assert annotator.model is trained


class TestSSVM:
    def test_ssvm_trains(self, world, wiki_tables):
        annotator = TableAnnotator(world.annotator_view, model=default_model())
        trainer = StructuredTrainer(
            annotator,
            TrainingConfig(epochs=2, method="ssvm", regularization=1e-2, seed=3),
        )
        trained = trainer.train(wiki_tables[:4])
        scores = evaluate_annotation(
            world,
            _as_dataset(wiki_tables[:4]),
            trained,
            algorithms=("collective",),
        )["collective"]
        assert scores.entity.accuracy > 0.7


def _as_dataset(tables):
    from repro.eval.datasets import EvalDataset
    from repro.tables.generator import NoiseProfile

    return EvalDataset(name="adhoc", tables=tables, noise=NoiseProfile.WIKI)
