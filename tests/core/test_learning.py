"""Tests for structured training."""

import numpy as np
import pytest

from repro.core.annotator import TableAnnotator
from repro.core.learning import StructuredTrainer, TrainingConfig, truth_assignment
from repro.core.model import AnnotationModel, default_model
from repro.eval.experiments import evaluate_annotation


class TestTruthAssignment:
    def test_maps_truth_onto_variables(self, annotator, wiki_tables):
        labeled = wiki_tables[0]
        problem = annotator.build_problem(labeled.table)
        gold = truth_assignment(problem, labeled.truth)
        for (_row, _column), space in problem.cells.items():
            name = space.variable_name
            assert name in gold
            assert gold[name] in space.labels

    def test_unreachable_truth_clamps_to_na(self, annotator, wiki_tables):
        import copy

        labeled = wiki_tables[0]
        problem = annotator.build_problem(labeled.table)
        truth = copy.deepcopy(labeled.truth)  # session fixture: never mutate
        # inject an impossible truth label
        some_cell = next(iter(problem.cells))
        truth.cell_entities[some_cell] = "ent:not-a-real-entity"
        gold = truth_assignment(problem, truth)
        assert gold[problem.cells[some_cell].variable_name] is None


class TestTrainingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(method="magic").validate()
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0).validate()
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=-1).validate()


class TestPerceptron:
    def test_training_improves_over_bad_weights(self, world, wiki_tables):
        """Start from deliberately broken weights; training must recover."""
        bad = AnnotationModel()  # all zeros: everything decodes to na
        annotator = TableAnnotator(world.annotator_view, model=bad)
        before = evaluate_annotation(
            world,
            _as_dataset(wiki_tables[:6]),
            bad,
            algorithms=("collective",),
        )["collective"].entity.accuracy
        trainer = StructuredTrainer(
            annotator, TrainingConfig(epochs=3, learning_rate=0.2, seed=1)
        )
        trained = trainer.train(wiki_tables[:6])
        after = evaluate_annotation(
            world,
            _as_dataset(wiki_tables[:6]),
            trained,
            algorithms=("collective",),
        )["collective"].entity.accuracy
        assert after > before
        assert after > 0.5

    def test_history_recorded(self, world, wiki_tables):
        annotator = TableAnnotator(world.annotator_view, model=default_model())
        trainer = StructuredTrainer(annotator, TrainingConfig(epochs=2))
        trainer.train(wiki_tables[:3])
        assert len(trainer.history) == 2
        assert all("hamming_loss" in entry for entry in trainer.history)

    def test_empty_training_set_rejected(self, world):
        annotator = TableAnnotator(world.annotator_view)
        trainer = StructuredTrainer(annotator)
        with pytest.raises(ValueError):
            trainer.train([])

    def test_determinism(self, world, wiki_tables):
        results = []
        for _ in range(2):
            annotator = TableAnnotator(world.annotator_view, model=default_model())
            trainer = StructuredTrainer(
                annotator, TrainingConfig(epochs=2, seed=42)
            )
            results.append(trainer.train(wiki_tables[:4]).as_flat())
        assert np.allclose(results[0], results[1])

    def test_model_written_back_to_annotator(self, world, wiki_tables):
        annotator = TableAnnotator(world.annotator_view, model=default_model())
        trainer = StructuredTrainer(annotator, TrainingConfig(epochs=1))
        trained = trainer.train(wiki_tables[:3])
        assert annotator.model is trained


class TestAveraging:
    """Hand-computed check of averaged-perceptron weight accumulation.

    Two orthogonal single-cell examples, zero initial weights, lr=1,
    loss_cost=1, 2 epochs.  Epoch 1: both examples mispredict na (the
    Hamming bonus +1 on na beats the zero-weight entity score), each adds
    its f1 vector — w ends at x1+x2.  Epoch 2: both predict correctly
    (f1·w = 4 beats na's bonus 1), no updates.  The average must run over
    all 4 example steps — (x1 + (x1+x2) + 2·(x1+x2)) / 4, i.e. components
    {2.0, 1.5} — not over the 2 mistake rounds only, which would yield
    {2.0, 1.0} and over-weight the noisy early vectors.
    """

    @staticmethod
    def _single_cell_problem(table_id, text, entity_id, f1_row):
        from repro.core.candidates import CandidateEntity
        from repro.core.problem import CellSpace
        from repro.tables.model import Table

        table = Table(table_id=table_id, cells=[[text]])
        space = CellSpace(
            row=0,
            column=0,
            text=text,
            candidates=[CandidateEntity(entity_id=entity_id, retrieval_score=1.0)],
            labels=(None, entity_id),
            f1=np.array([f1_row], dtype=float),
        )
        from repro.core.problem import AnnotationProblem

        return AnnotationProblem(
            table=table, cells={(0, 0): space}, columns={}, pairs={}
        )

    def test_average_runs_over_every_example_step(self):
        from repro.core.annotator import AnnotatorConfig
        from repro.tables.model import LabeledTable, Table, TableTruth

        x1 = [2.0, 0.0, 0.0, 0.0, 0.0, 0.0]
        x2 = [0.0, 2.0, 0.0, 0.0, 0.0, 0.0]
        problems = {
            "t1": self._single_cell_problem("t1", "alpha", "ent:a", x1),
            "t2": self._single_cell_problem("t2", "beta", "ent:b", x2),
        }

        class StubAnnotator:
            """Duck-typed TableAnnotator: fixed problems, real config."""

            def __init__(self):
                self.model = AnnotationModel()  # all-zero weights
                self.config = AnnotatorConfig()

            def build_problem(self, table):
                return problems[table.table_id]

        labeled = [
            LabeledTable(
                table=problems[tid].table,
                truth=TableTruth(cell_entities={(0, 0): entity}),
            )
            for tid, entity in (("t1", "ent:a"), ("t2", "ent:b"))
        ]
        annotator = StubAnnotator()
        trainer = StructuredTrainer(
            annotator,
            TrainingConfig(epochs=2, learning_rate=1.0, loss_cost=1.0, seed=0),
        )
        trained = trainer.train(labeled)

        # epoch 1 makes 2 mistakes, epoch 2 none
        assert trainer.history[0]["hamming_loss"] == 2.0
        assert trainer.history[1]["hamming_loss"] == 0.0
        # the example seen first contributes to 4 accumulated vectors, the
        # second to 3 — shuffle decides which is which, values are symmetric
        assert sorted(trained.w1[:2].tolist()) == [1.5, 2.0]
        assert np.all(trained.w1[2:] == 0.0)
        # regression: mistake-only averaging would have produced {1.0, 2.0}
        assert 1.0 not in trained.w1[:2].tolist()


class TestSSVM:
    def test_ssvm_trains(self, world, wiki_tables):
        annotator = TableAnnotator(world.annotator_view, model=default_model())
        trainer = StructuredTrainer(
            annotator,
            TrainingConfig(epochs=2, method="ssvm", regularization=1e-2, seed=3),
        )
        trained = trainer.train(wiki_tables[:4])
        scores = evaluate_annotation(
            world,
            _as_dataset(wiki_tables[:4]),
            trained,
            algorithms=("collective",),
        )["collective"]
        assert scores.entity.accuracy > 0.7


def _as_dataset(tables):
    from repro.eval.datasets import EvalDataset
    from repro.tables.generator import NoiseProfile

    return EvalDataset(name="adhoc", tables=tables, noise=NoiseProfile.WIKI)
