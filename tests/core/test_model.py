"""Tests for the AnnotationModel weight container."""

import numpy as np
import pytest

from repro.core.features import TypeEntityFeatureMode
from repro.core.model import AnnotationModel, default_model


class TestShape:
    def test_default_zeros(self):
        model = AnnotationModel()
        assert model.as_flat().shape == (AnnotationModel.flat_size(),)
        assert np.all(model.as_flat() == 0.0)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            AnnotationModel(w1=np.zeros(3))

    def test_mode_string_coerced(self):
        model = AnnotationModel(mode="idf")
        assert model.mode is TypeEntityFeatureMode.IDF


class TestFlatRoundTrip:
    def test_round_trip(self):
        model = default_model()
        flat = model.as_flat()
        rebuilt = AnnotationModel.from_flat(flat, mode=model.mode)
        assert np.allclose(rebuilt.as_flat(), flat)
        assert np.allclose(rebuilt.w5, model.w5)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            AnnotationModel.from_flat(np.zeros(3))


class TestPersistence:
    def test_dict_round_trip(self):
        model = default_model(TypeEntityFeatureMode.INV_DIST)
        rebuilt = AnnotationModel.from_dict(model.to_dict())
        assert np.allclose(rebuilt.as_flat(), model.as_flat())
        assert rebuilt.mode is TypeEntityFeatureMode.INV_DIST

    def test_file_round_trip(self, tmp_path):
        model = default_model()
        path = tmp_path / "model.json"
        model.save(path)
        loaded = AnnotationModel.load(path)
        assert np.allclose(loaded.as_flat(), model.as_flat())

    def test_unsupported_version(self):
        payload = default_model().to_dict()
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            AnnotationModel.from_dict(payload)


class TestCopyAndDefaults:
    def test_copy_is_independent(self):
        model = default_model()
        clone = model.copy()
        clone.w1[0] = 99.0
        assert model.w1[0] != 99.0

    def test_default_priors_sensible(self):
        model = default_model()
        # similarity features positive, na-bias negative
        assert model.w1[0] > 0
        assert model.w1[-1] < 0
        assert model.w5[1] < 0  # functional violation penalised
