"""Tests for posterior marginal annotation confidences (sum-product)."""

import pytest

from repro.core.annotator import TableAnnotator
from repro.tables.model import Table


class TestAnnotationMarginals:
    def test_marginals_are_distributions(self, world, wiki_tables):
        annotator = TableAnnotator(world.annotator_view)
        marginals = annotator.marginals(wiki_tables[0].table)
        assert marginals
        for distribution in marginals.values():
            total = sum(distribution.values())
            assert total == pytest.approx(1.0, abs=1e-6)
            for probability in distribution.values():
                assert 0.0 <= probability <= 1.0

    def test_confident_cell_has_peaked_marginal(self, book_catalog):
        annotator = TableAnnotator(book_catalog)
        table = Table(
            table_id="t",
            cells=[
                ["Relativity: The Special and the General Theory", "A. Einstein"],
                ["Uncle Albert and the Quantum Quest", "Russell Stannard"],
            ],
            headers=["Title", "Author"],
        )
        marginals = annotator.marginals(table)
        cell = marginals["e:0,0"]
        assert max(cell, key=cell.get) == "ent:relativity"
        assert cell["ent:relativity"] > 0.8

    def test_ambiguous_cell_spreads_mass(self, world):
        annotator = TableAnnotator(world.annotator_view)
        # a bare shared surname with no disambiguating context
        table = Table(table_id="t", cells=[["Baker", "1999"]], headers=None)
        marginals = annotator.marginals(table)
        cell = marginals["e:0,0"]
        best_probability = max(cell.values())
        # many homonym candidates: no single entity should own the mass
        assert best_probability < 0.9

    def test_marginal_argmax_mostly_agrees_with_map(self, world, wiki_tables):
        annotator = TableAnnotator(world.annotator_view)
        table = wiki_tables[0].table
        annotation = annotator.annotate(table)
        marginals = annotator.marginals(table)
        agree = total = 0
        for (row, column), cell in annotation.cells.items():
            distribution = marginals.get(f"e:{row},{column}")
            if distribution is None:
                continue
            total += 1
            agree += max(distribution, key=distribution.get) == cell.entity_id
        assert total > 0
        assert agree / total > 0.9
