"""Tests for the Appendix-C graph-colouring reduction."""

import pytest

from repro.core.annotator import AnnotatorConfig, TableAnnotator
from repro.core.reductions import PI, build_coloring_instance

TRIANGLE = [("a", "b"), ("b", "c"), ("a", "c")]
PATH = [("a", "b"), ("b", "c")]


class TestConstruction:
    def test_catalog_shape(self):
        instance = build_coloring_instance(TRIANGLE, k=3)
        # |V|*K types, one entity per node, K(K-1) relations per arc
        assert len(instance.catalog.types) == 9
        assert len(instance.catalog.entities) == 3
        assert len(instance.catalog.relations) == 3 * 3 * 2
        assert instance.table.n_columns == 3
        assert instance.table.n_rows == 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            build_coloring_instance(TRIANGLE, k=0)


class TestIffProperty:
    def test_triangle_not_2_colorable(self):
        instance = build_coloring_instance(TRIANGLE, k=2)
        assert not instance.is_colorable()
        _best, score = instance.optimum()
        assert score < PI * len(instance.arcs)

    def test_triangle_3_colorable(self):
        instance = build_coloring_instance(TRIANGLE, k=3)
        assert instance.is_colorable()
        _best, score = instance.optimum()
        assert score == PI * len(instance.arcs)

    def test_path_2_colorable(self):
        instance = build_coloring_instance(PATH, k=2)
        assert instance.is_colorable()

    def test_objective_counts_properly_colored_arcs(self):
        instance = build_coloring_instance(PATH, k=2)
        assert instance.objective({"a": 0, "b": 0, "c": 0}) == 0.0
        assert instance.objective({"a": 0, "b": 1, "c": 0}) == 2 * PI


class TestMessagePassingOnHardFamily:
    def test_bp_solves_colorable_instance(self):
        """On a 3-colorable triangle the (approximate) collective inference
        should find a proper coloring via relation+type potentials.  Weak
        header hints break the instance's colour-permutation symmetry so the
        per-variable decode is consistent."""
        instance = build_coloring_instance(
            TRIANGLE, k=3, color_hints={"a": 0, "b": 1, "c": 2}
        )
        annotator = TableAnnotator(
            instance.catalog,
            config=AnnotatorConfig(
                max_type_candidates=16, max_column_pairs=6, max_iterations=20
            ),
        )
        annotation = annotator.annotate(instance.table)
        # every column must get one of its node's colour types
        coloring = {}
        for column, node in enumerate(instance.nodes):
            type_id = annotation.type_of(column)
            assert type_id in instance.node_types(node)
            coloring[node] = instance.node_types(node).index(type_id)
        # arcs should be properly coloured (BP found the optimum here)
        for u, v in instance.arcs:
            assert coloring[u] != coloring[v]
