"""Tests for the core subsystem."""
