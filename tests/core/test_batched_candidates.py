"""Equivalence tests: the batched candidate engine vs the scalar reference.

The contract of :mod:`repro.core.candidates_batched` is *identity*, not
approximation: identical ``Erc`` (ids, scores, ordering), identical ``Tc``
and ``Bcc'``, bit-identical feature blocks and byte-identical annotations —
on fixture corpora, on hypothesis-generated tables and on the numeric /
blank / unknown-cell edges.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annotator import AnnotatorConfig, TableAnnotator
from repro.core.candidates import CandidateGenerator
from repro.core.candidates_batched import (
    BatchedCandidateEngine,
    InternedCandidateTables,
)
from repro.core.model import default_model
from repro.pipeline.io import annotation_to_dict
from repro.tables.model import Table

TOP_K = 8


@pytest.fixture(scope="module")
def engines(world):
    scalar = TableAnnotator(
        world.annotator_view,
        model=default_model(),
        config=AnnotatorConfig(candidate_engine="scalar"),
    )
    batched = TableAnnotator(
        world.annotator_view,
        model=default_model(),
        config=AnnotatorConfig(candidate_engine="batched"),
    )
    return scalar, batched


def assert_problems_identical(scalar_problem, batched_problem):
    assert set(scalar_problem.cells) == set(batched_problem.cells)
    for key, scalar_space in scalar_problem.cells.items():
        batched_space = batched_problem.cells[key]
        assert scalar_space.labels == batched_space.labels
        assert [
            (c.entity_id, c.retrieval_score) for c in scalar_space.candidates
        ] == [
            (c.entity_id, c.retrieval_score) for c in batched_space.candidates
        ]
        assert np.array_equal(scalar_space.f1, batched_space.f1)
    assert set(scalar_problem.columns) == set(batched_problem.columns)
    for column, scalar_space in scalar_problem.columns.items():
        batched_space = batched_problem.columns[column]
        assert scalar_space.labels == batched_space.labels
        assert np.array_equal(scalar_space.f2, batched_space.f2)
        assert set(scalar_space.f3) == set(batched_space.f3)
        for row, grid in scalar_space.f3.items():
            assert np.array_equal(grid, batched_space.f3[row])
    assert set(scalar_problem.pairs) == set(batched_problem.pairs)
    for pair, scalar_space in scalar_problem.pairs.items():
        batched_space = batched_problem.pairs[pair]
        assert scalar_space.labels == batched_space.labels
        assert np.array_equal(scalar_space.f4, batched_space.f4)
        assert set(scalar_space.f5) == set(batched_space.f5)
        for row, grid in scalar_space.f5.items():
            assert np.array_equal(grid, batched_space.f5[row])


class TestFixtureEquivalence:
    def test_problems_identical_on_noisy_corpus(self, engines, web_tables):
        scalar, batched = engines
        for labeled in web_tables:
            assert_problems_identical(
                scalar.build_problem(labeled.table),
                batched.build_problem(labeled.table),
            )

    def test_annotations_byte_identical(self, engines, wiki_tables, web_tables):
        scalar, batched = engines
        for labeled in wiki_tables + web_tables:
            assert annotation_to_dict(
                batched.annotate(labeled.table)
            ) == annotation_to_dict(scalar.annotate(labeled.table))


class TestDirectQueries:
    """The three candidate queries compared engine-vs-engine directly."""

    @pytest.fixture(scope="class")
    def pair(self, world):
        scalar = CandidateGenerator(world.annotator_view, top_k_entities=TOP_K)
        return scalar, BatchedCandidateEngine(scalar)

    def test_cell_candidates_batch_matches_scalar(self, pair, world):
        scalar, batched = pair
        texts = []
        for entity in list(world.annotator_view.entities.all_entities())[:40]:
            texts.extend(entity.lemmas[:2])
        texts += ["", "   ", "1951", "85%", "3,000", "zzz qqq", "Baker", "baker "]
        batch = batched.cell_candidates_batch(texts)
        for text, candidates in zip(texts, batch):
            assert candidates == scalar.cell_candidates(text)

    def test_column_type_candidates_match(self, pair, world):
        scalar, batched = pair
        entities = list(world.annotator_view.entities.all_entities())
        columns = [
            [scalar.cell_candidates(entity.lemmas[0]) for entity in entities[i : i + 6]]
            for i in range(0, 60, 6)
        ]
        for column in columns:
            assert batched.column_type_candidates(
                column
            ) == scalar.column_type_candidates(column)
        # blank / empty columns
        assert batched.column_type_candidates([]) == []
        assert batched.column_type_candidates([[], []]) == []

    def test_relation_candidates_match(self, pair, world):
        scalar, batched = pair
        entities = list(world.annotator_view.entities.all_entities())
        lefts = [scalar.cell_candidates(e.lemmas[0]) for e in entities[:20]]
        rights = [scalar.cell_candidates(e.lemmas[-1]) for e in entities[20:40]]
        assert batched.relation_candidates(lefts, rights) == (
            scalar.relation_candidates(lefts, rights)
        )
        # memoised second pass must answer the same
        assert batched.relation_candidates(lefts, rights) == (
            scalar.relation_candidates(lefts, rights)
        )
        assert batched.relation_candidates([[]], [[]]) == []

    def test_unknown_entity_falls_back_to_scalar(self, pair, book_catalog):
        _scalar, batched = pair
        from repro.core.candidates import CandidateEntity

        from repro.catalog.errors import UnknownIdError

        ghost = [[CandidateEntity("ent:not-in-catalog", 1.0)]]
        with pytest.raises(UnknownIdError):
            # the scalar reference raises on unknown ids; the batched engine
            # must defer to it rather than silently answering
            batched.column_type_candidates(ghost)


class TestHypothesisTables:
    """Generated tables: arbitrary mixes of lemma, numeric and junk cells."""

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_generated_tables_identical(self, data, engines, world):
        scalar, batched = engines
        lemmas: list[str] = []
        for entity in list(world.annotator_view.entities.all_entities())[:60]:
            lemmas.extend(entity.lemmas)
        cell = st.one_of(
            st.sampled_from(lemmas),
            st.sampled_from(["", "  ", "1984", "12%", "3,000 km", "zzz qqq"]),
            st.text(
                alphabet="abz XYZ.',!0123456789", min_size=0, max_size=14
            ),
        )
        n_rows = data.draw(st.integers(min_value=1, max_value=5))
        n_columns = data.draw(st.integers(min_value=1, max_value=3))
        rows = data.draw(
            st.lists(
                st.lists(cell, min_size=n_columns, max_size=n_columns),
                min_size=n_rows,
                max_size=n_rows,
            )
        )
        headers = data.draw(
            st.lists(
                st.one_of(st.none(), cell),
                min_size=n_columns,
                max_size=n_columns,
            )
        )
        table = Table(
            table_id="hyp",
            cells=[list(row) for row in rows],
            headers=list(headers),
        )
        assert_problems_identical(
            scalar.build_problem(table), batched.build_problem(table)
        )
        assert annotation_to_dict(batched.annotate(table)) == (
            annotation_to_dict(scalar.annotate(table))
        )


class TestInternedTables:
    def test_state_round_trip(self, world):
        tables = InternedCandidateTables.from_catalog(world.annotator_view)
        state = tables.to_state()
        restored = InternedCandidateTables.from_state(state)
        state_again = restored.to_state()
        assert state["entity_ids"] == state_again["entity_ids"]
        assert state["type_ids"] == state_again["type_ids"]
        assert state["relation_ids"] == state_again["relation_ids"]
        for field in (
            "anc_offsets",
            "anc_flat",
            "type_specificity",
            "pair_keys",
            "pair_offsets",
            "pair_relations",
            "tuple_offsets",
            "tuple_keys_by_relation",
        ):
            assert np.array_equal(state[field], state_again[field]), field

    def test_restored_tables_drive_identical_engine(self, world, wiki_tables):
        generator = CandidateGenerator(world.annotator_view, top_k_entities=TOP_K)
        built = BatchedCandidateEngine(generator)
        restored = BatchedCandidateEngine(
            generator,
            tables=InternedCandidateTables.from_state(built.tables.to_state()),
        )
        table = wiki_tables[0].table
        texts = [
            table.cell(row, column)
            for row in range(table.n_rows)
            for column in range(table.n_columns)
        ]
        per_cell = built.cell_candidates_batch(texts)
        assert per_cell == restored.cell_candidates_batch(texts)
        column = per_cell[: table.n_rows]
        assert built.column_type_candidates(column) == (
            restored.column_type_candidates(column)
        )


class TestEngineKnob:
    def test_unknown_candidate_engine_rejected(self, world):
        with pytest.raises(ValueError, match="candidate engine"):
            TableAnnotator(
                world.annotator_view,
                config=AnnotatorConfig(candidate_engine="turbo"),
            )

    def test_batched_knob_wraps_prebuilt_scalar_generator(self, world):
        generator = CandidateGenerator(world.annotator_view)
        annotator = TableAnnotator(
            world.annotator_view, candidate_generator=generator
        )
        assert isinstance(annotator.candidate_generator, BatchedCandidateEngine)
        assert annotator.candidate_generator.scalar_generator is generator

    def test_scalar_knob_unwraps_batched_generator(self, world):
        generator = CandidateGenerator(world.annotator_view)
        engine = BatchedCandidateEngine(generator)
        annotator = TableAnnotator(
            world.annotator_view,
            config=AnnotatorConfig(candidate_engine="scalar"),
            candidate_generator=engine,
        )
        assert annotator.candidate_generator is generator

    def test_prebuilt_batched_engine_reused(self, world):
        engine = BatchedCandidateEngine(CandidateGenerator(world.annotator_view))
        annotator = TableAnnotator(
            world.annotator_view, candidate_generator=engine
        )
        assert annotator.candidate_generator is engine
