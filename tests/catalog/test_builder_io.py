"""Tests for the catalog builder and JSON round-tripping."""

import pytest

from repro.catalog.builder import CatalogBuilder
from repro.catalog.errors import UnknownIdError
from repro.catalog.io import (
    catalog_from_dict,
    catalog_to_dict,
    load_catalog_json,
    save_catalog_json,
)
from repro.catalog.types import ROOT_TYPE_ID


class TestBuilder:
    def test_declaration_order_does_not_matter(self):
        catalog = (
            CatalogBuilder()
            .type("child", "child", parents=["parent"])  # parent not yet declared
            .type("parent", "parent")
            .build()
        )
        assert catalog.types.is_subtype("child", "parent")

    def test_root_added_by_default(self):
        catalog = CatalogBuilder().type("a", "a").build()
        assert ROOT_TYPE_ID in catalog.types
        assert catalog.types.is_subtype("a", ROOT_TYPE_ID)

    def test_without_root(self):
        catalog = CatalogBuilder().without_root().type("a", "a").build()
        assert ROOT_TYPE_ID not in catalog.types

    def test_entity_with_unknown_type_rejected(self):
        builder = CatalogBuilder().entity("e", types=["type:missing"])
        with pytest.raises(UnknownIdError):
            builder.build()

    def test_fact_with_unknown_entity_rejected(self):
        builder = (
            CatalogBuilder()
            .type("t", "t")
            .relation("r", "t", "t")
            .fact("r", "ent:a", "ent:b")
        )
        with pytest.raises(UnknownIdError):
            builder.build()

    def test_full_build(self, book_catalog):
        assert book_catalog.relations.has_tuple(
            "rel:wrote", "ent:relativity", "ent:einstein"
        )
        assert book_catalog.is_instance("ent:einstein", "type:person")


class TestJsonRoundTrip:
    def test_dict_round_trip_preserves_everything(self, book_catalog):
        payload = catalog_to_dict(book_catalog)
        rebuilt = catalog_from_dict(payload)
        assert rebuilt.stats() == book_catalog.stats()
        assert rebuilt.types.parents("type:physicist") == book_catalog.types.parents(
            "type:physicist"
        )
        assert rebuilt.entities.lemmas("ent:einstein") == book_catalog.entities.lemmas(
            "ent:einstein"
        )
        assert rebuilt.relations.tuples("rel:wrote") == book_catalog.relations.tuples(
            "rel:wrote"
        )
        relation = rebuilt.relations.get("rel:wrote")
        assert relation.cardinality.value == "many_to_one"

    def test_file_round_trip(self, book_catalog, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog_json(book_catalog, path)
        loaded = load_catalog_json(path)
        assert loaded.stats() == book_catalog.stats()

    def test_unsupported_version_rejected(self, book_catalog):
        payload = catalog_to_dict(book_catalog)
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            catalog_from_dict(payload)

    def test_round_trip_of_synthetic_world(self, tiny_world, tmp_path):
        path = tmp_path / "world.json"
        save_catalog_json(tiny_world.full, path)
        loaded = load_catalog_json(path)
        assert loaded.stats() == tiny_world.full.stats()
        # spot-check a derived quantity survives the round trip
        some_type = "type:movie"
        assert loaded.entities_of_type(some_type) == tiny_world.full.entities_of_type(
            some_type
        )
