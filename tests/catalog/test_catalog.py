"""Tests for the Catalog facade: E(T), T(E), dist, relatedness, LCA, IDF."""

import math

import pytest

from repro.catalog.builder import CatalogBuilder
from repro.catalog.errors import UnknownIdError


@pytest.fixture()
def catalog():
    """Small hierarchy: entity > work > book > {novels_1950s, childrens};
    one book belongs to both leaf categories, one only to childrens."""
    return (
        CatalogBuilder(name="t")
        .type("work", "work")
        .type("book", "book", parents=["work"])
        .type("novels_1950s", "1950s novels", parents=["book"])
        .type("childrens", "children's novels", parents=["book"])
        .type("person", "person")
        .entity("b1", ["Book One"], types=["novels_1950s", "childrens"])
        .entity("b2", ["Book Two"], types=["childrens"])
        .entity("p1", ["Ann Author"], types=["person"])
        .relation("wrote", "book", "person", cardinality="many_to_one")
        .fact("wrote", "b1", "p1")
        .build()
    )


class TestDerivedSets:
    def test_entities_of_type_transitive(self, catalog):
        assert catalog.entities_of_type("childrens") == {"b1", "b2"}
        assert catalog.entities_of_type("book") == {"b1", "b2"}
        assert catalog.entities_of_type("work") == {"b1", "b2"}
        assert catalog.entities_of_type("person") == {"p1"}
        assert catalog.entities_of_type("novels_1950s") == {"b1"}

    def test_type_ancestors(self, catalog):
        ancestors = catalog.type_ancestors("b1")
        assert {"novels_1950s", "childrens", "book", "work"} <= ancestors
        assert "person" not in ancestors

    def test_is_instance(self, catalog):
        assert catalog.is_instance("b2", "book")
        assert not catalog.is_instance("b2", "novels_1950s")
        assert not catalog.is_instance("p1", "book")

    def test_unknown_ids_raise(self, catalog):
        with pytest.raises(UnknownIdError):
            catalog.entities_of_type("type:missing")
        with pytest.raises(UnknownIdError):
            catalog.type_ancestors("ent:missing")


class TestDistance:
    def test_distance_direct(self, catalog):
        assert catalog.distance("b1", "novels_1950s") == 1
        assert catalog.distance("b1", "book") == 2
        assert catalog.distance("b1", "work") == 3

    def test_distance_unreachable_is_inf(self, catalog):
        assert math.isinf(catalog.distance("p1", "book"))

    def test_distance_takes_shortest_of_multiple_parents(self, catalog):
        # b1 reaches book via either leaf; still 2
        assert catalog.distance("b1", "book") == 2

    def test_min_instance_distance(self, catalog):
        assert catalog.min_instance_distance("childrens") == 1
        assert catalog.min_instance_distance("book") == 2

    def test_min_instance_distance_empty_type(self):
        catalog = CatalogBuilder().type("lonely", "lonely").build()
        assert math.isinf(catalog.min_instance_distance("lonely"))


class TestRelatedness:
    def test_relatedness_full_overlap(self, catalog):
        # b2 in childrens; E(childrens) subset of E(book): overlap 1.0
        assert catalog.relatedness("b2", "book") == 1.0

    def test_relatedness_partial(self, catalog):
        # b2's parent childrens = {b1, b2}; E(novels_1950s) = {b1}: 0.5
        assert catalog.relatedness("b2", "novels_1950s") == 0.5

    def test_relatedness_zero_for_disjoint(self, catalog):
        assert catalog.relatedness("p1", "book") == 0.0

    def test_relatedness_min_over_parents(self, catalog):
        # b1 has parents novels_1950s ({b1}) and childrens ({b1, b2});
        # overlap with novels_1950s: 1/1 and 1/2 -> min 0.5
        assert catalog.relatedness("b1", "novels_1950s") == 0.5


class TestSpecificityAndLCA:
    def test_idf_specificity_monotone(self, catalog):
        specific = catalog.type_idf_specificity("novels_1950s")
        general = catalog.type_idf_specificity("book")
        assert specific > general

    def test_idf_specificity_of_universal_type_is_low(self, catalog):
        # 'work' and 'person' split all 3 entities
        assert catalog.type_idf_specificity("work") == pytest.approx(
            math.log(3 / 2)
        )

    def test_least_common_ancestors(self, catalog):
        assert catalog.least_common_ancestors(["novels_1950s", "childrens"]) == {
            "book"
        }
        assert catalog.least_common_ancestors(["childrens"]) == {"childrens"}
        assert catalog.least_common_ancestors([]) == set()

    def test_lca_disjoint_branches_empty_without_root(self, catalog):
        # builder added a root; person and book meet there
        result = catalog.least_common_ancestors(["book", "person"])
        assert result == {"type:entity"}


class TestCacheInvalidation:
    def test_mutation_invalidates_entity_cache(self, catalog):
        assert catalog.entities_of_type("childrens") == {"b1", "b2"}
        catalog.add_entity("b3", ["Book Three"], direct_types=["childrens"])
        assert catalog.entities_of_type("childrens") == {"b1", "b2", "b3"}

    def test_stats(self, catalog):
        stats = catalog.stats()
        assert stats["entities"] == 3
        assert stats["relations"] == 1
        assert stats["tuples"] == 1
        assert stats["types"] >= 5
