"""Hypothesis property tests on catalog invariants over random DAGs."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.catalog import Catalog
from repro.catalog.errors import CycleError
from repro.catalog.types import TypeHierarchy


def random_hierarchy(seed: int, n_types: int) -> TypeHierarchy:
    """A random DAG: edges only from later-created types to earlier ones,
    so acyclicity is guaranteed by construction."""
    rng = random.Random(seed)
    hierarchy = TypeHierarchy()
    for index in range(n_types):
        hierarchy.add_type(f"t{index}")
        for parent_index in range(index):
            if rng.random() < 0.3:
                hierarchy.add_subtype(f"t{index}", f"t{parent_index}")
    return hierarchy


@given(st.integers(min_value=0, max_value=5_000), st.integers(min_value=2, max_value=9))
@settings(max_examples=50, deadline=None)
def test_ancestor_descendant_duality(seed, n_types):
    """b in ancestors(a)  <=>  a in descendants(b)."""
    hierarchy = random_hierarchy(seed, n_types)
    for a in hierarchy:
        for b in hierarchy.ancestors(a):
            assert a in hierarchy.descendants(b)
    for b in hierarchy:
        for a in hierarchy.descendants(b):
            assert b in hierarchy.ancestors(a)


@given(st.integers(min_value=0, max_value=5_000), st.integers(min_value=2, max_value=9))
@settings(max_examples=50, deadline=None)
def test_is_subtype_matches_ancestors(seed, n_types):
    hierarchy = random_hierarchy(seed, n_types)
    for a in hierarchy:
        ancestors = hierarchy.ancestors(a, include_self=True)
        for b in hierarchy:
            assert hierarchy.is_subtype(a, b) == (b in ancestors)


@given(st.integers(min_value=0, max_value=5_000), st.integers(min_value=2, max_value=9))
@settings(max_examples=50, deadline=None)
def test_hops_up_consistent_with_reachability(seed, n_types):
    hierarchy = random_hierarchy(seed, n_types)
    for a in hierarchy:
        for b in hierarchy:
            hops = hierarchy.hops_up(a, b)
            if hierarchy.is_subtype(a, b):
                assert hops is not None
                assert hops >= 0
                if a != b:
                    assert hops >= 1
            else:
                assert hops is None


@given(st.integers(min_value=0, max_value=5_000), st.integers(min_value=3, max_value=9))
@settings(max_examples=50, deadline=None)
def test_minimal_elements_are_antichain_subset(seed, n_types):
    hierarchy = random_hierarchy(seed, n_types)
    rng = random.Random(seed + 1)
    subset = {t for t in hierarchy if rng.random() < 0.6}
    minimal = hierarchy.minimal_elements(subset)
    assert minimal <= subset
    # no member of the minimal set is an ancestor of another member
    for a in minimal:
        for b in minimal:
            if a != b:
                assert not hierarchy.is_subtype(a, b)
    # every member of the subset has some minimal element below-or-equal it
    for t in subset:
        assert any(hierarchy.is_subtype(m, t) for m in minimal)


@given(st.integers(min_value=0, max_value=5_000), st.integers(min_value=2, max_value=8))
@settings(max_examples=40, deadline=None)
def test_entities_of_type_monotone_up_the_dag(seed, n_types):
    """E(T_child) ⊆ E(T_parent) for every subtype edge."""
    hierarchy = random_hierarchy(seed, n_types)
    catalog = Catalog(types=hierarchy)
    rng = random.Random(seed + 2)
    type_ids = list(hierarchy)
    for index in range(10):
        direct = rng.sample(type_ids, k=rng.randint(1, min(2, len(type_ids))))
        catalog.entities.add_entity(f"e{index}", direct_types=tuple(direct))
    catalog.invalidate_caches()
    for child in hierarchy:
        for parent in hierarchy.ancestors(child):
            assert catalog.entities_of_type(child) <= catalog.entities_of_type(parent)


@given(st.integers(min_value=0, max_value=5_000))
@settings(max_examples=30, deadline=None)
def test_cycle_insertion_always_rejected(seed):
    hierarchy = random_hierarchy(seed, 6)
    # any edge from an ancestor down to a descendant would close a cycle
    for a in hierarchy:
        for b in hierarchy.ancestors(a):
            try:
                hierarchy.add_subtype(b, a)
                raised = False
            except CycleError:
                raised = True
            assert raised
