"""Tests for the redundant alias-category feature of the synthetic world."""

import pytest

from repro.catalog.synthetic import (
    SyntheticCatalogConfig,
    _paraphrase_lemma,
    generate_world,
)


@pytest.fixture(scope="module")
def alias_world():
    return generate_world(
        SyntheticCatalogConfig(
            seed=19,
            n_persons=80,
            n_movies=40,
            n_novels=24,
            n_albums=12,
            n_countries=8,
            n_clubs=6,
            alias_category_fraction=1.0,
        )
    )


class TestAliasCategories:
    def test_aliases_created(self, alias_world):
        aliases = [t for t in alias_world.full.types if t.endswith("_alias")]
        assert aliases

    def test_alias_shares_parents(self, alias_world):
        types = alias_world.full.types
        for alias in (t for t in types if t.endswith("_alias")):
            original = alias.removesuffix("_alias")
            assert types.parents(alias) == types.parents(original)

    def test_alias_extension_is_large_subset(self, alias_world):
        catalog = alias_world.full
        for alias in (t for t in catalog.types if t.endswith("_alias")):
            original = alias.removesuffix("_alias")
            alias_members = catalog.entities_of_type(alias)
            original_members = catalog.entities_of_type(original)
            assert alias_members <= original_members
            # default alias_member_prob 0.85 keeps the extensions close
            if len(original_members) >= 8:
                assert len(alias_members) >= 0.5 * len(original_members)

    def test_alias_lemma_is_paraphrase(self, alias_world):
        catalog = alias_world.full
        some_alias = next(t for t in catalog.types if t.endswith("_alias"))
        original = some_alias.removesuffix("_alias")
        alias_lemma = catalog.types.lemmas(some_alias)[0]
        original_lemma = catalog.types.lemmas(original)[0]
        assert alias_lemma != original_lemma
        # the paraphrase keeps the head tokens (shared vocabulary)
        assert set(original_lemma.lower().split()) & set(alias_lemma.lower().split())

    def test_disabled_by_default(self, tiny_world):
        assert not any(t.endswith("_alias") for t in tiny_world.full.types)


class TestParaphrase:
    def test_multi_token(self):
        assert _paraphrase_lemma("1990s films") == "films of the 1990s"
        assert _paraphrase_lemma("Veridian actors") == "actors of the Veridian"

    def test_single_token(self):
        assert _paraphrase_lemma("films") == "notable films"
