"""Unit tests for the type hierarchy DAG."""

import pytest

from repro.catalog.errors import CycleError, DuplicateIdError, UnknownIdError
from repro.catalog.types import ROOT_TYPE_ID, TypeHierarchy


@pytest.fixture()
def diamond() -> TypeHierarchy:
    """entity -> {work, person}; book under work; novel under book; also
    novel under award_winners to exercise multiple parents (a diamond)."""
    hierarchy = TypeHierarchy()
    for type_id in ("entity", "work", "person", "book", "novel", "award_winners"):
        hierarchy.add_type(type_id, lemmas=(type_id,))
    hierarchy.add_subtype("work", "entity")
    hierarchy.add_subtype("person", "entity")
    hierarchy.add_subtype("book", "work")
    hierarchy.add_subtype("novel", "book")
    hierarchy.add_subtype("award_winners", "work")
    hierarchy.add_subtype("novel", "award_winners")
    return hierarchy


class TestBasics:
    def test_add_and_get(self):
        hierarchy = TypeHierarchy()
        node = hierarchy.add_type("type:a", lemmas=("alpha", "a"))
        assert node.type_id == "type:a"
        assert hierarchy.get("type:a").lemmas == ("alpha", "a")
        assert "type:a" in hierarchy
        assert len(hierarchy) == 1

    def test_duplicate_type_rejected(self):
        hierarchy = TypeHierarchy()
        hierarchy.add_type("type:a")
        with pytest.raises(DuplicateIdError):
            hierarchy.add_type("type:a")

    def test_unknown_type_raises(self):
        hierarchy = TypeHierarchy()
        with pytest.raises(UnknownIdError):
            hierarchy.get("type:missing")
        with pytest.raises(UnknownIdError):
            hierarchy.parents("type:missing")

    def test_empty_type_id_rejected(self):
        hierarchy = TypeHierarchy()
        with pytest.raises(ValueError):
            hierarchy.add_type("")

    def test_add_lemmas_appends_without_duplicates(self):
        hierarchy = TypeHierarchy()
        hierarchy.add_type("type:a", lemmas=("alpha",))
        hierarchy.add_lemmas("type:a", ["beta", "alpha", "gamma"])
        assert hierarchy.lemmas("type:a") == ("alpha", "beta", "gamma")


class TestEdges:
    def test_parents_and_children(self, diamond):
        assert diamond.parents("book") == {"work"}
        assert diamond.children("work") == {"book", "award_winners"}
        assert diamond.parents("novel") == {"book", "award_winners"}

    def test_edge_to_unknown_rejected(self):
        hierarchy = TypeHierarchy()
        hierarchy.add_type("type:a")
        with pytest.raises(UnknownIdError):
            hierarchy.add_subtype("type:a", "type:missing")
        with pytest.raises(UnknownIdError):
            hierarchy.add_subtype("type:missing", "type:a")

    def test_self_loop_rejected(self):
        hierarchy = TypeHierarchy()
        hierarchy.add_type("type:a")
        with pytest.raises(CycleError):
            hierarchy.add_subtype("type:a", "type:a")

    def test_cycle_rejected(self, diamond):
        with pytest.raises(CycleError):
            diamond.add_subtype("entity", "novel")

    def test_remove_subtype(self, diamond):
        assert diamond.remove_subtype("novel", "award_winners") is True
        assert diamond.parents("novel") == {"book"}
        assert diamond.remove_subtype("novel", "award_winners") is False


class TestClosures:
    def test_ancestors(self, diamond):
        assert diamond.ancestors("novel") == {"book", "work", "award_winners", "entity"}
        assert diamond.ancestors("novel", include_self=True) >= {"novel"}
        assert diamond.ancestors("entity") == set()

    def test_descendants(self, diamond):
        assert diamond.descendants("work") == {"book", "novel", "award_winners"}
        assert diamond.descendants("novel") == set()

    def test_is_subtype_reflexive_transitive(self, diamond):
        assert diamond.is_subtype("novel", "novel")
        assert diamond.is_subtype("novel", "entity")
        assert diamond.is_subtype("novel", "award_winners")
        assert not diamond.is_subtype("entity", "novel")
        assert not diamond.is_subtype("person", "work")

    def test_hops_up_shortest_path(self, diamond):
        assert diamond.hops_up("novel", "novel") == 0
        assert diamond.hops_up("novel", "book") == 1
        # two paths to work: via book (2) and via award_winners (2)
        assert diamond.hops_up("novel", "work") == 2
        assert diamond.hops_up("novel", "entity") == 3
        assert diamond.hops_up("entity", "novel") is None

    def test_roots_and_leaves(self, diamond):
        assert diamond.roots() == {"entity"}
        assert diamond.leaves() == {"novel", "person"}


class TestRootAndOrder:
    def test_ensure_root_links_parentless(self):
        hierarchy = TypeHierarchy()
        hierarchy.add_type("a")
        hierarchy.add_type("b")
        root = hierarchy.ensure_root()
        assert root == ROOT_TYPE_ID
        assert hierarchy.parents("a") == {ROOT_TYPE_ID}
        assert hierarchy.parents("b") == {ROOT_TYPE_ID}

    def test_ensure_root_idempotent(self):
        hierarchy = TypeHierarchy()
        hierarchy.add_type("a")
        hierarchy.ensure_root()
        hierarchy.ensure_root()
        assert hierarchy.parents("a") == {ROOT_TYPE_ID}

    def test_topological_order_parents_first(self, diamond):
        order = diamond.topological_order()
        assert order.index("entity") < order.index("work")
        assert order.index("work") < order.index("book")
        assert order.index("book") < order.index("novel")
        assert order.index("award_winners") < order.index("novel")
        assert len(order) == 6

    def test_minimal_elements(self, diamond):
        assert diamond.minimal_elements({"entity", "work", "book"}) == {"book"}
        assert diamond.minimal_elements({"novel", "person"}) == {"novel", "person"}
        assert diamond.minimal_elements(set()) == set()
        # incomparable siblings both stay
        assert diamond.minimal_elements({"book", "award_winners"}) == {
            "book",
            "award_winners",
        }
