"""Tests for the synthetic world generator: determinism, structure, corruption."""

import pytest

from repro.catalog.io import catalog_to_dict
from repro.catalog.synthetic import (
    SyntheticCatalogConfig,
    SyntheticCatalogGenerator,
    generate_world,
)


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = SyntheticCatalogConfig(seed=42, n_persons=40, n_movies=20)
        world_a = generate_world(config)
        world_b = generate_world(config)
        assert catalog_to_dict(world_a.full) == catalog_to_dict(world_b.full)
        assert catalog_to_dict(world_a.annotator_view) == catalog_to_dict(
            world_b.annotator_view
        )

    def test_different_seed_different_world(self):
        world_a = generate_world(SyntheticCatalogConfig(seed=1, n_persons=40))
        world_b = generate_world(SyntheticCatalogConfig(seed=2, n_persons=40))
        assert catalog_to_dict(world_a.full) != catalog_to_dict(world_b.full)


class TestStructure:
    def test_sizes_respected(self, tiny_world):
        config = tiny_world.config
        persons = [
            e
            for e in tiny_world.full.entities.all_entities()
            if e.entity_id.startswith("ent:person:")
        ]
        assert len(persons) == config.n_persons
        assert len(tiny_world.full.entities_of_type("type:movie")) == config.n_movies

    def test_every_entity_has_type_and_lemma(self, tiny_world):
        for entity in tiny_world.full.entities.all_entities():
            assert entity.lemmas, entity.entity_id
            assert entity.direct_types, entity.entity_id

    def test_query_relations_exist_with_tuples(self, tiny_world):
        for relation_id in tiny_world.query_relations:
            assert relation_id in tiny_world.full.relations
            assert tiny_world.full.relations.tuple_count(relation_id) > 0

    def test_appendix_g_schemas(self, world):
        """The five search relations carry the paper's type signatures."""
        expected = {
            "rel:acted_in": ("type:movie", "type:actor"),
            "rel:directed": ("type:movie", "type:director"),
            "rel:wrote": ("type:novel", "type:novelist"),
            "rel:official_language": ("type:country", "type:language"),
            "rel:produced": ("type:movie", "type:producer"),
        }
        for relation_id, (subject_type, object_type) in expected.items():
            relation = world.full.relations.get(relation_id)
            assert relation.subject_type == subject_type
            assert relation.object_type == object_type

    def test_directed_is_functional(self, world):
        relation = world.full.relations.get("rel:directed")
        assert relation.cardinality.subject_functional
        for movie in world.full.relations.participating_subjects("rel:directed"):
            assert len(world.full.relations.objects_of("rel:directed", movie)) == 1

    def test_lemma_ambiguity_exists(self, world):
        """Several persons must share a surname lemma (the paper's 7-8
        candidates per cell depend on it)."""
        lemma_owners: dict[str, set[str]] = {}
        for entity in world.full.entities.all_entities():
            if not entity.entity_id.startswith("ent:person:"):
                continue
            for lemma in entity.lemmas:
                if " " not in lemma:
                    lemma_owners.setdefault(lemma, set()).add(entity.entity_id)
        shared = [owners for owners in lemma_owners.values() if len(owners) >= 2]
        assert shared, "no shared surname lemmas generated"

    def test_adaptations_share_titles(self, world):
        movie_titles = {
            world.full.entities.get(m).primary_lemma
            for m in world.full.entities_of_type("type:movie")
        }
        novel_titles = {
            world.full.entities.get(n).primary_lemma
            for n in world.full.entities_of_type("type:novel")
        }
        assert movie_titles & novel_titles, "no adaptation title collisions"

    def test_person_has_orthogonal_people_category(self, world):
        person = world.full.entities.get("ent:person:0000")
        assert any("_people" in t for t in person.direct_types)

    def test_spine_depth(self, world):
        some_actor = next(iter(world.full.entities_of_type("type:actor")))
        assert world.full.distance(some_actor, "type:entity") >= 4


class TestCorruption:
    def test_view_has_fewer_links_and_tuples(self, world):
        full_stats = world.full.stats()
        view_stats = world.annotator_view.stats()
        assert view_stats["tuples"] < full_stats["tuples"]
        full_links = sum(
            len(e.direct_types) for e in world.full.entities.all_entities()
        )
        view_links = sum(
            len(e.direct_types) for e in world.annotator_view.entities.all_entities()
        )
        assert view_links < full_links

    def test_view_keeps_every_entity_typed(self, world):
        for entity in world.annotator_view.entities.all_entities():
            assert entity.direct_types, entity.entity_id

    def test_view_same_entity_set(self, world):
        assert set(iter(world.full.entities)) == set(iter(world.annotator_view.entities))

    def test_zero_corruption_view_equals_full(self):
        config = SyntheticCatalogConfig(
            seed=5,
            n_persons=30,
            n_movies=15,
            drop_instance_link_prob=0.0,
            drop_subtype_link_prob=0.0,
            drop_tuple_prob=0.0,
        )
        world = generate_world(config)
        full = catalog_to_dict(world.full)
        view = catalog_to_dict(world.annotator_view)
        assert full["entities"] == view["entities"]
        assert full["facts"] == view["facts"]

    def test_full_catalog_untouched_by_corruption(self):
        heavy = SyntheticCatalogConfig(seed=5, drop_instance_link_prob=0.9)
        light = SyntheticCatalogConfig(seed=5, drop_instance_link_prob=0.0)
        assert catalog_to_dict(generate_world(heavy).full) == catalog_to_dict(
            generate_world(light).full
        )


class TestValidation:
    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            SyntheticCatalogGenerator(SyntheticCatalogConfig(drop_tuple_prob=1.5))

    def test_too_many_countries_rejected(self):
        with pytest.raises(ValueError):
            SyntheticCatalogGenerator(SyntheticCatalogConfig(n_countries=999))
