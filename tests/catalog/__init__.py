"""Tests for the catalog subsystem."""
