"""Unit tests for the relation store, including functionality violations."""

import pytest

from repro.catalog.errors import DuplicateIdError, UnknownIdError
from repro.catalog.relations import Cardinality, RelationStore


@pytest.fixture()
def store() -> RelationStore:
    relations = RelationStore()
    relations.add_relation(
        "rel:directed",
        "type:movie",
        "type:director",
        lemmas=["directed by"],
        cardinality=Cardinality.MANY_TO_ONE,
    )
    relations.add_relation("rel:acted_in", "type:movie", "type:actor")
    relations.add_tuple("rel:directed", "ent:m1", "ent:d1")
    relations.add_tuple("rel:directed", "ent:m2", "ent:d1")
    relations.add_tuple("rel:acted_in", "ent:m1", "ent:a1")
    relations.add_tuple("rel:acted_in", "ent:m1", "ent:a2")
    return relations


class TestCardinality:
    def test_subject_functional(self):
        assert Cardinality.MANY_TO_ONE.subject_functional
        assert Cardinality.ONE_TO_ONE.subject_functional
        assert not Cardinality.ONE_TO_MANY.subject_functional
        assert not Cardinality.MANY_TO_MANY.subject_functional

    def test_object_functional(self):
        assert Cardinality.ONE_TO_MANY.object_functional
        assert Cardinality.ONE_TO_ONE.object_functional
        assert not Cardinality.MANY_TO_ONE.object_functional

    def test_string_coercion(self):
        store = RelationStore()
        relation = store.add_relation("rel:x", "t1", "t2", cardinality="one_to_one")
        assert relation.cardinality is Cardinality.ONE_TO_ONE


class TestTuples:
    def test_has_tuple_and_counts(self, store):
        assert store.has_tuple("rel:directed", "ent:m1", "ent:d1")
        assert not store.has_tuple("rel:directed", "ent:d1", "ent:m1")
        assert store.tuple_count("rel:directed") == 2
        assert store.tuples("rel:acted_in") == {
            ("ent:m1", "ent:a1"),
            ("ent:m1", "ent:a2"),
        }

    def test_add_tuple_idempotent(self, store):
        store.add_tuple("rel:directed", "ent:m1", "ent:d1")
        assert store.tuple_count("rel:directed") == 2

    def test_objects_and_subjects_of(self, store):
        assert store.objects_of("rel:acted_in", "ent:m1") == {"ent:a1", "ent:a2"}
        assert store.subjects_of("rel:directed", "ent:d1") == {"ent:m1", "ent:m2"}
        assert store.objects_of("rel:directed", "ent:unknown") == frozenset()

    def test_participants(self, store):
        assert store.participating_subjects("rel:directed") == {"ent:m1", "ent:m2"}
        assert store.participating_objects("rel:directed") == {"ent:d1"}

    def test_relations_between(self, store):
        assert store.relations_between("ent:m1", "ent:d1") == {"rel:directed"}
        assert store.relations_between("ent:m1", "ent:a1") == {"rel:acted_in"}
        assert store.relations_between("ent:a1", "ent:m1") == frozenset()

    def test_remove_tuple(self, store):
        assert store.remove_tuple("rel:directed", "ent:m1", "ent:d1") is True
        assert not store.has_tuple("rel:directed", "ent:m1", "ent:d1")
        assert store.relations_between("ent:m1", "ent:d1") == frozenset()
        assert store.remove_tuple("rel:directed", "ent:m1", "ent:d1") is False

    def test_unknown_relation_raises(self, store):
        with pytest.raises(UnknownIdError):
            store.add_tuple("rel:missing", "a", "b")
        with pytest.raises(UnknownIdError):
            store.tuples("rel:missing")

    def test_duplicate_relation_rejected(self, store):
        with pytest.raises(DuplicateIdError):
            store.add_relation("rel:directed", "t", "u")


class TestFunctionality:
    def test_violation_for_many_to_one(self, store):
        # m1 already directed by d1; labelling (m1, other) contradicts it
        assert store.violates_functionality("rel:directed", "ent:m1", "ent:other")
        # the known tuple itself is not a violation
        assert not store.violates_functionality("rel:directed", "ent:m1", "ent:d1")
        # unseen subject: nothing known, nothing violated
        assert not store.violates_functionality("rel:directed", "ent:m9", "ent:d1")

    def test_no_violation_for_many_to_many(self, store):
        assert not store.violates_functionality("rel:acted_in", "ent:m1", "ent:a9")

    def test_object_side_violation(self):
        relations = RelationStore()
        relations.add_relation(
            "rel:capital_of", "type:city", "type:country", cardinality="one_to_many"
        )
        relations.add_tuple("rel:capital_of", "ent:c1", "ent:x")
        # country x already has capital c1: pairing x with c2 violates
        assert relations.violates_functionality("rel:capital_of", "ent:c2", "ent:x")
        assert not relations.violates_functionality("rel:capital_of", "ent:c1", "ent:x")
