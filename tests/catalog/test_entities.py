"""Unit tests for the entity store."""

import pytest

from repro.catalog.entities import Entity, EntityStore
from repro.catalog.errors import DuplicateIdError, UnknownIdError


class TestEntity:
    def test_primary_lemma(self):
        entity = Entity("ent:x", lemmas=("New York", "Big Apple"))
        assert entity.primary_lemma == "New York"

    def test_primary_lemma_falls_back_to_id(self):
        assert Entity("ent:x").primary_lemma == "ent:x"

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Entity("")


class TestEntityStore:
    def test_add_and_lookup(self):
        store = EntityStore()
        store.add_entity("ent:a", lemmas=["Alpha"], direct_types=["type:t"])
        assert "ent:a" in store
        assert store.lemmas("ent:a") == ("Alpha",)
        assert store.direct_types("ent:a") == ("type:t",)
        assert len(store) == 1
        assert list(store) == ["ent:a"]

    def test_duplicate_rejected(self):
        store = EntityStore()
        store.add_entity("ent:a")
        with pytest.raises(DuplicateIdError):
            store.add_entity("ent:a")

    def test_unknown_raises(self):
        store = EntityStore()
        with pytest.raises(UnknownIdError):
            store.get("ent:missing")

    def test_direct_instances_index(self):
        store = EntityStore()
        store.add_entity("ent:a", direct_types=["type:t"])
        store.add_entity("ent:b", direct_types=["type:t", "type:u"])
        assert store.direct_instances("type:t") == {"ent:a", "ent:b"}
        assert store.direct_instances("type:u") == {"ent:b"}
        assert store.direct_instances("type:none") == frozenset()

    def test_add_direct_type_updates_index(self):
        store = EntityStore()
        store.add_entity("ent:a", direct_types=["type:t"])
        store.add_direct_type("ent:a", "type:u")
        assert store.direct_types("ent:a") == ("type:t", "type:u")
        assert store.direct_instances("type:u") == {"ent:a"}
        # idempotent
        store.add_direct_type("ent:a", "type:u")
        assert store.direct_types("ent:a") == ("type:t", "type:u")

    def test_remove_direct_type(self):
        store = EntityStore()
        store.add_entity("ent:a", direct_types=["type:t", "type:u"])
        assert store.remove_direct_type("ent:a", "type:u") is True
        assert store.direct_types("ent:a") == ("type:t",)
        assert store.direct_instances("type:u") == frozenset()
        assert store.remove_direct_type("ent:a", "type:u") is False

    def test_add_lemmas_preserves_order_and_dedups(self):
        store = EntityStore()
        store.add_entity("ent:a", lemmas=["One"])
        store.add_lemmas("ent:a", ["Two", "One", "Three"])
        assert store.lemmas("ent:a") == ("One", "Two", "Three")

    def test_all_entities(self):
        store = EntityStore()
        store.add_entity("ent:a")
        store.add_entity("ent:b")
        assert [entity.entity_id for entity in store.all_entities()] == [
            "ent:a",
            "ent:b",
        ]
