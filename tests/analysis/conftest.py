"""Shared fixture helpers for the reprolint test suite.

Every test builds a tiny throwaway repo tree under ``tmp_path`` (so rule
path scoping — ``src/repro/...`` — behaves exactly as on the real tree)
and runs the analyzer over it.  Violating code lives in string literals,
which keeps the fixtures invisible to full-repo lint runs.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.runner import LintResult, run_lint


@pytest.fixture
def lint_tree(tmp_path):
    """``lint_tree({"src/repro/x.py": source, ...}) -> LintResult``."""

    counter = iter(range(1000))

    def _lint(files: dict[str, str]) -> LintResult:
        root = tmp_path / f"tree{next(counter)}"  # fresh root per call
        for rel_path, source in files.items():
            path = root / rel_path
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        return run_lint(root)

    return _lint


def rule_ids(result: LintResult) -> list[str]:
    return [finding.rule_id for finding in result.findings]


def repo_root() -> Path:
    return Path(__file__).resolve().parents[2]
