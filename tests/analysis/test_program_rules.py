"""Golden fixtures for the whole-program rule families: layer contract,
import cycles, interprocedural determinism taint, lock ordering and the
exception/config contracts.  Each family gets a true-positive fixture and
a structurally-similar clean one, so the rules stay anchored on real
violations rather than on incidental syntax.
"""

from __future__ import annotations

from tests.analysis.conftest import rule_ids

# ----------------------------------------------------------------------
# arch-layering / arch-import-cycle
# ----------------------------------------------------------------------


def test_upward_import_flagged(lint_tree):
    result = lint_tree(
        {
            "src/repro/serve/pool.py": "X = 1\n",
            "src/repro/core/thing.py": "from repro.serve.pool import X\n",
        }
    )
    assert rule_ids(result) == ["arch-layering"]
    finding = result.findings[0]
    assert finding.rel_path == "src/repro/core/thing.py"
    assert "foundation" in finding.message
    assert "frontends" in finding.message


def test_downward_import_clean(lint_tree):
    result = lint_tree(
        {
            "src/repro/core/thing.py": "X = 1\n",
            "src/repro/serve/pool.py": "from repro.core.thing import X\n",
        }
    )
    assert result.findings == []


def test_type_checking_import_exempt(lint_tree):
    result = lint_tree(
        {
            "src/repro/serve/pool.py": "X = 1\n",
            "src/repro/core/thing.py": """\
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.serve.pool import X
            """,
        }
    )
    assert result.findings == []


def test_lazy_upward_import_still_flagged_but_suppressible(lint_tree):
    source = """\
    def load():
        # reprolint: ignore[arch-layering]: deliberate lazy coupling,
        # mirrors the API's lazy use of the serve-owned bundle format
        from repro.serve.pool import X

        return X
    """
    result = lint_tree(
        {
            "src/repro/serve/pool.py": "X = 1\n",
            "src/repro/core/thing.py": source,
        }
    )
    assert result.findings == []
    assert result.suppressed_count == 1


def test_load_time_cycle_flagged(lint_tree):
    result = lint_tree(
        {
            "src/repro/core/a.py": "from repro.core.b import Y\nX = 1\n",
            "src/repro/core/b.py": "from repro.core.a import X\nY = 2\n",
        }
    )
    assert rule_ids(result) == ["arch-import-cycle"]
    assert "repro.core.a -> repro.core.b" in result.findings[0].message


def test_lazy_edge_breaks_cycle(lint_tree):
    result = lint_tree(
        {
            "src/repro/core/a.py": "from repro.core.b import Y\nX = 1\n",
            "src/repro/core/b.py": (
                "def get_x():\n    from repro.core.a import X\n\n    return X\n"
                "Y = 2\n"
            ),
        }
    )
    assert result.findings == []


# ----------------------------------------------------------------------
# det-taint-interproc (the interprocedural part; the intraprocedural
# fixture lives in test_rules.py)
# ----------------------------------------------------------------------


def test_wallclock_through_helper_into_key_flagged(lint_tree):
    result = lint_tree(
        {
            "src/repro/pipeline/keys.py": """\
            import time


            def stamp():
                return time.time()


            def cache_key(table):
                return (table.name, stamp())
            """
        }
    )
    assert rule_ids(result) == ["det-taint-interproc"]
    finding = result.findings[0]
    assert finding.line == 9
    assert "via keys.stamp()" in finding.message


def test_taint_survives_formatting_helper(lint_tree):
    # param->return summaries: the taint rides through a combining helper
    result = lint_tree(
        {
            "src/repro/pipeline/keys.py": """\
            import time


            def label(value):
                return "t=" + str(value)


            def cache_key(table):
                return (table.name, label(time.time()))
            """
        }
    )
    assert rule_ids(result) == ["det-taint-interproc"]


def test_perf_counter_timing_clean(lint_tree):
    # perf_counter is the sanctioned timing read — a timing field in a
    # wire payload must not be flagged
    result = lint_tree(
        {
            "src/repro/api/shapes.py": """\
            import time


            def respond(build, table):
                started = time.perf_counter()
                result = build(table)
                return AnnotateResponse(
                    result, timing=time.perf_counter() - started
                )
            """
        }
    )
    assert result.findings == []


def test_environ_into_digest_flagged(lint_tree):
    result = lint_tree(
        {
            "src/repro/pipeline/manifest.py": """\
            import hashlib
            import os


            def manifest_digest(payload):
                salt = os.environ["REPRO_SALT"]
                return hashlib.sha256(salt.encode() + payload).hexdigest()
            """
        }
    )
    assert rule_ids(result) == ["det-taint-interproc"]
    assert "os.environ" in result.findings[0].message


# ----------------------------------------------------------------------
# lock-order-cycle / lock-order-hold-wait
# ----------------------------------------------------------------------

_ABBA = """\
import threading


class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                return 1

    def backward(self):
        with self._b:
            with self._a:
                return 2
"""


def test_abba_cycle_flagged(lint_tree):
    result = lint_tree({"src/repro/serve/pair.py": _ABBA})
    assert rule_ids(result) == ["lock-order-cycle"]
    assert "ABBA" in result.findings[0].message


def test_consistent_order_clean(lint_tree):
    consistent = _ABBA.replace(
        "        with self._b:\n            with self._a:\n",
        "        with self._a:\n            with self._b:\n",
    )
    result = lint_tree({"src/repro/serve/pair.py": consistent})
    assert result.findings == []


def test_lock_scope_excludes_foundation(lint_tree):
    # the same ABBA shape outside serve/+api/ is out of scope
    result = lint_tree({"src/repro/core/pair.py": _ABBA})
    assert result.findings == []


def test_self_deadlock_through_callee_flagged(lint_tree):
    result = lint_tree(
        {
            "src/repro/serve/once.py": """\
            import threading


            class Once:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        return self.inner()

                def inner(self):
                    with self._lock:
                        return 1
            """
        }
    )
    assert rule_ids(result) == ["lock-order-cycle"]
    assert "re-acquired" in result.findings[0].message


def test_rlock_reentry_clean(lint_tree):
    result = lint_tree(
        {
            "src/repro/serve/once.py": """\
            import threading


            class Once:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        return self.inner()

                def inner(self):
                    with self._lock:
                        return 1
            """
        }
    )
    assert result.findings == []


def test_blocking_recv_under_lock_flagged(lint_tree):
    result = lint_tree(
        {
            "src/repro/serve/handle.py": """\
            import threading


            class Handle:
                def __init__(self, conn):
                    self._lock = threading.Lock()
                    self._conn = conn

                def call(self, payload):
                    with self._lock:
                        self._conn.send(payload)
                        return self._conn.recv()
            """
        }
    )
    assert rule_ids(result) == ["lock-order-hold-wait"]
    assert "recv()" in result.findings[0].message
    assert "Handle._lock" in result.findings[0].message


def test_recv_outside_lock_clean(lint_tree):
    result = lint_tree(
        {
            "src/repro/serve/handle.py": """\
            import threading


            class Handle:
                def __init__(self, conn):
                    self._lock = threading.Lock()
                    self._conn = conn

                def call(self, payload):
                    with self._lock:
                        self._conn.send(payload)
                    return self._conn.recv()
            """
        }
    )
    assert result.findings == []


def test_transitive_blocking_callee_flagged(lint_tree):
    result = lint_tree(
        {
            "src/repro/serve/handle.py": """\
            import threading


            class Handle:
                def __init__(self, conn):
                    self._lock = threading.Lock()
                    self._conn = conn

                def _round_trip(self, payload):
                    self._conn.send(payload)
                    return self._conn.recv()

                def call(self, payload):
                    with self._lock:
                        return self._round_trip(payload)
            """
        }
    )
    assert rule_ids(result) == ["lock-order-hold-wait"]
    assert "blocks internally" in result.findings[0].message


# ----------------------------------------------------------------------
# exc-unclassified / exc-unknown-code
# ----------------------------------------------------------------------

_ERRORS_FIXTURE = """\
VALIDATION_ERROR = "validation_error"
INTERNAL_ERROR = "internal_error"

HTTP_STATUS = {
    VALIDATION_ERROR: 400,
    INTERNAL_ERROR: 500,
    "io_error": 500,
}


class ApiError(Exception):
    def __init__(self, code, message):
        self.code = code
        self.message = message


class PipeError(Exception):
    pass


def to_api_error(error):
    if isinstance(error, ApiError):
        return error
    if isinstance(error, (OSError, PipeError)):
        return ApiError(INTERNAL_ERROR, str(error))
    return ApiError(INTERNAL_ERROR, str(error))
"""


def test_unclassified_raise_flagged(lint_tree):
    result = lint_tree(
        {
            "src/repro/api/errors.py": _ERRORS_FIXTURE,
            "src/repro/api/handlers.py": """\
            from repro.api.errors import ApiError


            class BundleMissing(Exception):
                pass


            def handle(payload):
                if payload is None:
                    raise BundleMissing("no payload")
                if "table" not in payload:
                    raise ApiError("validation_error", "missing table")
                return payload
            """,
        }
    )
    assert rule_ids(result) == ["exc-unclassified"]
    assert "BundleMissing" in result.findings[0].message


def test_classified_raises_clean(lint_tree):
    result = lint_tree(
        {
            "src/repro/api/errors.py": _ERRORS_FIXTURE,
            "src/repro/api/handlers.py": """\
            from repro.api.errors import ApiError, PipeError


            class BadTable(ApiError):
                pass


            def handle(payload):
                if payload is None:
                    raise PipeError("gone")      # isinstance-chain class
                if "table" not in payload:
                    raise BadTable("validation_error", "missing")
                if payload == {}:
                    raise OSError("empty")        # builtin in the chain
                raise NotImplementedError        # exempt control flow
            """,
        }
    )
    assert result.findings == []


def test_unknown_code_flagged(lint_tree):
    result = lint_tree(
        {
            "src/repro/api/errors.py": _ERRORS_FIXTURE,
            "src/repro/api/handlers.py": """\
            from repro.api.errors import ApiError


            def handle(payload):
                raise ApiError("bad_table_shape", "nope")
            """,
        }
    )
    assert rule_ids(result) == ["exc-unknown-code"]
    assert "bad_table_shape" in result.findings[0].message


def test_exc_rules_inert_without_taxonomy(lint_tree):
    # fixture trees without their own errors module stay quiet
    result = lint_tree(
        {
            "src/repro/api/handlers.py": """\
            def handle(payload):
                raise RuntimeError("boom")
            """
        }
    )
    assert result.findings == []


def test_exc_scope_excludes_foundation(lint_tree):
    result = lint_tree(
        {
            "src/repro/api/errors.py": _ERRORS_FIXTURE,
            "src/repro/core/thing.py": """\
            def load(path):
                raise RuntimeError("core raises are not wire-facing")
            """,
        }
    )
    assert result.findings == []


# ----------------------------------------------------------------------
# config-knob-drift
# ----------------------------------------------------------------------

_CONFIG_FIXTURE = """\
class SessionConfig:
    batch_size: int = 16
    secret_knob: int = 3
"""

_CLI_FIXTURE = 'FLAGS = ["--batch-size"]\n'

_OPERATIONS_FIXTURE = "| `--batch-size` | `batch_size` | 16 | tables |\n"


def test_unwired_knob_flagged(lint_tree):
    result = lint_tree(
        {
            "src/repro/api/config.py": _CONFIG_FIXTURE,
            "src/repro/cli.py": _CLI_FIXTURE,
            "docs/OPERATIONS.md": _OPERATIONS_FIXTURE,
        }
    )
    assert rule_ids(result) == ["config-knob-drift"]
    finding = result.findings[0]
    assert "SessionConfig.secret_knob" in finding.message
    assert "--secret-knob" in finding.message
    assert "docs/OPERATIONS.md" in finding.message


def test_wired_and_documented_knob_clean(lint_tree):
    result = lint_tree(
        {
            "src/repro/api/config.py": "class SessionConfig:\n"
            "    batch_size: int = 16\n",
            "src/repro/cli.py": _CLI_FIXTURE,
            "docs/OPERATIONS.md": _OPERATIONS_FIXTURE,
        }
    )
    assert result.findings == []


def test_seconds_suffix_flag_spelling_accepted(lint_tree):
    result = lint_tree(
        {
            "src/repro/api/config.py": "class ServeConfig:\n"
            "    shed_timeout_seconds: float = 2.0\n",
            "src/repro/cli.py": 'FLAGS = ["--shed-timeout"]\n',
            "docs/OPERATIONS.md": "| `--shed-timeout` | shed wait |\n",
        }
    )
    assert result.findings == []


def test_knob_rule_inert_without_cli_module(lint_tree):
    result = lint_tree({"src/repro/api/config.py": _CONFIG_FIXTURE})
    assert result.findings == []
