"""The two entry points — ``python -m repro.analysis`` (runner.main) and
the ``repro lint`` subcommand — and the JSON report shape CI consumes.
"""

from __future__ import annotations

import json

from repro.analysis.runner import main as analysis_main
from repro.cli import main as cli_main

_VIOLATING = "import random\n\ndef f():\n    return random.random()\n"
_CLEAN = "def f(rng):\n    return rng.random()\n"


def _tree(tmp_path, source):
    path = tmp_path / "src" / "repro" / "core" / "thing.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return tmp_path


def test_main_exit_codes(tmp_path, capsys):
    root = _tree(tmp_path, _VIOLATING)
    assert analysis_main(["--root", str(root)]) == 1
    assert "det-unseeded-random" in capsys.readouterr().out
    assert analysis_main(["--root", str(_tree(tmp_path, _CLEAN))]) == 0
    assert "reprolint: OK" in capsys.readouterr().out


def test_json_report_shape(tmp_path, capsys):
    root = _tree(tmp_path, _VIOLATING)
    assert analysis_main(["--root", str(root), "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["counts"]["new"] == 1
    assert document["counts"]["total"] == 1
    (finding,) = document["new_findings"]
    assert finding["rule"] == "det-unseeded-random"
    assert finding["path"] == "src/repro/core/thing.py"
    assert finding["severity"] == "error"


def test_write_baseline_then_gate_passes(tmp_path, capsys):
    root = _tree(tmp_path, _VIOLATING)
    assert analysis_main(["--root", str(root), "--write-baseline"]) == 0
    capsys.readouterr()
    assert analysis_main(["--root", str(root)]) == 0
    out = capsys.readouterr().out
    assert "(baselined)" in out
    assert "reprolint: OK" in out


def test_partial_run_skips_staleness(tmp_path, capsys):
    # lint a single file: baseline entries for unseen files must not count
    # as stale (a partial run cannot judge them)
    root = _tree(tmp_path, _VIOLATING)
    other = root / "src" / "repro" / "core" / "other.py"
    other.write_text(_VIOLATING, encoding="utf-8")
    assert analysis_main(["--root", str(root), "--write-baseline"]) == 0
    capsys.readouterr()
    assert analysis_main(["--root", str(root), str(other)]) == 0


def test_repro_lint_subcommand(tmp_path, capsys):
    root = _tree(tmp_path, _VIOLATING)
    assert cli_main(["lint", "--root", str(root)]) == 1
    assert "det-unseeded-random" in capsys.readouterr().out
    assert cli_main(["lint", "--list-rules"]) == 0
    listing = capsys.readouterr().out
    for rule_id in (
        "arch-layering",
        "arch-import-cycle",
        "det-unseeded-random",
        "det-taint-interproc",
        "det-unordered-iter",
        "exc-unclassified",
        "exc-unknown-code",
        "config-knob-drift",
        "lock-order-cycle",
        "lock-order-hold-wait",
        "lock-unguarded-attr",
        "np-missing-dtype",
        "np-scratch-escape",
        "wire-roundtrip-field",
        "bad-suppression",
        "unused-suppression",
    ):
        assert rule_id in listing
    assert "det-wallclock-key" not in listing  # replaced by the taint rule
