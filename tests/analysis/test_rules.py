"""Golden-fixture tests: each rule family on violating / clean / suppressed
source.  Fixture trees mirror the real path layout because every rule
scopes itself by ``rel_path``.
"""

from __future__ import annotations

from tests.analysis.conftest import rule_ids

# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------


def test_unseeded_random_flagged(lint_tree):
    result = lint_tree(
        {
            "src/repro/core/thing.py": """\
            import random
            import numpy as np

            def jitter():
                a = random.random()
                b = random.Random()
                c = np.random.rand(3)
                d = np.random.default_rng()
                return a, b, c, d
            """
        }
    )
    assert rule_ids(result) == ["det-unseeded-random"] * 4


def test_seeded_random_clean(lint_tree):
    result = lint_tree(
        {
            "src/repro/core/thing.py": """\
            import random
            import numpy as np

            def jitter(seed):
                rng = random.Random(seed)
                gen = np.random.default_rng(seed)
                return rng.random(), gen.random()
            """
        }
    )
    assert result.findings == []


def test_wallclock_in_cache_key_flagged(lint_tree):
    result = lint_tree(
        {
            "src/repro/pipeline/thing.py": """\
            import time

            def cache_key(table):
                return (table.name, time.time())

            def timestamp():
                return time.time()
            """
        }
    )
    # flagged inside cache_key, allowed inside timestamp
    assert rule_ids(result) == ["det-taint-interproc"]
    assert result.findings[0].line == 4


def test_unordered_iter_scoped_to_hot_modules(lint_tree):
    source = """\
    def plan(jobs):
        out = []
        for name, job in jobs.items():
            out.append((name, job))
        for name in sorted(jobs.keys()):
            out.append(name)
        return out
    """
    hot = lint_tree({"src/repro/pipeline/planner.py": source})
    assert rule_ids(hot) == ["det-unordered-iter"]
    assert hot.findings[0].line == 3  # the sorted() loop is clean
    cold = lint_tree({"src/repro/pipeline/other.py": source})
    assert cold.findings == []


# ----------------------------------------------------------------------
# lock discipline
# ----------------------------------------------------------------------

_LOCKED_CLASS = """\
import threading


class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []
        self._count = 0

    def add(self, item):
        with self._lock:
            self._items.append(item)
            self._count += 1

    def peek(self):
        return self._items[-1]
"""


def test_unguarded_access_flagged(lint_tree):
    result = lint_tree({"src/repro/core/box.py": _LOCKED_CLASS})
    assert rule_ids(result) == ["lock-unguarded-attr"]
    finding = result.findings[0]
    assert "Box._items" in finding.message
    assert finding.line == 16


def test_guarded_access_clean(lint_tree):
    clean = _LOCKED_CLASS.replace(
        "    def peek(self):\n        return self._items[-1]\n",
        "    def peek(self):\n"
        "        with self._lock:\n"
        "            return self._items[-1]\n",
    )
    result = lint_tree({"src/repro/core/box.py": clean})
    assert result.findings == []


def test_init_writes_exempt(lint_tree):
    # __init__ writes _items without the lock and must not be flagged
    result = lint_tree({"src/repro/core/box.py": _LOCKED_CLASS})
    assert all(finding.line != 7 for finding in result.findings)


def test_justified_suppression_accepted(lint_tree):
    suppressed = _LOCKED_CLASS.replace(
        "    def peek(self):\n        return self._items[-1]\n",
        "    def peek(self):\n"
        "        # reprolint: ignore[lock-unguarded-attr]: benign race,\n"
        "        # callers tolerate a stale snapshot\n"
        "        return self._items[-1]\n",
    )
    result = lint_tree({"src/repro/core/box.py": suppressed})
    assert result.findings == []
    assert result.suppressed_count == 1


def test_unjustified_suppression_rejected(lint_tree):
    suppressed = _LOCKED_CLASS.replace(
        "    def peek(self):\n        return self._items[-1]\n",
        "    def peek(self):\n"
        "        # reprolint: ignore[lock-unguarded-attr]\n"
        "        return self._items[-1]\n",
    )
    result = lint_tree({"src/repro/core/box.py": suppressed})
    assert rule_ids(result) == ["bad-suppression"]


def test_stale_suppression_flagged(lint_tree):
    result = lint_tree(
        {
            "src/repro/core/box.py": """\
            # reprolint: ignore[lock-unguarded-attr]: nothing here needs it
            X = 1
            """
        }
    )
    assert rule_ids(result) == ["unused-suppression"]


# ----------------------------------------------------------------------
# numpy contracts
# ----------------------------------------------------------------------


def test_missing_dtype_flagged_in_engine_module(lint_tree):
    source = """\
    import numpy as np

    def alloc(n):
        a = np.zeros(n)
        b = np.empty(n, dtype=np.float64)
        c = np.full(n, -np.inf)
        return a, b, c
    """
    engine = lint_tree({"src/repro/core/fused.py": source})
    assert rule_ids(engine) == ["np-missing-dtype"] * 2
    elsewhere = lint_tree({"src/repro/core/other.py": source})
    assert elsewhere.findings == []


def test_scratch_escape_flagged(lint_tree):
    result = lint_tree(
        {
            "src/repro/core/engine.py": """\
            class Engine:
                def _borrow(self, n):
                    return self._pool.take(n)

                def scores(self, n):
                    buf = self._borrow(n)
                    buf[:] = 1.0
                    return buf

                def stash(self, n, out):
                    buf = self._borrow(n)
                    out.append(buf)

                def safe(self, n):
                    buf = self._borrow(n)
                    return buf.copy()
            """
        }
    )
    assert rule_ids(result) == ["np-scratch-escape"] * 2
    assert [finding.line for finding in result.findings] == [8, 12]


# ----------------------------------------------------------------------
# wire schema
# ----------------------------------------------------------------------


def test_wire_field_missing_from_decoder_flagged(lint_tree):
    result = lint_tree(
        {
            "src/repro/api/shapes.py": """\
            from dataclasses import dataclass


            @dataclass
            class Msg:
                name: str
                score: float

                def to_json(self):
                    return {"name": self.name, "score": self.score}

                @classmethod
                def from_json(cls, data):
                    return cls(data["name"], 0.0)
            """
        }
    )
    # "score" appears in to_json but never (by any name) in from_json
    assert rule_ids(result) == ["wire-roundtrip-field"]
    assert "from_json" in result.findings[0].message


def test_wire_dynamic_decoder_clean(lint_tree):
    result = lint_tree(
        {
            "src/repro/api/shapes.py": """\
            import dataclasses
            from dataclasses import dataclass


            @dataclass
            class Msg:
                name: str
                score: float

                def to_json(self):
                    return {"name": self.name, "score": self.score}

                @classmethod
                def from_json(cls, data):
                    kwargs = {
                        f.name: data[f.name]
                        for f in dataclasses.fields(cls)
                    }
                    return cls(**kwargs)
            """
        }
    )
    assert result.findings == []


def test_non_wire_dataclass_ignored(lint_tree):
    result = lint_tree(
        {
            "src/repro/api/shapes.py": """\
            from dataclasses import dataclass


            @dataclass
            class Internal:
                name: str

                def to_json(self):
                    return {"name": self.name}
            """
        }
    )
    assert result.findings == []
