"""The ratchet: baseline split semantics, and the pin that keeps the
committed ``reprolint_baseline.json`` exactly equal to a fresh full-repo
run (entries leave when fixed, never quietly return).
"""

from __future__ import annotations

import json

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    baseline_document,
    load_baseline,
    split_findings,
    write_baseline,
)
from repro.analysis.runner import lint_with_baseline, run_lint
from tests.analysis.conftest import repo_root

_VIOLATING = """\
import random

def jitter():
    return random.random()
"""


def _tree(tmp_path, source=_VIOLATING):
    path = tmp_path / "src" / "repro" / "core" / "thing.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return tmp_path


def test_baseline_roundtrip(tmp_path):
    root = _tree(tmp_path)
    result = run_lint(root)
    assert len(result.findings) == 1
    baseline_path = root / DEFAULT_BASELINE_NAME
    write_baseline(baseline_path, result.findings)
    assert load_baseline(baseline_path) == {
        finding.key(): 1 for finding in result.findings
    }


def test_baselined_finding_is_old_not_new(tmp_path):
    root = _tree(tmp_path)
    write_baseline(root / DEFAULT_BASELINE_NAME, run_lint(root).findings)
    result = lint_with_baseline(root)
    assert result.ok
    assert result.new_findings == []
    assert len(result.old_findings) == 1


def test_new_finding_fails_gate(tmp_path):
    root = _tree(tmp_path)
    write_baseline(root / DEFAULT_BASELINE_NAME, run_lint(root).findings)
    # a second unseeded call is new: same rule+file, different context line
    _tree(tmp_path, _VIOLATING + "\n\ndef more():\n    return random.random()\n")
    result = lint_with_baseline(root)
    assert not result.ok
    assert len(result.new_findings) == 1
    assert len(result.old_findings) == 1


def test_fixed_finding_makes_baseline_stale(tmp_path):
    root = _tree(tmp_path)
    write_baseline(root / DEFAULT_BASELINE_NAME, run_lint(root).findings)
    _tree(tmp_path, "def jitter(rng):\n    return rng.random()\n")
    result = lint_with_baseline(root)
    assert not result.ok  # stale entries must be ratcheted out
    assert result.new_findings == []
    assert sum(result.stale_baseline.values()) == 1


def test_baseline_survives_line_drift(tmp_path):
    root = _tree(tmp_path)
    write_baseline(root / DEFAULT_BASELINE_NAME, run_lint(root).findings)
    # pushing the violation down the file must not create a "new" finding:
    # identity is (rule, path, stripped line), not the line number
    _tree(tmp_path, "X = 1\nY = 2\n\n\n" + _VIOLATING)
    result = lint_with_baseline(root)
    assert result.ok


def test_split_findings_counts_capacity(tmp_path):
    root = _tree(
        tmp_path,
        "import random\n\ndef f():\n"
        "    return random.random(), random.random()\n",
    )
    findings = run_lint(root).findings
    assert len(findings) == 2
    baseline = load_baseline_from_doc(findings[:1])
    old, new, stale = split_findings(findings, baseline)
    assert (len(old), len(new), len(stale)) == (1, 1, 0)


def load_baseline_from_doc(findings):
    from collections import Counter

    document = baseline_document(findings)
    return Counter(
        {
            (e["rule"], e["path"], e["context"]): e["count"]
            for e in document["findings"]
        }
    )


def test_committed_baseline_matches_fresh_run():
    """The committed file is byte-for-byte what --write-baseline emits now.

    This is the ratchet's anchor: any fixed finding forces the entry out of
    the committed file (stale), and any regression shows up as new — the
    baseline can never drift from reality.
    """
    root = repo_root()
    baseline_path = root / DEFAULT_BASELINE_NAME
    assert baseline_path.is_file(), "committed reprolint baseline is missing"
    result = lint_with_baseline(root)
    assert result.new_findings == [], [
        f.to_json() for f in result.new_findings
    ]
    assert not result.stale_baseline, dict(result.stale_baseline)
    committed = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert committed == baseline_document(result.findings)


def test_full_repo_lint_is_fast():
    # ISSUE acceptance: the full tree lints in well under ten seconds
    result = run_lint(repo_root())
    assert result.n_files > 100
    assert result.seconds < 10.0
