"""The whole-program layer itself: symbol/import/call-graph construction,
the ``--dump-graph`` artifact shape, the content-hash AST cache, the
``--changed-only`` reporting filter and the baseline rename re-key.
"""

from __future__ import annotations

import ast
import json
import subprocess
from collections import Counter

import pytest

from repro.analysis.baseline import split_findings
from repro.analysis.registry import Finding
from repro.analysis.runner import main as analysis_main
from repro.analysis.runner import run_lint
from repro.analysis.walker import DEFAULT_CACHE_DIRNAME
from tests.analysis.conftest import repo_root

_GRAPH_TREE = {
    "src/repro/core/model.py": """\
    class Table:
        def __init__(self, name):
            self.name = name

        def title(self):
            return self.name.upper()
    """,
    "src/repro/pipeline/run.py": """\
    from repro.core.model import Table


    def process(table: Table):
        return table.title()


    def build(name):
        table = Table(name)
        return process(table)
    """,
}


# ----------------------------------------------------------------------
# program construction
# ----------------------------------------------------------------------


def test_symbols_imports_and_calls_resolved(lint_tree):
    program = lint_tree(_GRAPH_TREE).program
    assert program is not None
    assert set(program.modules) == {"repro.core.model", "repro.pipeline.run"}
    assert "repro.core.model.Table" in program.classes
    assert "repro.core.model.Table.title" in program.functions

    edges = {(e.importer, e.target) for e in program.import_edges}
    assert ("repro.pipeline.run", "repro.core.model") in edges

    build = program.functions["repro.pipeline.run.build"]
    callees = {callee for _node, callee in program.calls_in(build) if callee}
    # constructing a class resolves to its __init__; the helper call by name
    assert "repro.core.model.Table.__init__" in callees
    assert "repro.pipeline.run.process" in callees

    # annotated parameter -> method call resolves across modules
    process = program.functions["repro.pipeline.run.process"]
    callees = {callee for _node, callee in program.calls_in(process) if callee}
    assert "repro.core.model.Table.title" in callees


def test_graph_export_shape(lint_tree):
    document = lint_tree(_GRAPH_TREE).program.to_json()
    assert document["version"] == 1
    by_name = {entry["name"]: entry for entry in document["modules"]}
    assert by_name["repro.core.model"]["layer"] == "foundation"
    assert by_name["repro.pipeline.run"]["layer"] == "orchestration"
    assert {
        "from": "repro.pipeline.run",
        "to": "repro.core.model",
        "line": 1,
        "top_level": True,
        "type_checking": False,
    } in document["imports"]
    call_pairs = {(call["from"], call["to"]) for call in document["calls"]}
    assert ("repro.pipeline.run.process", "repro.core.model.Table.title") in (
        call_pairs
    )


def test_dump_graph_flag_writes_artifact(tmp_path, capsys):
    path = tmp_path / "src" / "repro" / "core" / "thing.py"
    path.parent.mkdir(parents=True)
    path.write_text("X = 1\n", encoding="utf-8")
    artifact = tmp_path / "out" / "graph.json"
    assert analysis_main(
        ["--root", str(tmp_path), "--dump-graph", str(artifact)]
    ) == 0
    capsys.readouterr()
    document = json.loads(artifact.read_text(encoding="utf-8"))
    assert [entry["name"] for entry in document["modules"]] == [
        "repro.core.thing"
    ]


# ----------------------------------------------------------------------
# the AST cache
# ----------------------------------------------------------------------


def _write_tree(root, files):
    import textwrap

    for rel_path, source in files.items():
        path = root / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


def test_warm_run_skips_parsing(tmp_path, monkeypatch):
    _write_tree(tmp_path, _GRAPH_TREE)
    cache_dir = tmp_path / DEFAULT_CACHE_DIRNAME
    cold = run_lint(tmp_path, cache_dir=cache_dir)
    assert list(cache_dir.glob("*.pkl"))

    def _no_parse(*_args, **_kwargs):
        raise AssertionError("warm run must not call ast.parse")

    monkeypatch.setattr(ast, "parse", _no_parse)
    warm = run_lint(tmp_path, cache_dir=cache_dir)
    assert warm.n_files == cold.n_files
    assert [f.key() for f in warm.findings] == [f.key() for f in cold.findings]


def test_cache_invalidated_on_edit(tmp_path):
    _write_tree(tmp_path, {"src/repro/core/thing.py": "X = 1\n"})
    cache_dir = tmp_path / DEFAULT_CACHE_DIRNAME
    assert run_lint(tmp_path, cache_dir=cache_dir).findings == []
    (tmp_path / "src" / "repro" / "core" / "thing.py").write_text(
        "import random\n\ndef f():\n    return random.random()\n",
        encoding="utf-8",
    )
    result = run_lint(tmp_path, cache_dir=cache_dir)
    assert [f.rule_id for f in result.findings] == ["det-unseeded-random"]


def test_corrupt_cache_entry_falls_back_to_parsing(tmp_path):
    _write_tree(tmp_path, {"src/repro/core/thing.py": "X = 1\n"})
    cache_dir = tmp_path / DEFAULT_CACHE_DIRNAME
    run_lint(tmp_path, cache_dir=cache_dir)
    for entry in cache_dir.glob("*.pkl"):
        entry.write_bytes(b"not a pickle")
    result = run_lint(tmp_path, cache_dir=cache_dir)
    assert result.n_files == 1
    assert result.findings == []


def test_full_repo_warm_lint_under_ten_seconds(tmp_path):
    # ISSUE acceptance: whole-program lint in well under 10s warm
    cache_dir = tmp_path / "cache"
    cold = run_lint(repo_root(), cache_dir=cache_dir)
    warm = run_lint(repo_root(), cache_dir=cache_dir)
    assert warm.n_files == cold.n_files > 100
    assert warm.seconds < 10.0
    assert [f.key() for f in warm.findings] == [f.key() for f in cold.findings]


# ----------------------------------------------------------------------
# --changed-only
# ----------------------------------------------------------------------

_VIOLATING = "import random\n\ndef f():\n    return random.random()\n"


def _git(root, *args):
    subprocess.run(
        [
            "git",
            "-c",
            "user.email=test@test",
            "-c",
            "user.name=test",
            *args,
        ],
        cwd=root,
        check=True,
        capture_output=True,
    )


def test_changed_only_reports_only_touched_files(tmp_path, capsys):
    _write_tree(tmp_path, {"src/repro/core/committed.py": _VIOLATING})
    try:
        _git(tmp_path, "init")
    except (subprocess.CalledProcessError, FileNotFoundError):
        pytest.skip("git unavailable")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-m", "seed")
    _write_tree(tmp_path, {"src/repro/core/untracked.py": _VIOLATING})

    assert analysis_main(
        ["--root", str(tmp_path), "--changed-only", "--format", "json"]
    ) == 1
    document = json.loads(capsys.readouterr().out)
    paths = {entry["path"] for entry in document["new_findings"]}
    assert paths == {"src/repro/core/untracked.py"}

    # the committed file's finding is invisible until it is touched again
    (tmp_path / "src" / "repro" / "core" / "committed.py").write_text(
        _VIOLATING + "Y = 1\n", encoding="utf-8"
    )
    assert analysis_main(
        ["--root", str(tmp_path), "--changed-only", "--format", "json"]
    ) == 1
    document = json.loads(capsys.readouterr().out)
    paths = {entry["path"] for entry in document["new_findings"]}
    assert paths == {
        "src/repro/core/committed.py",
        "src/repro/core/untracked.py",
    }


def test_changed_only_outside_git_exits_two(tmp_path, capsys):
    _write_tree(tmp_path, {"src/repro/core/thing.py": "X = 1\n"})
    code = analysis_main(["--root", str(tmp_path), "--changed-only"])
    captured = capsys.readouterr()
    if code != 2:  # the tmp dir may sit inside an enclosing repo
        pytest.skip("tmp_path is inside a git repository")
    assert "error:" in captured.err


# ----------------------------------------------------------------------
# baseline rename re-key
# ----------------------------------------------------------------------


def _finding(rel_path, context, line=3):
    return Finding(
        rel_path=rel_path,
        line=line,
        col=0,
        rule_id="det-unseeded-random",
        severity="error",
        message="m",
        context=context,
    )


def test_moved_file_consumes_stale_capacity():
    baseline = Counter(
        {
            (
                "det-unseeded-random",
                "src/repro/core/old.py",
                "return random.random()",
            ): 1
        }
    )
    moved = _finding("src/repro/core/new.py", "return random.random()")
    old, new, stale = split_findings([moved], baseline)
    assert new == []
    assert old == [moved]
    assert not stale


def test_rekey_requires_matching_context():
    baseline = Counter(
        {
            (
                "det-unseeded-random",
                "src/repro/core/old.py",
                "return random.random()",
            ): 1
        }
    )
    different = _finding("src/repro/core/new.py", "x = random.random()")
    old, new, stale = split_findings([different], baseline)
    assert old == []
    assert new == [different]
    assert sum(stale.values()) == 1


def test_rekey_never_matches_empty_context():
    baseline = Counter({("det-unseeded-random", "src/repro/core/old.py", ""): 1})
    anonymous = _finding("src/repro/core/new.py", "")
    old, new, _stale = split_findings([anonymous], baseline)
    assert old == []
    assert new == [anonymous]
