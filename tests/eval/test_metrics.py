"""Tests (incl. hypothesis properties) for evaluation metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annotation import (
    CellAnnotation,
    ColumnAnnotation,
    RelationAnnotation,
    TableAnnotation,
)
from repro.eval.metrics import (
    MetricCounts,
    annotation_type_sets,
    average_precision,
    entity_accuracy,
    mean_average_precision,
    relation_f1,
    set_f1,
    type_f1,
)
from repro.tables.model import TableTruth


def make_annotation(cells=None, columns=None, relations=None) -> TableAnnotation:
    annotation = TableAnnotation(table_id="t")
    for (row, column), entity in (cells or {}).items():
        annotation.cells[(row, column)] = CellAnnotation(row, column, entity)
    for column, type_id in (columns or {}).items():
        annotation.columns[column] = ColumnAnnotation(column, type_id)
    for (left, right), label in (relations or {}).items():
        annotation.relations[(left, right)] = RelationAnnotation(left, right, label)
    return annotation


class TestEntityAccuracy:
    def test_correct_and_wrong(self):
        truth = TableTruth(cell_entities={(0, 0): "e1", (0, 1): "e2", (1, 0): None})
        annotation = make_annotation(cells={(0, 0): "e1", (0, 1): "wrong", (1, 0): None})
        counts = entity_accuracy(truth, annotation)
        assert counts.total == 3
        assert counts.correct == 2

    def test_na_mistakes_counted(self):
        """'including choosing na when ground truth was not na'"""
        truth = TableTruth(cell_entities={(0, 0): "e1"})
        annotation = make_annotation(cells={(0, 0): None})
        assert entity_accuracy(truth, annotation).correct == 0

    def test_missing_prediction_is_na(self):
        truth = TableTruth(cell_entities={(0, 0): "e1", (0, 1): None})
        annotation = make_annotation()
        counts = entity_accuracy(truth, annotation)
        assert counts.total == 2
        assert counts.correct == 1  # the na slot

    def test_slots_without_truth_skipped(self):
        truth = TableTruth(cell_entities={(0, 0): "e1"})
        annotation = make_annotation(cells={(0, 0): "e1", (5, 5): "extra"})
        assert entity_accuracy(truth, annotation).total == 1


class TestSetF1:
    def test_perfect(self):
        assert set_f1({"a"}, {"a"}) == 1.0
        assert set_f1(set(), set()) == 1.0

    def test_disjoint(self):
        assert set_f1({"a"}, {"b"}) == 0.0
        assert set_f1(set(), {"b"}) == 0.0
        assert set_f1({"a"}, set()) == 0.0

    def test_partial(self):
        # predicted 2, truth 1, overlap 1: P=0.5 R=1 F1=2/3
        assert set_f1({"a", "b"}, {"a"}) == pytest.approx(2 / 3)

    @given(
        st.sets(st.sampled_from("abcdef"), max_size=4),
        st.sets(st.sampled_from("abcdef"), max_size=4),
    )
    @settings(max_examples=60)
    def test_range_and_symmetry(self, predicted, truth):
        value = set_f1(predicted, truth)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(set_f1(truth, predicted))


class TestTypeAndRelationF1:
    def test_type_f1_macro_average(self):
        truth = TableTruth(column_types={0: "t1", 1: None})
        predicted = {0: {"t1", "t2"}, 1: set()}
        counts = type_f1(truth, predicted)
        assert counts.f1_count == 2
        assert counts.mean_f1 == pytest.approx((2 / 3 + 1.0) / 2)

    def test_annotation_type_sets(self):
        annotation = make_annotation(columns={0: "t1", 1: None})
        assert annotation_type_sets(annotation) == {0: {"t1"}, 1: set()}

    def test_relation_f1(self):
        truth = TableTruth(relations={(0, 1): "r1", (0, 2): None})
        annotation = make_annotation(relations={(0, 1): "r1", (0, 2): "wrong"})
        counts = relation_f1(truth, annotation)
        assert counts.mean_f1 == pytest.approx(0.5)
        assert counts.correct == 1

    def test_reversed_label_must_match_exactly(self):
        truth = TableTruth(relations={(0, 1): "r1^-1"})
        annotation = make_annotation(relations={(0, 1): "r1"})
        assert relation_f1(truth, annotation).mean_f1 == 0.0


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision(["a", "b"], {"a", "b"}) == 1.0

    def test_relevant_at_bottom(self):
        # relevant at rank 2 of 2: AP = (1/2)/1
        assert average_precision(["x", "a"], {"a"}) == pytest.approx(0.5)

    def test_missing_relevant_lowers_ap(self):
        assert average_precision(["a"], {"a", "b"}) == pytest.approx(0.5)

    def test_duplicates_ignored(self):
        assert average_precision(["a", "a", "b"], {"a", "b"}) == 1.0

    def test_empty_cases(self):
        assert average_precision([], {"a"}) == 0.0
        assert average_precision(["a"], set()) == 0.0

    def test_map_averages(self):
        pairs = [(["a"], {"a"}), (["x"], {"a"})]
        assert mean_average_precision(pairs) == pytest.approx(0.5)
        assert mean_average_precision([]) == 0.0

    @given(
        st.lists(st.sampled_from("abcdefgh"), max_size=8, unique=True),
        st.sets(st.sampled_from("abcdefgh"), min_size=1, max_size=4),
    )
    @settings(max_examples=60)
    def test_ap_in_range(self, ranked, relevant):
        assert 0.0 <= average_precision(ranked, relevant) <= 1.0

    @given(st.sets(st.sampled_from("abcdefgh"), min_size=1, max_size=6))
    @settings(max_examples=30)
    def test_ideal_ranking_is_one(self, relevant):
        assert average_precision(sorted(relevant), relevant) == pytest.approx(1.0)


class TestMetricCounts:
    def test_merge(self):
        a = MetricCounts(correct=1, total=2, f1_sum=0.5, f1_count=1)
        b = MetricCounts(correct=1, total=1, f1_sum=1.0, f1_count=1)
        a.merge(b)
        assert a.accuracy == pytest.approx(2 / 3)
        assert a.mean_f1 == pytest.approx(0.75)

    def test_empty(self):
        counts = MetricCounts()
        assert counts.accuracy == 0.0
        assert counts.mean_f1 == 0.0
