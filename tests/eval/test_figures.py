"""Tests for ASCII figure rendering."""

import pytest

from repro.eval.figures import bar, grouped_bar_chart


class TestBar:
    def test_full_and_empty(self):
        assert bar(1.0, 1.0, width=10) == "#" * 10
        assert bar(0.0, 1.0, width=10) == " " * 10

    def test_half(self):
        assert bar(0.5, 1.0, width=10) == "#" * 5 + " " * 5

    def test_clamps_above_maximum(self):
        assert bar(5.0, 1.0, width=10) == "#" * 10

    def test_negative_clamps_to_zero(self):
        assert bar(-1.0, 1.0, width=10) == " " * 10

    def test_zero_maximum(self):
        assert bar(0.5, 0.0, width=10) == " " * 10

    def test_constant_width(self):
        for value in (0.0, 0.3, 0.77, 1.0):
            assert len(bar(value, 1.0, width=16)) == 16


class TestGroupedBarChart:
    @pytest.fixture()
    def data(self):
        return {
            "actedIn": {"baseline": 0.04, "type": 0.22, "type_rel": 0.22},
            "directed": {"baseline": 0.09, "type": 0.43, "type_rel": 0.43},
        }

    def test_structure(self, data):
        chart = grouped_bar_chart(data, ("baseline", "type", "type_rel"))
        lines = chart.splitlines()
        # 2 groups x 3 bars + 1 blank between groups
        assert len(lines) == 7
        assert lines[0].startswith("actedIn")
        assert lines[1].startswith(" ")  # continuation rows unlabelled
        assert "|" in lines[0]

    def test_title(self, data):
        chart = grouped_bar_chart(data, ("baseline",), title="Figure 9")
        assert chart.splitlines()[0] == "Figure 9"

    def test_values_printed(self, data):
        chart = grouped_bar_chart(data, ("baseline", "type", "type_rel"))
        assert "0.43" in chart
        assert "0.04" in chart

    def test_longer_bars_for_larger_values(self, data):
        chart = grouped_bar_chart(data, ("baseline", "type"))
        lines = [line for line in chart.splitlines() if "|" in line]
        baseline_bar = lines[0].split("|")[1]
        type_bar = lines[1].split("|")[1]
        assert type_bar.count("#") > baseline_bar.count("#")

    def test_missing_series_rendered_as_zero(self):
        chart = grouped_bar_chart({"g": {"a": 1.0}}, ("a", "b"))
        lines = chart.splitlines()
        assert lines[1].split("|")[1].count("#") == 0

    def test_empty_groups(self):
        assert grouped_bar_chart({}, ("a",)) == ""

    def test_explicit_maximum(self):
        chart = grouped_bar_chart(
            {"g": {"a": 0.5}}, ("a",), maximum=1.0, width=10
        )
        assert "#####     " in chart
