"""Tests for dataset analogues and the search workload."""

from repro.eval.datasets import (
    DatasetSizes,
    build_standard_datasets,
    missing_link_fixture,
)
from repro.eval.workload import (
    build_search_corpus,
    build_search_workload,
    relevance_keys,
)


class TestDatasets:
    def test_four_datasets_with_right_shapes(self, datasets):
        assert set(datasets) == {
            "wiki_manual",
            "web_manual",
            "web_relations",
            "wiki_link",
        }
        assert len(datasets["wiki_manual"].tables) == 8
        assert len(datasets["wiki_link"].tables) == 10

    def test_wiki_manual_has_full_truth(self, datasets):
        labeled = datasets["wiki_manual"].tables[0]
        assert labeled.truth.cell_entities
        assert labeled.truth.column_types
        assert labeled.truth.relations

    def test_web_relations_stripped(self, datasets):
        for labeled in datasets["web_relations"].tables:
            assert labeled.truth.relations
            assert not labeled.truth.cell_entities
            assert not labeled.truth.column_types

    def test_wiki_link_stripped(self, datasets):
        for labeled in datasets["wiki_link"].tables:
            assert labeled.truth.cell_entities
            assert not labeled.truth.column_types

    def test_summary_shape(self, datasets):
        summary = datasets["wiki_manual"].summary()
        assert summary["tables"] == 8
        assert summary["avg_rows"] > 0
        assert summary["entity_annotations"] > 0

    def test_determinism(self, world):
        sizes = DatasetSizes(wiki_manual=3, web_manual=3, web_relations=2, wiki_link=3)
        a = build_standard_datasets(world, sizes)
        b = build_standard_datasets(world, sizes)
        assert [t.table.to_dict() for t in a["web_manual"].tables] == [
            t.table.to_dict() for t in b["web_manual"].tables
        ]

    def test_unique_ids_across_datasets(self, datasets):
        ids = [
            labeled.table_id
            for dataset in datasets.values()
            for labeled in dataset.tables
        ]
        assert len(ids) == len(set(ids))


class TestMissingLinkFixture:
    def test_fixture_shapes(self):
        full, broken, fixture = missing_link_fixture()
        assert full.is_instance(fixture.broken_entity, fixture.expected_type)
        assert not broken.is_instance(fixture.broken_entity, fixture.expected_type)
        assert len(fixture.column_cells) == 4


class TestWorkload:
    def test_queries_cover_all_relations(self, world):
        workload = build_search_workload(world, queries_per_relation=5, seed=1)
        relations = {query.relation_id for query in workload.queries}
        assert relations == set(world.query_relations)

    def test_relevant_sets_nonempty(self, world):
        workload = build_search_workload(world, queries_per_relation=5, seed=1)
        for query in workload.queries:
            assert workload.relevant[query]
            # relevance truth comes from the full catalog
            for subject in workload.relevant[query]:
                assert world.full.relations.has_tuple(
                    query.relation_id, subject, query.given_entity
                )

    def test_determinism(self, world):
        a = build_search_workload(world, queries_per_relation=4, seed=9)
        b = build_search_workload(world, queries_per_relation=4, seed=9)
        assert [q.given_entity for q in a.queries] == [q.given_entity for q in b.queries]

    def test_relevance_keys_include_lemmas(self, world):
        workload = build_search_workload(world, queries_per_relation=2, seed=2)
        query = workload.queries[0]
        keys = relevance_keys(world, workload.relevant[query])
        some_entity = next(iter(workload.relevant[query]))
        assert some_entity in keys
        lemma = world.full.entities.get(some_entity).primary_lemma.lower()
        assert lemma in keys


class TestSearchCorpus:
    def test_mixed_corpus(self, world):
        corpus = build_search_corpus(world, n_tables=10, seed=3)
        assert len(corpus) == 10
        prefixes = {labeled.table_id.split(":")[0] for labeled in corpus}
        assert prefixes == {"searchcorpus-wiki", "searchcorpus-web"}

    def test_single_noise_corpus(self, world):
        from repro.tables.generator import NoiseProfile

        corpus = build_search_corpus(world, n_tables=6, seed=3, noise=NoiseProfile.WIKI)
        assert len(corpus) == 6
