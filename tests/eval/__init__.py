"""Tests for the eval subsystem."""
