"""Tests for the report formatting helpers."""

from repro.eval.reporting import format_cell, format_table, percent


class TestFormatCell:
    def test_float_two_decimals(self):
        assert format_cell(3.14159) == "3.14"

    def test_int_passthrough(self):
        assert format_cell(42) == "42"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"

    def test_none(self):
        assert format_cell(None) == "None"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["A", "Long header"], [["xxxxxx", 1.0]])
        lines = text.splitlines()
        # header, separator, one row
        assert len(lines) == 3
        # all lines equal width segments: separator matches header width
        assert len(lines[1]) >= len("Long header")

    def test_title_optional(self):
        with_title = format_table(["A"], [["x"]], title="T")
        without_title = format_table(["A"], [["x"]])
        assert with_title.startswith("T\n")
        assert not without_title.startswith("T\n")

    def test_empty_rows(self):
        text = format_table(["A", "B"], [])
        assert "A" in text and "B" in text

    def test_wide_cell_stretches_column(self):
        text = format_table(["A"], [["a much longer cell value"]])
        header_line = text.splitlines()[0]
        assert len(header_line) >= len("a much longer cell value")


class TestPercent:
    def test_percent(self):
        import pytest

        assert percent(0.4323) == pytest.approx(43.23)
        assert percent(0.0) == 0.0
        assert percent(1.0) == 100.0
