"""Tests for the experiment runners (small-scale shape checks)."""

import pytest

from repro.core.features import TypeEntityFeatureMode
from repro.core.learning import TrainingConfig
from repro.core.model import default_model
from repro.eval.experiments import (
    build_annotated_index,
    candidate_statistics,
    evaluate_annotation,
    feature_ablation,
    search_map_experiment,
    threshold_sweep,
    timing_experiment,
    train_model,
)
from repro.eval.reporting import format_table, percent
from repro.eval.workload import build_search_corpus, build_search_workload


@pytest.fixture(scope="module")
def model():
    return default_model()


class TestFigure6Runner:
    def test_all_algorithms_scored(self, world, datasets, model):
        scores = evaluate_annotation(world, datasets["wiki_manual"], model)
        assert set(scores) == {"lca", "majority", "collective"}
        for algorithm_scores in scores.values():
            assert algorithm_scores.entity.total > 0
            assert algorithm_scores.type_.f1_count > 0

    def test_wiki_link_only_entities(self, world, datasets, model):
        scores = evaluate_annotation(
            world, datasets["wiki_link"], model, algorithms=("collective",)
        )
        collective = scores["collective"]
        assert collective.entity.total > 0
        assert collective.type_.f1_count == 0
        assert collective.relation.f1_count == 0

    def test_web_relations_only_relations(self, world, datasets, model):
        scores = evaluate_annotation(world, datasets["web_relations"], model)
        assert scores["collective"].relation.f1_count > 0
        assert scores["collective"].entity.total == 0
        # baselines get voting-based relation numbers too
        assert scores["majority"].relation.f1_count > 0


class TestThresholdSweep:
    def test_sweep_monotone_count(self, world, datasets, model):
        results = threshold_sweep(
            world,
            datasets["wiki_manual"],
            model,
            thresholds=(50.0, 75.0, 100.0),
        )
        assert set(results) == {50.0, 75.0, 100.0}
        for value in results.values():
            assert 0.0 <= value <= 1.0


class TestTimingRunner:
    def test_breakdown(self, world, datasets, model):
        report = timing_experiment(world, datasets["wiki_manual"].tables[:4], model)
        assert report.n_tables == 4
        assert report.mean_seconds > 0
        assert 0.0 < report.candidate_fraction < 1.0
        assert report.candidate_fraction + report.inference_fraction == pytest.approx(
            1.0
        )
        # the paper: candidate generation dominates, inference is small
        assert report.candidate_fraction > report.inference_fraction


class TestFeatureAblation:
    def test_modes_evaluated(self, world, datasets):
        results = feature_ablation(
            world,
            datasets["wiki_manual"].tables[:4],
            {"wiki_manual": datasets["wiki_manual"]},
            modes=(TypeEntityFeatureMode.INV_SQRT_DIST, TypeEntityFeatureMode.IDF),
            training=TrainingConfig(epochs=1),
        )
        assert set(results) == {"inv_sqrt_dist", "idf"}
        for per_dataset in results.values():
            assert "wiki_manual" in per_dataset
            assert 0.0 <= per_dataset["wiki_manual"]["entity_accuracy"] <= 1.0


class TestSearchRunner:
    def test_map_shape(self, world, model):
        corpus = build_search_corpus(world, n_tables=24, seed=77)
        index = build_annotated_index(world, corpus, model)
        workload = build_search_workload(world, queries_per_relation=3, seed=5)
        results = search_map_experiment(world, index, workload)
        assert "__all__" in results
        for row in results.values():
            assert set(row) == {"baseline", "type", "type_rel"}
            for value in row.values():
                assert 0.0 <= value <= 1.0
        # the paper's headline: annotations help
        overall = results["__all__"]
        assert overall["type_rel"] >= overall["baseline"]


class TestCandidateStats:
    def test_stats_shape(self, world, datasets):
        stats = candidate_statistics(world, datasets["wiki_manual"].tables[:4])
        assert stats["n_tables"] == 4
        assert stats["avg_entity_candidates"] > 1
        assert stats["avg_type_candidates"] > 1


class TestTraining:
    def test_train_model_runs(self, world, datasets):
        model = train_model(
            world,
            datasets["wiki_manual"].tables[:4],
            training=TrainingConfig(epochs=1),
        )
        assert model.as_flat().shape[0] == model.flat_size()


class TestReporting:
    def test_format_table(self):
        text = format_table(
            ["Dataset", "LCA", "Collective"],
            [["wiki", 8.63, 56.12], ["web", 15.16, 43.23]],
            title="Type accuracy",
        )
        assert "Type accuracy" in text
        assert "wiki" in text
        assert "56.12" in text
        lines = text.splitlines()
        assert len(lines) == 5

    def test_percent(self):
        assert percent(0.5) == 50.0
