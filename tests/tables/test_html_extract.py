"""Tests for HTML table extraction."""

from repro.tables.html_extract import extract_tables_from_html

SIMPLE_PAGE = """
<html><body>
<p>A list of physicists and their birthplaces appears below.</p>
<table>
  <tr><th>Name</th><th>Birthplace</th></tr>
  <tr><td>Albert Einstein</td><td>Ulm</td></tr>
  <tr><td>Isaac Newton</td><td>Woolsthorpe</td></tr>
  <tr><td>Marie Curie</td><td>Warsaw</td></tr>
</table>
</body></html>
"""


class TestExtraction:
    def test_basic_extraction(self):
        tables = extract_tables_from_html(SIMPLE_PAGE, screen_relational=False)
        assert len(tables) == 1
        table = tables[0]
        assert table.headers == ["Name", "Birthplace"]
        assert table.n_rows == 3
        assert table.cell(0, 0) == "Albert Einstein"

    def test_context_captured(self):
        tables = extract_tables_from_html(SIMPLE_PAGE, screen_relational=False)
        assert "physicists" in tables[0].context

    def test_source_recorded(self):
        tables = extract_tables_from_html(
            SIMPLE_PAGE, source="http://example.org", screen_relational=False
        )
        assert tables[0].source == "http://example.org"

    def test_relational_screen_applies(self):
        layout = "<table><tr><td>only</td><td></td></tr></table>"
        assert extract_tables_from_html(layout) == []

    def test_merged_cells_discarded(self):
        page = """
        <table>
          <tr><td colspan="2">merged</td></tr>
          <tr><td>a</td><td>b</td></tr>
        </table>
        """
        assert extract_tables_from_html(page, screen_relational=False) == []

    def test_rowspan_discarded(self):
        page = """
        <table>
          <tr><td rowspan="2">x</td><td>b</td></tr>
          <tr><td>c</td><td>d</td></tr>
        </table>
        """
        assert extract_tables_from_html(page, screen_relational=False) == []

    def test_irregular_grid_discarded(self):
        page = """
        <table>
          <tr><td>a</td><td>b</td></tr>
          <tr><td>c</td></tr>
        </table>
        """
        assert extract_tables_from_html(page, screen_relational=False) == []

    def test_outer_of_nested_tables_discarded_inner_kept(self):
        page = """
        <table>
          <tr><td><table><tr><td>inner</td><td>x</td></tr></table></td><td>y</td></tr>
          <tr><td>a</td><td>b</td></tr>
        </table>
        """
        tables = extract_tables_from_html(page, screen_relational=False)
        # the layout shell is dropped; the inner grid survives on its own
        assert len(tables) == 1
        assert tables[0].cells == [["inner", "x"]]

    def test_multiple_tables_numbered(self):
        page = SIMPLE_PAGE + SIMPLE_PAGE.replace("Einstein", "Bohr")
        tables = extract_tables_from_html(
            page, screen_relational=False, id_prefix="page7"
        )
        assert [t.table_id for t in tables] == ["page7:0", "page7:1"]

    def test_headerless_table(self):
        page = """
        <table>
          <tr><td>a</td><td>b</td></tr>
          <tr><td>c</td><td>d</td></tr>
        </table>
        """
        tables = extract_tables_from_html(page, screen_relational=False)
        assert tables[0].headers is None

    def test_entities_unescaped(self):
        page = """
        <table>
          <tr><td>Tom &amp; Jerry</td><td>x</td></tr>
          <tr><td>a</td><td>b</td></tr>
        </table>
        """
        tables = extract_tables_from_html(page, screen_relational=False)
        assert tables[0].cell(0, 0) == "Tom & Jerry"

    def test_malformed_html_does_not_raise(self):
        page = "<table><tr><td>a<td>b</tr><tr><td>c</td><td>d</table>"
        # the stdlib parser is forgiving; just assert no exception
        extract_tables_from_html(page, screen_relational=False)

    def test_empty_page(self):
        assert extract_tables_from_html("") == []
        assert extract_tables_from_html("<p>no tables here</p>") == []
