"""Tests for the Web-table generator's structure and ground truth."""

import pytest

from repro.tables.generator import (
    NoiseProfile,
    TableGeneratorConfig,
    WebTableGenerator,
    base_relation,
    reversed_label,
)


class TestLabelHelpers:
    def test_reversed_label_round_trip(self):
        assert reversed_label("rel:x") == "rel:x^-1"
        assert reversed_label("rel:x^-1") == "rel:x"
        assert base_relation("rel:x^-1") == ("rel:x", True)
        assert base_relation("rel:x") == ("rel:x", False)


class TestGeneration:
    def test_determinism(self, world):
        config = TableGeneratorConfig(seed=33, n_tables=4)
        a = WebTableGenerator(world.full, config).generate()
        b = WebTableGenerator(world.full, config).generate()
        assert [x.table.to_dict() for x in a] == [y.table.to_dict() for y in b]
        assert [x.truth.to_dict() for x in a] == [y.truth.to_dict() for y in b]

    def test_table_count_and_ids(self, world):
        tables = WebTableGenerator(
            world.full, TableGeneratorConfig(seed=1, n_tables=5, id_prefix="z")
        ).generate()
        assert len(tables) == 5
        assert tables[0].table_id == "z:00000"
        assert len({t.table_id for t in tables}) == 5

    def test_rows_within_range(self, world):
        config = TableGeneratorConfig(seed=2, n_tables=8, rows_range=(4, 9))
        for labeled in WebTableGenerator(world.full, config).generate():
            assert labeled.table.n_rows <= 9
            assert labeled.table.n_rows >= 1

    def test_truth_covers_every_cell(self, wiki_tables):
        for labeled in wiki_tables:
            table = labeled.table
            for row in range(table.n_rows):
                for column in range(table.n_columns):
                    assert (row, column) in labeled.truth.cell_entities

    def test_truth_covers_every_column_and_pair(self, wiki_tables):
        for labeled in wiki_tables:
            n = labeled.table.n_columns
            assert set(labeled.truth.column_types) == set(range(n))
            expected_pairs = {(i, j) for i in range(n) for j in range(i + 1, n)}
            assert set(labeled.truth.relations) == expected_pairs

    def test_entity_truth_consistent_with_catalog(self, world, wiki_tables):
        """Non-na truth entities must be instances of the column's true type
        in the FULL catalog (the generator renders ground truth)."""
        for labeled in wiki_tables:
            for (_row, column), entity_id in labeled.truth.cell_entities.items():
                if entity_id is None:
                    continue
                column_type = labeled.truth.column_types[column]
                assert column_type is not None
                assert world.full.is_instance(entity_id, column_type)

    def test_relation_truth_consistent_with_catalog(self, world, wiki_tables):
        for labeled in wiki_tables:
            for (left, right), label in labeled.truth.relations.items():
                if label is None:
                    continue
                relation_id, reverse = base_relation(label)
                subject_col, object_col = (right, left) if reverse else (left, right)
                for row in range(labeled.table.n_rows):
                    subject = labeled.truth.cell_entities.get((row, subject_col))
                    object_ = labeled.truth.cell_entities.get((row, object_col))
                    if subject is None or object_ is None:
                        continue
                    assert world.full.relations.has_tuple(
                        relation_id, subject, object_
                    )

    def test_numeric_columns_marked_na(self, world):
        config = TableGeneratorConfig(seed=9, n_tables=12, numeric_column_prob=1.0)
        found_numeric = False
        for labeled in WebTableGenerator(world.full, config).generate():
            for column, type_id in labeled.truth.column_types.items():
                if type_id is None:
                    found_numeric = True
                    for row in range(labeled.table.n_rows):
                        assert labeled.truth.cell_entities[(row, column)] is None
                        assert labeled.table.cell(row, column).isdigit()
        assert found_numeric

    def test_unknown_cells_have_na_truth(self, world):
        config = TableGeneratorConfig(seed=4, n_tables=10, unknown_cell_prob=0.5)
        na_cells = 0
        for labeled in WebTableGenerator(world.full, config).generate():
            na_cells += sum(
                1 for entity in labeled.truth.cell_entities.values() if entity is None
            )
        assert na_cells > 0

    def test_scoped_tables_use_category_truth(self, world):
        config = TableGeneratorConfig(seed=6, n_tables=20, scoped_subject_prob=1.0)
        scoped = 0
        for labeled in WebTableGenerator(world.full, config).generate():
            for type_id in labeled.truth.column_types.values():
                if type_id is not None and type_id.startswith("type:cat:"):
                    scoped += 1
        assert scoped > 0

    def test_swap_produces_reversed_labels(self, world):
        config = TableGeneratorConfig(seed=8, n_tables=20, swap_columns_prob=1.0)
        reversed_found = False
        for labeled in WebTableGenerator(world.full, config).generate():
            for label in labeled.truth.relations.values():
                if label is not None and label.endswith("^-1"):
                    reversed_found = True
        assert reversed_found

    def test_no_eligible_relation_raises(self, world):
        with pytest.raises(ValueError):
            WebTableGenerator(
                world.full,
                TableGeneratorConfig(relations=("rel:nonexistent",)),
            )

    def test_noise_profiles_change_output(self, world):
        clean = WebTableGenerator(
            world.full, TableGeneratorConfig(seed=11, n_tables=3, noise=NoiseProfile.CLEAN)
        ).generate()
        noisy = WebTableGenerator(
            world.full, TableGeneratorConfig(seed=11, n_tables=3, noise=NoiseProfile.WEB)
        ).generate()
        assert [c.table.cells for c in clean] != [n.table.cells for n in noisy]

    def test_generate_one_with_custom_id(self, world):
        generator = WebTableGenerator(world.full, TableGeneratorConfig())
        labeled = generator.generate_one(seed=77, table_id="custom:1")
        assert labeled.table_id == "custom:1"
