"""Tests (incl. hypothesis properties) for the noise channels."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tables.noise import WEB_NOISE, WIKI_NOISE, NoiseModel


class TestChannels:
    def test_all_off_is_identity(self):
        model = NoiseModel()
        rng = random.Random(0)
        assert model.corrupt_cell("Albert Einstein", rng) == "Albert Einstein"
        assert model.corrupt_header("Title", rng) == "Title"

    def test_abbreviation(self):
        model = NoiseModel(abbreviation_prob=1.0)
        assert model.corrupt_cell("Albert Einstein", random.Random(0)) == "A. Einstein"

    def test_abbreviation_single_token_untouched(self):
        model = NoiseModel(abbreviation_prob=1.0)
        assert model.corrupt_cell("Einstein", random.Random(0)) == "Einstein"

    def test_token_drop_keeps_first(self):
        model = NoiseModel(token_drop_prob=1.0)
        result = model.corrupt_cell("Albert Middle Einstein", random.Random(1))
        tokens = result.split()
        assert tokens[0] == "Albert"
        assert len(tokens) == 2

    def test_case_mangle(self):
        model = NoiseModel(case_mangle_prob=1.0)
        result = model.corrupt_cell("Albert Einstein", random.Random(0))
        assert result in ("albert einstein", "ALBERT EINSTEIN")

    def test_junk_suffix(self):
        model = NoiseModel(junk_suffix_prob=1.0)
        result = model.corrupt_cell("Einstein", random.Random(0))
        assert result.startswith("Einstein")
        assert len(result) > len("Einstein")

    def test_header_drop(self):
        model = NoiseModel(header_drop_prob=1.0)
        assert model.corrupt_header("Title", random.Random(0)) is None

    def test_header_synonym(self):
        model = NoiseModel(header_synonym_prob=1.0)
        result = model.corrupt_header(
            "Title", random.Random(0), synonyms=("Film", "Movie")
        )
        assert result in ("Film", "Movie")

    def test_header_synonym_without_pool_keeps_header(self):
        model = NoiseModel(header_synonym_prob=1.0)
        assert model.corrupt_header("Title", random.Random(0)) == "Title"

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(typo_prob=2.0).validate()


class TestPresets:
    def test_presets_valid(self):
        WIKI_NOISE.validate()
        WEB_NOISE.validate()

    def test_web_noisier_than_wiki(self):
        assert WEB_NOISE.typo_prob > WIKI_NOISE.typo_prob
        assert WEB_NOISE.header_drop_prob > WIKI_NOISE.header_drop_prob


class TestProperties:
    @given(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Zs")),
            min_size=1,
            max_size=40,
        ),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=80)
    def test_corrupt_cell_never_empties_nonblank(self, text, seed):
        if not text.strip():
            return
        result = WEB_NOISE.corrupt_cell(text, random.Random(seed))
        assert result.strip()

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40)
    def test_determinism(self, seed):
        a = WEB_NOISE.corrupt_cell("Albert Einstein", random.Random(seed))
        b = WEB_NOISE.corrupt_cell("Albert Einstein", random.Random(seed))
        assert a == b

    @given(st.integers(min_value=0, max_value=2_000))
    @settings(max_examples=40)
    def test_typo_changes_at_most_locally(self, seed):
        model = NoiseModel(typo_prob=1.0)
        result = model.corrupt_cell("abcdefgh", random.Random(seed))
        assert abs(len(result) - len("abcdefgh")) <= 1
