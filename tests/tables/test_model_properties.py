"""Hypothesis property tests on the table model and truth serialisation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tables.model import LabeledTable, Table, TableTruth

cell_text = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd", "Zs")),
    max_size=20,
)

tables = st.integers(min_value=1, max_value=5).flatmap(
    lambda n_columns: st.builds(
        lambda rows, headers: Table(
            table_id="t",
            cells=rows,
            headers=headers,
        ),
        rows=st.lists(
            st.lists(cell_text, min_size=n_columns, max_size=n_columns),
            min_size=1,
            max_size=6,
        ),
        headers=st.one_of(
            st.none(),
            st.lists(
                st.one_of(st.none(), cell_text),
                min_size=n_columns,
                max_size=n_columns,
            ),
        ),
    )
)

entity_labels = st.one_of(st.none(), st.from_regex(r"ent:[a-z]{1,8}", fullmatch=True))


@given(tables)
@settings(max_examples=60, deadline=None)
def test_table_round_trip(table):
    rebuilt = Table.from_dict(table.to_dict())
    assert rebuilt == table


@given(tables)
@settings(max_examples=60, deadline=None)
def test_iter_cells_covers_grid(table):
    cells = list(table.iter_cells())
    assert len(cells) == table.n_rows * table.n_columns
    for row, column, text in cells:
        assert table.cell(row, column) == text


@given(
    st.dictionaries(
        st.tuples(
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=0, max_value=9),
        ),
        entity_labels,
        max_size=8,
    ),
    st.dictionaries(
        st.integers(min_value=0, max_value=9),
        st.one_of(st.none(), st.from_regex(r"type:[a-z]{1,8}", fullmatch=True)),
        max_size=4,
    ),
    st.dictionaries(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=5, max_value=9),
        ),
        st.one_of(st.none(), st.from_regex(r"rel:[a-z]{1,8}(\^-1)?", fullmatch=True)),
        max_size=4,
    ),
)
@settings(max_examples=60, deadline=None)
def test_truth_round_trip(cell_entities, column_types, relations):
    truth = TableTruth(
        cell_entities=cell_entities,
        column_types=column_types,
        relations=relations,
    )
    rebuilt = TableTruth.from_dict(truth.to_dict())
    assert rebuilt == truth


@given(tables)
@settings(max_examples=40, deadline=None)
def test_labeled_table_round_trip(table):
    labeled = LabeledTable(
        table=table,
        truth=TableTruth(cell_entities={(0, 0): "ent:x"}),
    )
    rebuilt = LabeledTable.from_dict(labeled.to_dict())
    assert rebuilt.table == table
    assert rebuilt.truth == labeled.truth
