"""Tests for table corpora and JSONL persistence."""

import pytest

from repro.tables.corpus import TableCorpus, load_corpus_jsonl, save_corpus_jsonl
from repro.tables.model import LabeledTable, Table, TableTruth


def make_table(table_id: str, rows: int = 2) -> Table:
    return Table(
        table_id=table_id,
        cells=[[f"a{r}", f"b{r}"] for r in range(rows)],
        headers=["A", "B"],
    )


class TestCorpus:
    def test_add_and_lookup(self):
        corpus = TableCorpus([make_table("t1"), make_table("t2")])
        assert len(corpus) == 2
        assert corpus.get("t1").table_id == "t1"
        assert "t2" in corpus
        assert corpus[1].table_id == "t2"

    def test_duplicate_rejected(self):
        corpus = TableCorpus([make_table("t1")])
        with pytest.raises(ValueError):
            corpus.add(make_table("t1"))

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            TableCorpus().get("nope")

    def test_plain_tables_wrapped(self):
        corpus = TableCorpus([make_table("t1")])
        assert isinstance(corpus[0], LabeledTable)
        assert corpus[0].truth == TableTruth()

    def test_filter(self):
        corpus = TableCorpus([make_table("t1", 2), make_table("t2", 5)])
        big = corpus.filter(lambda labeled: labeled.table.n_rows > 3)
        assert len(big) == 1
        assert big[0].table_id == "t2"

    def test_split(self):
        corpus = TableCorpus([make_table(f"t{i}") for i in range(5)])
        head, tail = corpus.split(2)
        assert len(head) == 2
        assert len(tail) == 3
        assert head[0].table_id == "t0"
        assert tail[0].table_id == "t2"

    def test_summary_counts(self):
        labeled = LabeledTable(
            table=make_table("t1", rows=4),
            truth=TableTruth(
                cell_entities={(0, 0): "e", (1, 0): None},
                column_types={0: "type:x"},
                relations={(0, 1): "rel:r"},
            ),
        )
        corpus = TableCorpus([labeled])
        summary = corpus.summary()
        assert summary["tables"] == 1
        assert summary["avg_rows"] == 4
        assert summary["entity_annotations"] == 2
        assert summary["type_annotations"] == 1
        assert summary["relation_annotations"] == 1

    def test_empty_summary(self):
        summary = TableCorpus().summary()
        assert summary["tables"] == 0
        assert summary["avg_rows"] == 0.0


class TestJsonl:
    def test_round_trip(self, tmp_path, wiki_tables):
        corpus = TableCorpus(wiki_tables)
        path = tmp_path / "corpus.jsonl"
        save_corpus_jsonl(corpus, path)
        loaded = load_corpus_jsonl(path)
        assert len(loaded) == len(corpus)
        for original, rebuilt in zip(corpus, loaded):
            assert rebuilt.table.to_dict() == original.table.to_dict()
            assert rebuilt.truth.to_dict() == original.truth.to_dict()

    def test_blank_lines_ignored(self, tmp_path):
        corpus = TableCorpus([make_table("t1")])
        path = tmp_path / "corpus.jsonl"
        save_corpus_jsonl(corpus, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_corpus_jsonl(path)) == 1
