"""Tests for the tables subsystem."""
