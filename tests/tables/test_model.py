"""Tests for the table data model and truth round-tripping."""

import pytest

from repro.tables.model import LabeledTable, Table, TableTruth


@pytest.fixture()
def table() -> Table:
    return Table(
        table_id="t1",
        cells=[["Movie A", "Director X"], ["Movie B", "Director Y"]],
        headers=["Title", "Director"],
        context="List of movies",
        source="test",
    )


class TestTable:
    def test_shape(self, table):
        assert table.n_rows == 2
        assert table.n_columns == 2
        assert table.cell(0, 1) == "Director X"
        assert table.column(0) == ["Movie A", "Movie B"]
        assert table.header(1) == "Director"

    def test_iter_cells(self, table):
        cells = list(table.iter_cells())
        assert cells[0] == (0, 0, "Movie A")
        assert len(cells) == 4

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            Table(table_id="bad", cells=[["a", "b"], ["c"]])

    def test_header_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Table(table_id="bad", cells=[["a", "b"]], headers=["only one"])

    def test_headers_without_cells_rejected(self):
        with pytest.raises(ValueError):
            Table(table_id="bad", cells=[], headers=["x"])

    def test_headerless(self):
        table = Table(table_id="t", cells=[["a", "b"]])
        assert table.header(0) is None

    def test_empty_table(self):
        table = Table(table_id="empty", cells=[])
        assert table.n_rows == 0
        assert table.n_columns == 0

    def test_dict_round_trip(self, table):
        rebuilt = Table.from_dict(table.to_dict())
        assert rebuilt == table


class TestTruth:
    def test_dict_round_trip_with_na(self):
        truth = TableTruth(
            cell_entities={(0, 0): "ent:a", (0, 1): None},
            column_types={0: "type:movie", 1: None},
            relations={(0, 1): "rel:directed", (0, 2): None},
        )
        rebuilt = TableTruth.from_dict(truth.to_dict())
        assert rebuilt == truth

    def test_empty_round_trip(self):
        assert TableTruth.from_dict(TableTruth().to_dict()) == TableTruth()


class TestLabeledTable:
    def test_round_trip(self, table):
        labeled = LabeledTable(
            table=table,
            truth=TableTruth(cell_entities={(0, 0): "ent:a"}),
        )
        rebuilt = LabeledTable.from_dict(labeled.to_dict())
        assert rebuilt.table == table
        assert rebuilt.truth == labeled.truth

    def test_strip_to_entities(self, table):
        labeled = LabeledTable(
            table=table,
            truth=TableTruth(
                cell_entities={(0, 0): "ent:a"},
                column_types={0: "type:movie"},
                relations={(0, 1): "rel:directed"},
            ),
        )
        stripped = labeled.strip_to_entities()
        assert stripped.truth.cell_entities == {(0, 0): "ent:a"}
        assert stripped.truth.column_types == {}
        assert stripped.truth.relations == {}
        # original untouched
        assert labeled.truth.column_types

    def test_strip_to_relations(self, table):
        labeled = LabeledTable(
            table=table,
            truth=TableTruth(
                cell_entities={(0, 0): "ent:a"},
                relations={(0, 1): "rel:directed"},
            ),
        )
        stripped = labeled.strip_to_relations()
        assert stripped.truth.relations == {(0, 1): "rel:directed"}
        assert stripped.truth.cell_entities == {}
