"""Tests for relational-vs-formatting screening."""

from repro.tables.classify import TableClass, classify_table
from repro.tables.generator import generate_formatting_table
from repro.tables.model import Table


def make(cells, headers=None):
    return Table(table_id="t", cells=cells, headers=headers)


class TestClassify:
    def test_small_relational_table(self):
        table = make(
            [["Movie A", "1999"], ["Movie B", "2001"], ["Movie C", "1985"]],
            headers=["Title", "Year"],
        )
        assert classify_table(table) is TableClass.RELATIONAL

    def test_too_small(self):
        assert classify_table(make([["a", "b"]])) is TableClass.TOO_SMALL
        assert classify_table(make([["a"], ["b"], ["c"]])) is TableClass.TOO_SMALL

    def test_mostly_empty_is_formatting(self):
        table = make([["x", ""], ["", ""], ["", ""]])
        assert classify_table(table) is TableClass.FORMATTING

    def test_prose_cells_are_formatting(self):
        prose = "word " * 40
        table = make([[prose, prose], [prose, prose], [prose, prose]])
        assert classify_table(table) is TableClass.FORMATTING

    def test_generated_formatting_fixture(self):
        table = generate_formatting_table(seed=3)
        assert classify_table(table) is not TableClass.RELATIONAL

    def test_generated_relational_tables_pass(self, wiki_tables):
        relational = sum(
            1
            for labeled in wiki_tables
            if classify_table(labeled.table) is TableClass.RELATIONAL
        )
        # nearly all generated tables must survive the screen
        assert relational >= len(wiki_tables) - 1

    def test_numeric_columns_are_consistent(self):
        table = make(
            [["1", "Alpha Beta"], ["2", "Gamma Delta"], ["3", "Epsilon"]],
        )
        assert classify_table(table) is TableClass.RELATIONAL
