"""Shared fixtures: a small deterministic world, datasets and annotators.

Session-scoped where construction is expensive; all seeds fixed so every
test run sees byte-identical data.
"""

from __future__ import annotations

import pytest

from repro.catalog.builder import CatalogBuilder
from repro.catalog.synthetic import (
    SyntheticCatalogConfig,
    SyntheticWorld,
    generate_world,
)
from repro.core.annotator import TableAnnotator
from repro.core.model import default_model
from repro.eval.datasets import DatasetSizes, build_standard_datasets
from repro.tables.generator import (
    NoiseProfile,
    TableGeneratorConfig,
    WebTableGenerator,
)


@pytest.fixture(scope="session")
def world() -> SyntheticWorld:
    """The default synthetic world (full + corrupted annotator view)."""
    return generate_world(SyntheticCatalogConfig(seed=7))


@pytest.fixture(scope="session")
def tiny_world() -> SyntheticWorld:
    """A miniature world for tests that iterate many times."""
    return generate_world(
        SyntheticCatalogConfig(
            seed=13,
            n_persons=60,
            n_movies=30,
            n_novels=20,
            n_albums=12,
            n_countries=8,
            n_clubs=6,
        )
    )


@pytest.fixture(scope="session")
def wiki_tables(world):
    """A dozen clean labeled tables."""
    generator = WebTableGenerator(
        world.full,
        TableGeneratorConfig(seed=21, n_tables=12, noise=NoiseProfile.WIKI),
    )
    return generator.generate()


@pytest.fixture(scope="session")
def web_tables(world):
    """A dozen noisy labeled tables."""
    generator = WebTableGenerator(
        world.full,
        TableGeneratorConfig(seed=22, n_tables=12, noise=NoiseProfile.WEB),
    )
    return generator.generate()


@pytest.fixture(scope="session")
def annotator(world) -> TableAnnotator:
    """Annotator on the corrupted view with default weights."""
    return TableAnnotator(world.annotator_view, model=default_model())


@pytest.fixture(scope="session")
def datasets(world):
    """Small standard dataset analogues."""
    return build_standard_datasets(
        world,
        DatasetSizes(wiki_manual=8, web_manual=8, web_relations=5, wiki_link=10),
    )


@pytest.fixture()
def book_catalog():
    """The Figure-1 books/authors scenario as a hand-built catalog."""
    return (
        CatalogBuilder(name="books")
        .type("type:person", "person")
        .type("type:physicist", "physicist", parents=["type:person"])
        .type("type:author", "author", "writer", parents=["type:person"])
        .type("type:book", "book", "title")
        .type("type:science_books", "science books", parents=["type:book"])
        .entity(
            "ent:einstein",
            ["Albert Einstein", "A. Einstein", "Einstein"],
            types=["type:physicist", "type:author"],
        )
        .entity("ent:stannard", ["Russell Stannard"], types=["type:author"])
        .entity(
            "ent:relativity",
            ["Relativity: The Special and the General Theory", "Relativity"],
            types=["type:science_books"],
        )
        .entity(
            "ent:uncle_albert",
            ["Uncle Albert and the Quantum Quest"],
            types=["type:science_books"],
        )
        .entity(
            "ent:time_space",
            ["The Time and Space of Uncle Albert"],
            types=["type:science_books"],
        )
        .relation(
            "rel:wrote",
            "type:book",
            "type:author",
            lemmas=["written by", "author"],
            cardinality="many_to_one",
        )
        .fact("rel:wrote", "ent:relativity", "ent:einstein")
        .fact("rel:wrote", "ent:uncle_albert", "ent:stannard")
        .fact("rel:wrote", "ent:time_space", "ent:stannard")
        .build()
    )
