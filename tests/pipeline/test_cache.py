"""Tests for the LRU caches and the caching candidate generator."""

import pytest

from repro.core.candidates import CandidateGenerator
from repro.pipeline.cache import (
    CandidateCache,
    CachingCandidateGenerator,
    LRUCache,
)


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(max_entries=4)
        assert cache.get("a") is None
        cache.put("a", [1])
        assert cache.get("a") == [1]
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_eviction_is_lru(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a: b is now least recently used
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_size_bound_holds(self):
        cache = LRUCache(max_entries=3)
        for i in range(10):
            cache.put(i, i + 1)
        assert len(cache) == 3

    def test_none_not_storable(self):
        cache = LRUCache()
        with pytest.raises(ValueError):
            cache.put("k", None)

    def test_empty_list_is_storable(self):
        # cells with no candidates cache an empty list; must count as a hit
        cache = LRUCache()
        cache.put("k", [])
        assert cache.get("k") == []
        assert cache.stats().hits == 1

    def test_clear(self):
        cache = LRUCache()
        cache.put("a", 1)
        cache.clear()
        assert cache.get("a") is None

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            LRUCache(max_entries=0)

    def test_stats_since(self):
        cache = LRUCache()
        cache.put("a", 1)
        cache.get("a")
        before = cache.stats()
        cache.get("a")
        cache.get("b")
        delta = cache.stats().since(before)
        assert (delta.hits, delta.misses) == (1, 1)
        assert delta.lookups == 2


class TestCachingCandidateGenerator:
    @pytest.fixture(scope="class")
    def generator(self, tiny_world):
        return CandidateGenerator(tiny_world.annotator_view)

    def test_results_identical_to_wrapped(self, generator, tiny_world):
        caching = CachingCandidateGenerator(generator, CandidateCache())
        entity = next(iter(tiny_world.annotator_view.entities.all_entities()))
        text = entity.lemmas[0]
        assert caching.cell_candidates(text) == generator.cell_candidates(text)
        # second lookup serves from cache, still identical
        assert caching.cell_candidates(text) == generator.cell_candidates(text)
        assert caching.cache.stats().hits == 1

    def test_numeric_and_blank_bypass_cache(self, generator):
        caching = CachingCandidateGenerator(generator, CandidateCache())
        assert caching.cell_candidates("") == []
        assert caching.cell_candidates("  42.5 ") == []
        assert caching.cache.stats().lookups == 0

    def test_unmatched_text_cached_as_empty(self, generator):
        caching = CachingCandidateGenerator(generator, CandidateCache())
        assert caching.cell_candidates("zzz qqq xyzzy") == []
        assert caching.cell_candidates("zzz qqq xyzzy") == []
        stats = caching.cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_delegates_everything_else(self, generator):
        caching = CachingCandidateGenerator(generator, CandidateCache())
        assert caching.catalog is generator.catalog
        assert caching.top_k_entities == generator.top_k_entities
        assert caching.lemma_tfidf is generator.lemma_tfidf
        assert caching.column_type_candidates([[]]) == []
