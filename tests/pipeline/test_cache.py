"""Tests for the LRU caches and the caching candidate generator."""

import pytest

from repro.core.candidates import CandidateGenerator
from repro.pipeline.cache import (
    CandidateCache,
    CachingCandidateGenerator,
    LRUCache,
    normalized_cell_key,
)


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(max_entries=4)
        assert cache.get("a") is None
        cache.put("a", [1])
        assert cache.get("a") == [1]
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_eviction_is_lru(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a: b is now least recently used
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_size_bound_holds(self):
        cache = LRUCache(max_entries=3)
        for i in range(10):
            cache.put(i, i + 1)
        assert len(cache) == 3

    def test_none_not_storable(self):
        cache = LRUCache()
        with pytest.raises(ValueError):
            cache.put("k", None)

    def test_empty_list_is_storable(self):
        # cells with no candidates cache an empty list; must count as a hit
        cache = LRUCache()
        cache.put("k", [])
        assert cache.get("k") == []
        assert cache.stats().hits == 1

    def test_clear(self):
        cache = LRUCache()
        cache.put("a", 1)
        cache.clear()
        assert cache.get("a") is None

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            LRUCache(max_entries=0)

    def test_stats_since(self):
        cache = LRUCache()
        cache.put("a", 1)
        cache.get("a")
        before = cache.stats()
        cache.get("a")
        cache.get("b")
        delta = cache.stats().since(before)
        assert (delta.hits, delta.misses) == (1, 1)
        assert delta.lookups == 2


class TestCachingCandidateGenerator:
    @pytest.fixture(scope="class")
    def generator(self, tiny_world):
        return CandidateGenerator(tiny_world.annotator_view)

    def test_results_identical_to_wrapped(self, generator, tiny_world):
        caching = CachingCandidateGenerator(generator, CandidateCache())
        entity = next(iter(tiny_world.annotator_view.entities.all_entities()))
        text = entity.lemmas[0]
        assert caching.cell_candidates(text) == generator.cell_candidates(text)
        # second lookup serves from cache, still identical
        assert caching.cell_candidates(text) == generator.cell_candidates(text)
        assert caching.cache.stats().hits == 1

    def test_numeric_and_blank_bypass_cache(self, generator):
        caching = CachingCandidateGenerator(generator, CandidateCache())
        assert caching.cell_candidates("") == []
        assert caching.cell_candidates("  42.5 ") == []
        assert caching.cache.stats().lookups == 0

    def test_unmatched_text_cached_as_empty(self, generator):
        caching = CachingCandidateGenerator(generator, CandidateCache())
        assert caching.cell_candidates("zzz qqq xyzzy") == []
        assert caching.cell_candidates("zzz qqq xyzzy") == []
        stats = caching.cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_delegates_everything_else(self, generator):
        caching = CachingCandidateGenerator(generator, CandidateCache())
        assert caching.catalog is generator.catalog
        assert caching.top_k_entities == generator.top_k_entities
        assert caching.lemma_tfidf is generator.lemma_tfidf
        assert caching.column_type_candidates([[]]) == []


class TestNormalizedKeys:
    """Satellite: cache keys are normalised (stripped, case-folded) text."""

    @pytest.fixture(scope="class")
    def generator(self, tiny_world):
        return CandidateGenerator(tiny_world.annotator_view)

    def test_key_collapses_case_whitespace_punctuation(self):
        assert normalized_cell_key("Einstein") == "einstein"
        assert normalized_cell_key("  EINSTEIN  ") == "einstein"
        assert normalized_cell_key("Einstein!") == "einstein"
        assert normalized_cell_key("Albert  Einstein") == "albert einstein"
        # token order is part of the key: retrieval weighs it
        assert normalized_cell_key("a b") != normalized_cell_key("b a")

    def test_variants_share_one_entry_with_identical_results(
        self, generator, tiny_world
    ):
        caching = CachingCandidateGenerator(generator, CandidateCache())
        entity = next(iter(tiny_world.annotator_view.entities.all_entities()))
        base = entity.lemmas[0]
        variants = [base, f"  {base}  ", base.upper(), f"{base}!"]
        for variant in variants:
            # normalisation must never change what the generator would say
            assert caching.cell_candidates(variant) == generator.cell_candidates(
                variant
            )
        stats = caching.cache.stats()
        assert stats.misses == 1
        assert stats.hits == len(variants) - 1
        # "  base  " strips back to the stored surface form (raw hit); the
        # upper-cased and punctuated variants hit via normalisation only
        assert stats.raw_hits == 1
        assert stats.normalized_hits == 2

    def test_raw_vs_normalized_hit_split(self, generator, tiny_world):
        caching = CachingCandidateGenerator(generator, CandidateCache())
        entity = next(iter(tiny_world.annotator_view.entities.all_entities()))
        base = entity.lemmas[0]
        caching.cell_candidates(base)  # miss
        before = caching.cache.stats()
        caching.cell_candidates(base)  # raw hit
        caching.cell_candidates(base.upper())  # normalised-only hit
        stats = caching.cache.stats()
        assert (stats.raw_hits, stats.normalized_hits) == (1, 1)
        delta = stats.since(before)  # since() threads the new counters
        assert (delta.raw_hits, delta.normalized_hits) == (1, 1)
        assert delta.hits == 2

    def test_batch_matches_per_cell_path(self, generator, tiny_world):
        caching = CachingCandidateGenerator(generator, CandidateCache())
        entities = list(tiny_world.annotator_view.entities.all_entities())
        texts = [entity.lemmas[0] for entity in entities[:6]]
        texts += ["", "  ", "42", texts[0].upper(), "zzz qqq", texts[1]]
        batch = caching.cell_candidates_batch(texts)
        fresh = CachingCandidateGenerator(generator, CandidateCache())
        assert batch == [fresh.cell_candidates(text) for text in texts]
        # warm batch: everything resolvable is now a hit
        again = caching.cell_candidates_batch(texts)
        assert again == batch

    def test_batch_probes_each_distinct_key_once(self, generator, tiny_world):
        caching = CachingCandidateGenerator(generator, CandidateCache())
        entity = next(iter(tiny_world.annotator_view.entities.all_entities()))
        base = entity.lemmas[0]
        caching.cell_candidates_batch([base, base.upper(), f" {base} ", "17"])
        stats = caching.cache.stats()
        assert stats.misses == 1
        assert len(caching.cache) == 1
