"""Tests for the corpus annotation pipeline."""
