"""Tests for batched execution: chunking, ordering, parallelism."""

import multiprocessing
import os
import threading
import time

import pytest

from repro.pipeline.executor import BatchExecutor, execute_batches, iter_batches


class TestIterBatches:
    def test_chunks_evenly(self):
        assert list(iter_batches(range(6), 2)) == [[0, 1], [2, 3], [4, 5]]

    def test_ragged_tail(self):
        assert list(iter_batches(range(5), 2)) == [[0, 1], [2, 3], [4]]

    def test_empty(self):
        assert list(iter_batches([], 3)) == []

    def test_lazy(self):
        def forever():
            i = 0
            while True:
                yield i
                i += 1

        batches = iter_batches(forever(), 4)
        assert next(batches) == [0, 1, 2, 3]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            list(iter_batches([1], 0))


class TestExecuteBatches:
    def test_serial_preserves_order(self):
        batches = iter_batches(range(10), 3)
        results = list(execute_batches(batches, lambda b: sum(b), max_workers=1))
        assert results == [3, 12, 21, 9]

    def test_threaded_preserves_order(self):
        # later batches finish first; results must still come back in order
        def slow_reverse(batch):
            time.sleep(0.02 * (4 - batch[0]))
            return batch[0]

        batches = [[i] for i in range(4)]
        results = list(execute_batches(batches, slow_reverse, max_workers=4))
        assert results == [0, 1, 2, 3]

    def test_threaded_actually_overlaps(self):
        active = []
        peak = []
        lock = threading.Lock()

        def worker(batch):
            with lock:
                active.append(1)
                peak.append(len(active))
            time.sleep(0.05)
            with lock:
                active.pop()
            return batch

        list(execute_batches([[i] for i in range(4)], worker, max_workers=4))
        assert max(peak) > 1

    def test_worker_exception_propagates(self):
        def explode(batch):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            list(execute_batches([[1]], explode, max_workers=2))

    def test_early_break_returns_promptly(self):
        # abandoning the stream must not block on queued batches: the pool
        # is shut down with cancel_futures, so only batches already running
        # when the consumer breaks can still be executing
        started = []

        def slow(batch):
            started.append(batch[0])
            time.sleep(0.25)
            return batch[0]

        stream = execute_batches([[i] for i in range(20)], slow, max_workers=2)
        begin = time.perf_counter()
        for result in stream:
            assert result == 0
            break
        stream.close()
        elapsed = time.perf_counter() - begin
        # 20 batches x 0.25s on 2 workers would be ~2.5s if the exit waited
        # for the queue; breaking must cost at most the in-flight batches
        assert elapsed < 1.0
        assert len(started) < 20

    def test_bounded_in_flight(self):
        # an infinite batch stream must not be drained eagerly
        consumed = []

        def counting():
            i = 0
            while True:
                consumed.append(i)
                yield [i]
                i += 1

        stream = execute_batches(counting(), lambda b: b[0], max_workers=2)
        for _ in range(3):
            next(stream)
        assert len(consumed) <= 3 + 2 * 2 + 1


def _square_batch(batch):
    return [item * item for item in batch]


class TestBatchExecutor:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            BatchExecutor("fiber")

    def test_serial_runs_inline(self):
        with BatchExecutor("serial") as executor:
            results = list(executor.map_ordered([[1, 2], [3]], sum))
        assert results == [3, 3]

    def test_thread_pool_persists_across_calls(self):
        thread_ids: set[int] = set()

        def record(batch):
            thread_ids.add(threading.get_ident())
            return batch

        with BatchExecutor("thread", max_workers=2) as executor:
            for _ in range(3):
                list(executor.map_ordered([[1]], record))
            first_pool = executor._pool
            assert first_pool is not None
            list(executor.map_ordered([[2]], record))
            assert executor._pool is first_pool
        assert executor._pool is None

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="process executor requires the fork start method",
    )
    def test_process_pool_runs_in_workers(self):
        with BatchExecutor("process", max_workers=2) as executor:
            results = list(
                executor.map_ordered([[1, 2], [3, 4]], _square_batch)
            )
            assert results == [[1, 4], [9, 16]]
            # pool survives for a second stream with the same worker
            pool = executor._pool
            assert list(executor.map_ordered([[5]], _square_batch)) == [[25]]
            assert executor._pool is pool

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="process executor requires the fork start method",
    )
    def test_process_pool_inherits_parent_state(self):
        # forked workers see the parent's memory at fork time: a closure over
        # parent-side state works without any pickling of that state
        payload = {"parent_pid": os.getpid(), "blob": list(range(100))}

        def probe(batch):
            return (os.getpid() != payload["parent_pid"], sum(payload["blob"]))

        with BatchExecutor("process", max_workers=2) as executor:
            (in_child, checksum), = executor.map_ordered([[0]], probe)
        assert in_child
        assert checksum == sum(range(100))

    def test_close_is_idempotent(self):
        executor = BatchExecutor("thread", max_workers=2)
        list(executor.map_ordered([[1]], sum))
        executor.close()
        executor.close()
