"""Tests for the corpus annotation pipeline.

The load-bearing properties: parallel == serial == uncached (annotations are
byte-identical however the pipeline is configured), cache accounting is
correct, and streaming JSONL round-trips.
"""

import pytest

from repro.pipeline import (
    AnnotationPipeline,
    PipelineConfig,
    annotation_to_dict,
    iter_corpus_jsonl,
    read_annotations_jsonl,
)
from repro.search.table_index import AnnotatedTableIndex
from repro.tables.corpus import TableCorpus, save_corpus_jsonl
from repro.tables.generator import (
    NoiseProfile,
    TableGeneratorConfig,
    WebTableGenerator,
)


@pytest.fixture(scope="module")
def corpus_tables(tiny_world):
    generator = WebTableGenerator(
        tiny_world.full,
        TableGeneratorConfig(seed=31, n_tables=8, noise=NoiseProfile.WIKI),
    )
    return generator.generate()


@pytest.fixture(scope="module")
def serial_annotations(tiny_world, corpus_tables):
    pipeline = AnnotationPipeline(
        tiny_world.annotator_view, config=PipelineConfig(batch_size=3)
    )
    dicts = [annotation_to_dict(a) for a in pipeline.annotate_corpus(corpus_tables)]
    return dicts, pipeline.last_report


class TestDeterminism:
    def test_parallel_identical_to_serial(
        self, tiny_world, corpus_tables, serial_annotations
    ):
        serial, _ = serial_annotations
        pipeline = AnnotationPipeline(
            tiny_world.annotator_view,
            config=PipelineConfig(batch_size=2, workers=4),
        )
        parallel = [
            annotation_to_dict(a) for a in pipeline.annotate_corpus(corpus_tables)
        ]
        assert parallel == serial

    def test_cached_identical_to_uncached(
        self, tiny_world, corpus_tables, serial_annotations
    ):
        serial, _ = serial_annotations
        pipeline = AnnotationPipeline(
            tiny_world.annotator_view, config=PipelineConfig(cache_size=0)
        )
        uncached = [
            annotation_to_dict(a) for a in pipeline.annotate_corpus(corpus_tables)
        ]
        assert uncached == serial

    def test_order_matches_input(self, corpus_tables, serial_annotations):
        serial, _ = serial_annotations
        assert [a["table_id"] for a in serial] == [
            labeled.table.table_id for labeled in corpus_tables
        ]


class TestCacheAccounting:
    def test_first_run_misses_fill_cache(self, tiny_world, corpus_tables):
        pipeline = AnnotationPipeline(tiny_world.annotator_view)
        pipeline.annotate_corpus(corpus_tables)
        report = pipeline.last_report
        assert report.cache is not None
        assert report.cache.misses == len(pipeline.cache)
        assert report.cache.lookups == report.cache.hits + report.cache.misses

    def test_second_run_all_hits(self, tiny_world, corpus_tables):
        pipeline = AnnotationPipeline(tiny_world.annotator_view)
        pipeline.annotate_corpus(corpus_tables)
        pipeline.annotate_corpus(corpus_tables)
        report = pipeline.last_report
        assert report.cache.misses == 0
        assert report.cache.hit_rate == 1.0
        assert report.block_cache.misses == 0

    def test_disabled_cache_reports_none(self, tiny_world, corpus_tables):
        pipeline = AnnotationPipeline(
            tiny_world.annotator_view, config=PipelineConfig(cache_size=0)
        )
        pipeline.annotate_corpus(corpus_tables[:2])
        assert pipeline.cache is None
        assert pipeline.cache_stats() is None
        assert pipeline.last_report.cache is None


class TestCompiledGraphReuse:
    def test_repeated_tables_hit_compiled_cache(self, tiny_world, corpus_tables):
        """A corpus that repeats its tables reuses whole compiled factor
        graphs, and the annotations stay identical to fresh builds."""
        fresh = AnnotationPipeline(
            tiny_world.annotator_view,
            config=PipelineConfig(compiled_cache_size=0),
        )
        baseline = [
            annotation_to_dict(a)
            for a in fresh.annotate_corpus(corpus_tables * 2)
        ]
        assert fresh.last_report.compiled_cache is None

        reusing = AnnotationPipeline(tiny_world.annotator_view)
        reused = [
            annotation_to_dict(a)
            for a in reusing.annotate_corpus(corpus_tables * 2)
        ]
        assert reused == baseline
        stats = reusing.last_report.compiled_cache
        # the second pass over the corpus is all hits
        assert stats is not None
        assert stats.hits >= len(corpus_tables)

    def test_scalar_engine_through_pipeline_matches(
        self, tiny_world, corpus_tables, serial_annotations
    ):
        from repro.core.annotator import AnnotatorConfig

        serial, _ = serial_annotations
        pipeline = AnnotationPipeline(
            tiny_world.annotator_view,
            config=PipelineConfig(
                batch_size=3, annotator=AnnotatorConfig(engine="scalar")
            ),
        )
        scalar = [
            annotation_to_dict(a) for a in pipeline.annotate_corpus(corpus_tables)
        ]
        assert scalar == serial


class TestTimingReport:
    def test_rollup_consistency(self, serial_annotations):
        _, report = serial_annotations
        assert report.finished
        assert report.n_tables == 8
        assert sum(batch.n_tables for batch in report.batches) == 8
        assert len(report.batches) == 3  # ceil(8 / batch_size=3)
        assert report.total_seconds == pytest.approx(
            report.candidate_seconds + report.inference_seconds
        )
        assert report.candidate_fraction + report.inference_fraction == pytest.approx(
            1.0
        )
        assert report.wall_seconds > 0
        assert len(report.per_table_seconds) == 8
        assert report.mean_seconds > 0
        assert report.p90_seconds >= report.median_seconds


class TestStreamingJsonl:
    def test_round_trip(self, tiny_world, corpus_tables, serial_annotations, tmp_path):
        serial, _ = serial_annotations
        corpus_path = tmp_path / "corpus.jsonl"
        save_corpus_jsonl(TableCorpus(corpus_tables), corpus_path)
        # streaming read matches the in-memory corpus
        streamed = list(iter_corpus_jsonl(corpus_path))
        assert [t.table.table_id for t in streamed] == [
            t.table.table_id for t in corpus_tables
        ]
        out_path = tmp_path / "annotations.jsonl"
        pipeline = AnnotationPipeline(tiny_world.annotator_view)
        report = pipeline.annotate_jsonl(corpus_path, out_path)
        assert report.finished and report.n_tables == 8
        assert list(read_annotations_jsonl(out_path)) == serial


class TestIndexConstruction:
    def test_from_corpus_matches_manual_build(
        self, tiny_world, corpus_tables, serial_annotations
    ):
        _, _ = serial_annotations
        pipeline = AnnotationPipeline(tiny_world.annotator_view)
        index = AnnotatedTableIndex.from_corpus(
            tiny_world.annotator_view, corpus_tables, pipeline=pipeline
        )
        manual = AnnotatedTableIndex(catalog=tiny_world.annotator_view)
        for labeled in corpus_tables:
            manual.add_table(
                labeled.table, pipeline.annotator.annotate(labeled.table)
            )
        manual.freeze()
        assert index.stats() == manual.stats()
        assert set(index.tables) == set(manual.tables)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_size": 0},
            {"workers": 0},
            {"cache_size": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            PipelineConfig(**kwargs)

    def test_single_table_annotate_shares_cache(self, tiny_world, corpus_tables):
        pipeline = AnnotationPipeline(tiny_world.annotator_view)
        first = pipeline.annotate(corpus_tables[0])
        again = pipeline.annotate(corpus_tables[0])
        assert annotation_to_dict(first) == annotation_to_dict(again)
        assert pipeline.cache_stats().hits > 0
