"""Fused corpus execution must be invisible in the output.

``fusion="bucket"`` reorders work (shape buckets, cross-table BP, optional
pools) but the annotation stream must be byte-identical to the per-table
path for every engine combination and executor — these tests compare the
full ``annotation_to_dict`` payloads, the same serialisation the JSONL
corpus path writes.
"""

import pytest

from repro.core.annotator import AnnotatorConfig
from repro.pipeline.io import annotation_to_dict
from repro.pipeline.pipeline import AnnotationPipeline, PipelineConfig


def annotate_corpus(world, tables, **kwargs):
    """All annotations for ``tables`` under one pipeline configuration."""
    annotator_fields = {
        key: kwargs.pop(key)
        for key in ("engine", "candidate_engine", "fusion", "with_relations")
        if key in kwargs
    }
    config = PipelineConfig(
        annotator=AnnotatorConfig(**annotator_fields), **kwargs
    )
    with AnnotationPipeline(world.annotator_view, config=config) as pipeline:
        payloads = [
            annotation_to_dict(annotation)
            for _table, annotation in pipeline.annotate_with_tables(tables)
        ]
        report = pipeline.last_report
    return payloads, report


@pytest.fixture(scope="module")
def corpus(wiki_tables):
    return [labeled.table for labeled in wiki_tables[:8]]


@pytest.fixture(scope="module")
def serial_payloads(world, corpus):
    payloads, _report = annotate_corpus(world, corpus)
    return payloads


class TestFusedEquality:
    @pytest.mark.parametrize("engine", ["batched", "scalar"])
    @pytest.mark.parametrize("candidate_engine", ["batched", "scalar"])
    def test_identical_for_every_engine_combination(
        self, world, corpus, engine, candidate_engine
    ):
        expected, _ = annotate_corpus(
            world, corpus, engine=engine, candidate_engine=candidate_engine
        )
        fused, report = annotate_corpus(
            world,
            corpus,
            engine=engine,
            candidate_engine=candidate_engine,
            fusion="bucket",
        )
        assert fused == expected
        assert report.fusion == "bucket"
        assert report.fused_batches == len(report.bucket_sizes) > 0
        assert sum(report.bucket_sizes) == len(corpus)

    def test_identical_without_relations(self, world, corpus):
        expected, _ = annotate_corpus(world, corpus, with_relations=False)
        fused, _ = annotate_corpus(
            world, corpus, with_relations=False, fusion="bucket"
        )
        assert fused == expected

    def test_identical_on_thread_executor(self, world, corpus, serial_payloads):
        fused, _ = annotate_corpus(
            world, corpus, fusion="bucket", executor="thread", workers=2
        )
        assert fused == serial_payloads

    def test_identical_on_process_executor(self, world, corpus, serial_payloads):
        fused, report = annotate_corpus(
            world, corpus, fusion="bucket", executor="process", workers=2
        )
        assert fused == serial_payloads
        assert report.finished

    def test_duplicate_tables_share_buckets(self, world, corpus):
        doubled = list(corpus) + list(corpus)
        expected, _ = annotate_corpus(world, doubled)
        fused, report = annotate_corpus(world, doubled, fusion="bucket")
        assert fused == expected
        assert max(report.bucket_size_histogram) >= 2

    def test_output_order_is_corpus_order(self, world, corpus):
        reversed_corpus = list(reversed(corpus))
        config = PipelineConfig(annotator=AnnotatorConfig(fusion="bucket"))
        with AnnotationPipeline(world.annotator_view, config=config) as pipeline:
            pairs = list(pipeline.annotate_with_tables(reversed_corpus))
        assert [table.table_id for table, _ in pairs] == [
            table.table_id for table in reversed_corpus
        ]
        assert all(
            annotation.table_id == table.table_id
            for table, annotation in pairs
        )


class TestPipelineLifecycle:
    def test_close_is_idempotent(self, world, corpus):
        pipeline = AnnotationPipeline(world.annotator_view)
        list(pipeline.annotate_with_tables(corpus[:2]))
        pipeline.close()
        pipeline.close()

    def test_fusion_knob_validated(self, world):
        with pytest.raises(ValueError, match="fusion"):
            AnnotationPipeline(
                world.annotator_view,
                config=PipelineConfig(
                    annotator=AnnotatorConfig(fusion="bogus")
                ),
            )

    def test_executor_knob_validated(self):
        with pytest.raises(ValueError, match="executor"):
            PipelineConfig(executor="bogus")
