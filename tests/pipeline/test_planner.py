"""Property tests for the shape-bucketing planner.

The contract pinned here is the one fused execution leans on: planning is a
pure function of the corpus *as a set* — permuting the input changes only
the recorded corpus positions, never which tables share a bucket or the
order buckets (and tables within them) come out in.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.pipeline.planner import (
    iter_bucket_chunks,
    plan_buckets,
    table_signature,
)
from repro.tables.model import Table


def make_table(index: int, n_rows: int, n_columns: int, numeric_mask) -> Table:
    cells = [
        [
            str(100 + row * n_columns + column)
            if numeric_mask[column]
            else f"cell {index} {row} {column}"
            for column in range(n_columns)
        ]
        for row in range(n_rows)
    ]
    return Table(table_id=f"table-{index:04d}", cells=cells)


table_specs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),  # rows
        st.integers(min_value=1, max_value=3),  # columns
        st.lists(st.booleans(), min_size=3, max_size=3),  # numeric mask
    ),
    min_size=1,
    max_size=12,
)


def corpus_from_specs(specs) -> list[Table]:
    return [
        make_table(index, rows, columns, mask)
        for index, (rows, columns, mask) in enumerate(specs)
    ]


class TestSignature:
    def test_rows_columns_and_numeric_mask(self):
        table = Table(
            table_id="t",
            cells=[["alpha", "12"], ["beta", "3.5"], ["gamma", ""]],
        )
        assert table_signature(table) == (3, 2, (False, True))

    def test_blank_cells_do_not_break_numeric_columns(self):
        table = Table(table_id="t", cells=[[""], ["7"]])
        assert table_signature(table) == (2, 1, (True,))


class TestPlanBuckets:
    @given(specs=table_specs, seed=st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None)
    def test_plan_invariant_under_permutation(self, specs, seed):
        corpus = corpus_from_specs(specs)
        shuffled = list(corpus)
        seed.shuffle(shuffled)

        plan = plan_buckets(corpus)
        shuffled_plan = plan_buckets(shuffled)

        # same buckets, same signature order, same table order within each
        # bucket — only the recorded corpus positions may differ
        assert [bucket.signature for bucket in plan] == [
            bucket.signature for bucket in shuffled_plan
        ]
        for bucket, shuffled_bucket in zip(plan, shuffled_plan):
            assert [table.table_id for _, table in bucket.entries] == [
                table.table_id for _, table in shuffled_bucket.entries
            ]

    @given(specs=table_specs)
    @settings(max_examples=25, deadline=None)
    def test_positions_restore_corpus_order(self, specs):
        corpus = corpus_from_specs(specs)
        plan = plan_buckets(corpus)
        restored: list[Table | None] = [None] * len(corpus)
        for bucket in plan:
            for position, table in bucket.entries:
                assert table_signature(table) == bucket.signature
                restored[position] = table
        assert restored == corpus

    @given(specs=table_specs, chunk_size=st.integers(min_value=1, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_chunks_cover_plan_in_order(self, specs, chunk_size):
        corpus = corpus_from_specs(specs)
        plan = plan_buckets(corpus)
        chunks = list(iter_bucket_chunks(plan, chunk_size))
        assert all(len(entries) <= chunk_size for _, entries in chunks)
        flattened: dict[tuple, list] = {}
        for signature, entries in chunks:
            flattened.setdefault(signature, []).extend(entries)
        assert flattened == {
            bucket.signature: bucket.entries for bucket in plan
        }

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError):
            list(iter_bucket_chunks([], 0))
