"""Programmatic client for the `repro serve` HTTP service.

Boots a server over a freshly built bundle (so the example is
self-contained), then exercises every endpoint the way an application
would: health check, single-table annotation (both engines), relational
search, a two-hop join, and the metrics snapshot.  Point ``--url`` at an
already-running server to skip the in-process boot.

Run:

    PYTHONPATH=src python examples/serve_client.py
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import threading
from http.client import HTTPConnection
from pathlib import Path
from urllib.parse import urlparse

#: REPRO_SMOKE=1 shrinks the corpus so CI's examples job stays fast
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


class ServeClient:
    """Minimal stdlib client: one method per endpoint."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str, body: dict | None = None):
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request(
                method,
                path,
                body=json.dumps(body) if body is not None else None,
                headers=(
                    {"Content-Type": "application/json"} if body is not None else {}
                ),
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
            if response.status != 200:
                raise RuntimeError(f"{path}: HTTP {response.status}: {payload}")
            return payload
        finally:
            connection.close()

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def annotate(self, table: dict, engine: str | None = None) -> dict:
        body: dict = {"table": table}
        if engine is not None:
            body["engine"] = engine
        return self._request("POST", "/annotate", body)

    def search(
        self,
        relation: str,
        entity: str,
        top_k: int | None = None,
        use_relations: bool = True,
    ) -> dict:
        body: dict = {
            "relation": relation,
            "entity": entity,
            "use_relations": use_relations,
        }
        if top_k is not None:
            body["top_k"] = top_k
        return self._request("POST", "/search", body)

    def search_join(
        self, first_relation: str, second_relation: str, entity: str
    ) -> dict:
        return self._request(
            "POST",
            "/search/join",
            {
                "first_relation": first_relation,
                "second_relation": second_relation,
                "entity": entity,
            },
        )


def boot_local_server():
    """Build a bundle from a synthetic world and serve it in-process."""
    from repro.catalog.synthetic import SyntheticCatalogConfig, generate_world
    from repro.serve.bundle import build_bundle, load_bundle
    from repro.serve.server import create_server
    from repro.serve.state import ServeState
    from repro.tables.generator import (
        NoiseProfile,
        TableGeneratorConfig,
        WebTableGenerator,
    )

    world = generate_world(SyntheticCatalogConfig(seed=7))
    n_tables = 5 if SMOKE else 20
    tables = WebTableGenerator(
        world.full,
        TableGeneratorConfig(seed=11, n_tables=n_tables, noise=NoiseProfile.WIKI),
    ).generate()
    bundle_dir = Path(tempfile.mkdtemp(prefix="repro-bundle-")) / "bundle"
    print(f"building bundle under {bundle_dir} (annotating {n_tables} tables) ...")
    build_bundle(bundle_dir, world.annotator_view, tables)
    state = ServeState(load_bundle(bundle_dir))
    server = create_server(state, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port}")

    # a productive demo query: anchor E2 at an entity-annotated cell of an
    # annotated relation edge, so the search is guaranteed to match rows
    catalog = world.annotator_view
    relation = entity = None
    index = state.index
    relation_ids = sorted(
        relation.relation_id for relation in catalog.relations.all_relations()
    )
    for relation_id in relation_ids:
        for edge in index.relation_edges(relation_id):
            annotation = index.annotations.get(edge.table_id)
            table = index.tables[edge.table_id]
            for row in range(table.n_rows):
                anchor = annotation.entity_of(row, edge.object_column)
                if anchor is not None and anchor in catalog.entities:
                    relation, entity = relation_id, anchor
                    break
            if relation:
                break
        if relation:
            break
    return server, host, port, tables[0].table.to_dict(), relation, entity


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--url",
        default=None,
        help="base URL of a running server (default: boot one in-process)",
    )
    args = parser.parse_args()

    server = None
    if args.url:
        parsed = urlparse(args.url)
        client = ServeClient(parsed.hostname, parsed.port or 80)
        demo_table = {"table_id": "demo", "cells": [["example", "row"]]}
        relation = entity = None
    else:
        server, host, port, demo_table, relation, entity = boot_local_server()
        client = ServeClient(host, port)

    health = client.healthz()
    print(f"\n/healthz -> {health['status']}, {health['tables']} tables indexed")

    annotated = client.annotate(demo_table)
    columns = annotated["annotation"]["columns"]
    print(f"/annotate ({annotated['engine']}) -> column types {columns}")
    scalar = client.annotate(demo_table, engine="scalar")
    print(
        "/annotate (scalar)  -> identical:", scalar["annotation"] == annotated["annotation"]
    )

    if relation is not None:
        result = client.search(relation, entity, top_k=5)
        print(f"/search {relation}({entity}) -> {len(result['answers'])} answers")
        for answer in result["answers"]:
            print(f"    {answer['score']:8.3f}  {answer['text']}")

    metrics = client.metrics()
    for endpoint, stats in metrics["endpoints"].items():
        latency = stats["latency_seconds"]
        print(
            f"/metrics: {endpoint:10} {stats['requests']:3} requests, "
            f"p50 {latency['p50'] * 1000:.1f} ms, p99 {latency['p99'] * 1000:.1f} ms"
        )

    if server is not None:
        server.shutdown()
        server.server_close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
