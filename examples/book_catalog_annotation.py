#!/usr/bin/env python3
"""The paper's Figure-1 scenario, end to end, on a hand-built catalog.

A table of book titles and authors where the text is genuinely ambiguous:
"Albert" appears both in person names and book titles, the header 'Title'
could mean books, movies or albums, and "written by" shares no word with
'Author'.  Collective inference resolves everything jointly.

Run with::

    python examples/book_catalog_annotation.py
"""

from repro import CatalogBuilder, Table, TableAnnotator


def build_catalog():
    """A miniature catalog mirroring the paper's Figure 1."""
    return (
        CatalogBuilder(name="figure-1")
        .type("type:person", "person")
        .type("type:physicist", "physicist", parents=["type:person"])
        .type("type:author", "author", "writer", parents=["type:person"])
        .type("type:book", "book", "title")
        .type("type:science_books", "science books", parents=["type:book"])
        .entity(
            "ent:einstein",
            ["Albert Einstein", "A. Einstein", "Einstein"],
            types=["type:physicist", "type:author"],
        )
        .entity("ent:stannard", ["Russell Stannard"], types=["type:author"])
        .entity(
            "ent:doxiadis",
            ["Apostolos Doxiadis", "A. Doxiadis"],
            types=["type:author"],
        )
        .entity(
            "ent:relativity",
            ["Relativity: The Special and the General Theory", "Relativity"],
            types=["type:science_books"],
        )
        .entity(
            "ent:uncle_albert",
            ["Uncle Albert and the Quantum Quest"],
            types=["type:science_books"],
        )
        .entity(
            "ent:time_space",
            ["The Time and Space of Uncle Albert"],
            types=["type:science_books"],
        )
        .entity(
            "ent:petros",
            ["Uncle Petros and the Goldbach Conjecture", "Uncle Petros"],
            types=["type:book"],
        )
        .relation(
            "rel:wrote",
            "type:book",
            "type:author",
            lemmas=["written by", "author", "wrote"],
            cardinality="many_to_one",
        )
        .fact("rel:wrote", "ent:relativity", "ent:einstein")
        .fact("rel:wrote", "ent:uncle_albert", "ent:stannard")
        .fact("rel:wrote", "ent:time_space", "ent:stannard")
        .fact("rel:wrote", "ent:petros", "ent:doxiadis")
        .build()
    )


def main() -> None:
    catalog = build_catalog()
    table = Table(
        table_id="figure-1",
        cells=[
            ["Uncle Albert and the Quantum Quest", "Russell Stannard"],
            ["Relativity: The Special and the General Theory", "A. Einstein"],
            ["The Time and Space of Uncle Albert", "Stannard"],
            ["Uncle Petros and the Goldbach conjecture", "A  Doxiadis"],
        ],
        headers=["Title", "Author"],
        context="a list of popular science books and who wrote them",
    )

    annotator = TableAnnotator(catalog)
    annotation = annotator.annotate(table)

    print("Column types:")
    for column in range(table.n_columns):
        print(f"  column {column} ({table.headers[column]}): "
              f"{annotation.type_of(column)}")
    print("\nRelation between the columns:")
    print(f"  (0, 1): {annotation.relation_of(0, 1)}")
    print("\nCell entities:")
    for row in range(table.n_rows):
        for column in range(table.n_columns):
            entity = annotation.entity_of(row, column)
            print(f"  ({row},{column}) {table.cell(row, column)[:45]!r:48} -> {entity}")

    # The headline disambiguations of Figure 1:
    assert annotation.entity_of(1, 1) == "ent:einstein"      # 'A. Einstein'
    assert annotation.entity_of(0, 0) == "ent:uncle_albert"  # not the Einstein book
    assert annotation.relation_of(0, 1) == "rel:wrote"
    print("\nFigure-1 disambiguation checks passed.")


if __name__ == "__main__":
    main()
