#!/usr/bin/env python3
"""Extension features: join queries and primary-key constrained annotation.

Two things the paper sketches but leaves as future work / an aside:

* **join queries** (Section 2.1): ``R1(e1, e2) ∧ R2(e2, E3)`` — e.g.
  "movies acted in by people born in city E3" — answered over the annotated
  index with a two-hop search (:mod:`repro.search.join_search`);
* **primary-key constraints** (Section 4.4.1): entity assignment in a unique
  column as a min-cost-flow/assignment problem
  (:mod:`repro.core.constraints`).

Run with::

    python examples/join_queries.py
"""

import os

from repro import (
    AnnotatedTableIndex,
    JoinQuery,
    JoinSearcher,
    Table,
    TableAnnotator,
)
from repro.catalog.synthetic import generate_world
from repro.tables.generator import (
    NoiseProfile,
    TableGeneratorConfig,
    WebTableGenerator,
)

#: REPRO_SMOKE=1 shrinks the corpus so CI's examples job stays fast
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def join_demo(world, annotator) -> None:
    print("=== Join queries: movies acted in by people born in a city ===")
    tables = WebTableGenerator(
        world.full,
        TableGeneratorConfig(
            seed=71,
            n_tables=12 if SMOKE else 40,
            noise=NoiseProfile.WIKI,
            relations=("rel:acted_in", "rel:born_in"),
            id_prefix="join",
        ),
    ).generate()
    index = AnnotatedTableIndex(catalog=world.annotator_view)
    for labeled in tables:
        index.add_table(labeled.table, annotator.annotate(labeled.table))
    index.freeze()

    # pick a city where some actor with movies was born
    city = None
    for _movie, actor in sorted(world.full.relations.tuples("rel:acted_in")):
        cities = world.full.relations.objects_of("rel:born_in", actor)
        if cities:
            city = sorted(cities)[0]
            break
    assert city is not None
    city_name = world.full.entities.get(city).primary_lemma
    print(f"query: acted_in(movie, person) ∧ born_in(person, {city_name!r})")

    query = JoinQuery.from_catalog(
        world.annotator_view, "rel:acted_in", "rel:born_in", city
    )
    response = JoinSearcher(index, world.annotator_view).search(query)
    print(f"{len(response.answers)} joined answers:")
    for answer in response.answers[:6]:
        print(f"  {answer.score:8.3f}  {answer.text}")


def unique_column_demo(world, annotator) -> None:
    print("\n=== Primary-key constraint: a ranking table of distinct people ===")
    # A 'standings' table: every row must be a DIFFERENT person, but the
    # cells use ambiguous surname-only mentions.  Find two persons sharing a
    # surname so the per-cell argmax provably collides.
    by_surname: dict[str, list[str]] = {}
    for entity in world.full.entities.all_entities():
        if not entity.entity_id.startswith("ent:person:"):
            continue
        surname = entity.primary_lemma.split()[-1]
        by_surname.setdefault(surname, []).append(entity.entity_id)
    surname, _pair = next(
        (surname, ids)
        for surname, ids in sorted(by_surname.items())
        if len(ids) >= 2
    )
    surname_cells = [[surname], [surname]]
    table = Table(
        table_id="standings",
        cells=surname_cells,
        headers=["Player"],
        context="league top scorers",
    )
    plain = annotator.annotate_simple(table)
    constrained = annotator.annotate_simple(table, unique_columns=(0,))
    print("cells:", [row[0] for row in table.cells])
    print("per-cell argmax :", [plain.entity_of(r, 0) for r in range(table.n_rows)])
    print("unique-assigned :", [
        constrained.entity_of(r, 0) for r in range(table.n_rows)
    ])


def main() -> None:
    world = generate_world()
    annotator = TableAnnotator(world.annotator_view)
    join_demo(world, annotator)
    unique_column_demo(world, annotator)


if __name__ == "__main__":
    main()
