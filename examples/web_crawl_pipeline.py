#!/usr/bin/env python3
"""The full crawl-to-search pipeline on raw HTML (paper Sections 3.2 + 5).

Simulates what the paper did to its 500M-page crawl, end to end:

1. render HTML pages (some relational tables, some layout junk),
2. extract regular tables and screen out formatting tables (WebTables-style),
3. annotate the survivors against the catalog,
4. index and answer a relational query.

Run with::

    python examples/web_crawl_pipeline.py
"""

import os
import random

from repro import (
    AnnotatedSearcher,
    AnnotatedTableIndex,
    AnnotationPipeline,
    RelationQuery,
    extract_tables_from_html,
)
from repro.catalog.synthetic import generate_world
from repro.tables.generator import (
    NoiseProfile,
    TableGeneratorConfig,
    WebTableGenerator,
)

#: REPRO_SMOKE=1 shrinks the corpus so CI's examples job stays fast
SMOKE = bool(os.environ.get("REPRO_SMOKE"))

PAGE_TEMPLATE = """
<html><body>
  <div class="nav">
    <table>
      <tr><td>Home&nbsp;|&nbsp;About&nbsp;|&nbsp;Contact</td><td></td></tr>
      <tr><td></td><td>{junk}</td></tr>
      <tr><td></td><td></td></tr>
    </table>
  </div>
  <h1>{title}</h1>
  <p>{context}</p>
  <table>
    {header_row}
    {body_rows}
  </table>
  <p>Generated for the web_crawl_pipeline example.</p>
</body></html>
"""


def render_page(labeled, junk: str) -> str:
    """Turn a generated table into an HTML page with layout decoys."""
    table = labeled.table
    if table.headers:
        cells = "".join(f"<th>{h or ''}</th>" for h in table.headers)
        header_row = f"<tr>{cells}</tr>"
    else:
        header_row = ""
    body_rows = "\n    ".join(
        "<tr>" + "".join(f"<td>{cell}</td>" for cell in row) + "</tr>"
        for row in table.cells
    )
    return PAGE_TEMPLATE.format(
        junk=junk,
        title=table.context or "A table",
        context=table.context or "",
        header_row=header_row,
        body_rows=body_rows,
    )


def main() -> None:
    world = generate_world()
    rng = random.Random(99)

    # 1. "Crawl": HTML pages, each with one data table and one layout table.
    generated = WebTableGenerator(
        world.full,
        TableGeneratorConfig(
            seed=31, n_tables=8 if SMOKE else 25, noise=NoiseProfile.WEB
        ),
    ).generate()
    pages = [
        render_page(labeled, junk=rng.choice(("© 2009", "ads here", "login")))
        for labeled in generated
    ]
    print(f"crawled {len(pages)} pages")

    # 2. Extract + screen. Each page has 2 tables; the layout one must go.
    extracted = []
    for page_number, html in enumerate(pages):
        extracted.extend(
            extract_tables_from_html(html, id_prefix=f"page{page_number}")
        )
    print(
        f"extracted {len(extracted)} relational tables "
        f"(screened out {2 * len(pages) - len(extracted)} of {2 * len(pages)})"
    )

    # 3. Annotate and index — the corpus pipeline streams tables through a
    # shared candidate cache (crawled pages repeat entity mentions heavily).
    pipeline = AnnotationPipeline(world.annotator_view)
    index = AnnotatedTableIndex.from_corpus(
        world.annotator_view, extracted, pipeline=pipeline
    )
    stats = pipeline.cache_stats()
    print("index:", index.stats())
    print(f"candidate cache hit rate: {stats.hit_rate:.0%}")

    # 4. Ask: which movies did some director direct?
    directors = sorted(world.full.relations.participating_objects("rel:directed"))
    given = directors[0]
    query = RelationQuery.from_catalog(world.full, "rel:directed", given)
    print(f"\nQuery: movies directed by {query.given_text!r}")
    searcher = AnnotatedSearcher(index, world.annotator_view, use_relations=True)
    response = searcher.search(query)
    truth = world.full.relations.subjects_of("rel:directed", given)
    print(f"true answers in catalog: {len(truth)}")
    for answer in response.answers[:8]:
        hit = answer.entity_id in truth if answer.entity_id else False
        print(f"  [{'hit ' if hit else '    '}] {answer.score:6.2f}  {answer.text}")


if __name__ == "__main__":
    main()
