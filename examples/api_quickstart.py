#!/usr/bin/env python3
"""The typed API in one sitting: annotate → search → join via ReproSession.

Run with::

    python examples/api_quickstart.py

One :class:`repro.ReproSession` is the whole public surface — the same
facade the CLI and the HTTP server run on.  This example opens a session on
a synthetic world, annotates a table through the typed request/response
path, indexes a corpus, then answers a relational query and a two-hop join.
Every payload printed here is exactly what ``POST /annotate`` / ``/search``
/ ``/search/join`` would return for the same request.
"""

import os

from repro import (
    AnnotateRequest,
    ApiError,
    JoinSearchRequest,
    NoiseProfile,
    ReproSession,
    SearchRequest,
    SessionConfig,
    TableGeneratorConfig,
    WebTableGenerator,
    encode_json,
    generate_world,
)

#: REPRO_SMOKE=1 shrinks the corpus so CI's examples job stays fast
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def main() -> None:
    # 1. A seeded synthetic world and a small corpus of noisy web tables.
    world = generate_world()
    generator = WebTableGenerator(
        world.full,
        TableGeneratorConfig(
            seed=11, n_tables=6 if SMOKE else 12, noise=NoiseProfile.WIKI
        ),
    )
    corpus = generator.generate()

    # 2. One session = one warm handle on the whole system.  The config
    #    composes what used to be scattered per-command wiring.
    session = ReproSession.from_world(
        world.annotator_view, config=SessionConfig(engine="batched")
    )

    # 3. Annotate through the typed path.  The response is a versioned wire
    #    object: encode_json(response.to_json()) is byte-identical to what
    #    the HTTP server would send for this request.
    request = AnnotateRequest(table=corpus[0].table, include_timing=False)
    response = session.annotate(request)
    print("annotate ->", encode_json(response.to_json())[:120], "…")
    print("column types:", response.annotation["columns"])

    # 4. Index the corpus, then search it.  Pick a relation/entity pair
    #    that actually occurs in the ground truth so the query hits.
    session.index_corpus(corpus)
    relation, entity, answers = None, None, None
    for candidate in world.annotator_view.relations.all_relations():
        relation = candidate.relation_id
        for entity in sorted(
            world.annotator_view.relations.participating_objects(relation)
        ):
            answers = session.search(
                SearchRequest(relation=relation, entity=entity, top_k=5)
            )
            if answers.answers:
                break
        if answers is not None and answers.answers:
            break
    print(f"search {relation}(?, {entity}):")
    for answer in answers.answers:
        print(f"  {answer.score:8.3f}  {answer.text}  {answer.entity_id or ''}")

    # 5. A two-hop join through a middle entity, where the schemas compose.
    catalog = world.annotator_view
    for first in catalog.relations.all_relations():
        for second in catalog.relations.all_relations():
            joinable = catalog.types.is_subtype(
                second.subject_type, first.object_type
            ) or catalog.types.is_subtype(first.object_type, second.subject_type)
            objects = sorted(
                catalog.relations.participating_objects(second.relation_id)
            )
            if not joinable or not objects:
                continue
            join = session.join_search(
                JoinSearchRequest(
                    first_relation=first.relation_id,
                    second_relation=second.relation_id,
                    entity=objects[0],
                    top_k=3,
                )
            )
            print(
                f"join {first.relation_id} ∘ {second.relation_id} "
                f"-> {len(join.answers)} answers"
            )
            break
        else:
            continue
        break

    # 6. Failures carry stable codes — the same codes the HTTP server maps
    #    to statuses, so clients branch on code, never on message text.
    try:
        session.search(SearchRequest(relation="rel:nope", entity=entity))
    except ApiError as error:
        print(f"expected failure: [{error.code}] http {error.http_status}")


if __name__ == "__main__":
    main()
