#!/usr/bin/env python3
"""Closing the loop: annotated tables grow the catalog (paper Section 7).

"The Web will never have a complete 'schema'.  Socially maintained catalogs
will always be incomplete.  Our work paves the way to augment catalogs with
dynamic relational information."

This example runs that loop:

1. the annotator's catalog view is missing a known set of relation tuples
   (dropped by the synthetic corruption),
2. a table corpus is annotated and mined for new facts,
3. proposals are scored against the ground-truth catalog
   (precision / recall of the dropped tuples),
4. high-confidence facts are written back into a copy of the catalog and the
   corpus is re-annotated with the enriched φ5 evidence.

Run with::

    python examples/catalog_augmentation.py
"""

import os

from repro import TableAnnotator
from repro.catalog.io import catalog_from_dict, catalog_to_dict
from repro.catalog.synthetic import SyntheticCatalogConfig, generate_world
from repro.core.augmentation import CatalogAugmenter, recovered_fraction
from repro.eval.metrics import entity_accuracy
from repro.tables.generator import (
    NoiseProfile,
    TableGeneratorConfig,
    WebTableGenerator,
)

#: REPRO_SMOKE=1 shrinks the corpus so CI's examples job stays fast
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def entity_score(annotator, tables) -> float:
    correct = total = 0
    for labeled in tables:
        annotation = annotator.annotate(labeled.table)
        counts = entity_accuracy(labeled.truth, annotation)
        correct += counts.correct
        total += counts.total
    return correct / total


def main() -> None:
    world = generate_world(SyntheticCatalogConfig(seed=7, drop_tuple_prob=0.3))
    full_tuples = world.full.stats()["tuples"]
    view_tuples = world.annotator_view.stats()["tuples"]
    print(
        f"catalog view knows {view_tuples}/{full_tuples} tuples "
        f"({full_tuples - view_tuples} dropped)"
    )

    corpus = WebTableGenerator(
        world.full,
        TableGeneratorConfig(
            seed=60, n_tables=10 if SMOKE else 40, noise=NoiseProfile.WIKI
        ),
    ).generate()
    annotator = TableAnnotator(world.annotator_view)

    # mine proposals
    augmenter = CatalogAugmenter(world.annotator_view, min_confidence=1.0)
    for labeled in corpus:
        augmenter.add_annotated_table(annotator.annotate(labeled.table))
    report = augmenter.report()
    stats = recovered_fraction(report.tuples, world.full, world.annotator_view)
    print(
        f"\nmined {len(report.tuples)} tuple proposals: "
        f"precision {stats['precision']:.0%}, "
        f"recovered {stats['recall_of_dropped']:.0%} of the dropped tuples"
    )
    for proposal in report.tuples[:5]:
        subject = world.full.entities.get(proposal.subject).primary_lemma
        object_ = world.full.entities.get(proposal.object_).primary_lemma
        known = world.full.relations.has_tuple(
            proposal.relation_id, proposal.subject, proposal.object_
        )
        print(
            f"  [{'true ' if known else 'FALSE'}] "
            f"{proposal.relation_id}({subject!r}, {object_!r}) "
            f"support={proposal.support}"
        )

    # apply to a copy of the view and measure downstream annotation quality
    before = entity_score(annotator, corpus[:12])
    enriched = catalog_from_dict(catalog_to_dict(world.annotator_view))
    report.apply_to(enriched, min_support=1)
    enriched_annotator = TableAnnotator(enriched)
    after = entity_score(enriched_annotator, corpus[:12])
    print(
        f"\nentity accuracy on a held slice: {before:.1%} -> {after:.1%} "
        "after augmentation (clean tables annotate near ceiling either way; "
        "the payoff is the recovered facts themselves)"
    )


if __name__ == "__main__":
    main()
