#!/usr/bin/env python3
"""Quickstart: generate a world, annotate tables, inspect the results.

Run with::

    python examples/quickstart.py

Walks the shortest path through the library: a synthetic YAGO-substitute
catalog, a handful of noisy Web-table analogues, collective annotation, and a
comparison against ground truth.
"""

from repro import (
    NoiseProfile,
    TableAnnotator,
    TableGeneratorConfig,
    WebTableGenerator,
    generate_world,
)


def main() -> None:
    # 1. A seeded synthetic world: `full` is ground truth, `annotator_view`
    #    is the incomplete catalog the annotator is allowed to see.
    world = generate_world()
    print("catalog:", world.annotator_view.stats())

    # 2. Render five noisy tables from the ground-truth catalog.
    generator = WebTableGenerator(
        world.full,
        TableGeneratorConfig(seed=5, n_tables=5, noise=NoiseProfile.WEB),
    )
    tables = generator.generate()

    # 3. Annotate with the collective model (hand-set default weights).
    annotator = TableAnnotator(world.annotator_view)

    for labeled in tables:
        table = labeled.table
        annotation = annotator.annotate(table)
        print(f"\n=== {table.table_id}  ({table.n_rows}x{table.n_columns})")
        print("context:", table.context)
        print("headers:", table.headers)
        for column in range(table.n_columns):
            predicted = annotation.type_of(column)
            truth = labeled.truth.column_types.get(column)
            marker = "ok " if predicted == truth else "MISS"
            print(f"  [{marker}] column {column}: {predicted}  (truth: {truth})")
        for (left, right), relation in sorted(annotation.relations.items()):
            truth = labeled.truth.relations.get((left, right))
            marker = "ok " if relation.label == truth else "MISS"
            print(
                f"  [{marker}] columns ({left},{right}): {relation.label}"
                f"  (truth: {truth})"
            )
        correct = total = 0
        for (row, column), truth_entity in labeled.truth.cell_entities.items():
            total += 1
            correct += annotation.entity_of(row, column) == truth_entity
        print(f"  cell entities: {correct}/{total} correct")
        timing = annotation.diagnostics["timing"]
        print(
            f"  time: {timing.total_seconds * 1000:.1f} ms "
            f"({timing.candidate_fraction:.0%} candidates+features, "
            f"{timing.inference_fraction:.0%} inference)"
        )


if __name__ == "__main__":
    main()
