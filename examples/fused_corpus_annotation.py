#!/usr/bin/env python3
"""Fused corpus annotation: shape buckets, one BP run per bucket.

Annotates the same corpus twice — per table (``fusion="off"``) and fused
(``fusion="bucket"``) — and shows that the fused path produces byte-identical
annotations while planning the corpus into shape buckets and running one
cross-table message-passing schedule per bucket.  A second fused pass hits
the content-addressed bundle cache, the serving steady state where the
speedup concentrates.

Run with::

    python examples/fused_corpus_annotation.py
"""

import os
import time

from repro import AnnotationPipeline
from repro.catalog.synthetic import generate_world
from repro.core.annotator import AnnotatorConfig
from repro.pipeline.io import annotation_to_dict
from repro.pipeline.pipeline import PipelineConfig
from repro.tables.generator import (
    NoiseProfile,
    TableGeneratorConfig,
    WebTableGenerator,
)

#: REPRO_SMOKE=1 shrinks the corpus so CI's examples job stays fast
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def annotate(world, tables, fusion: str):
    config = PipelineConfig(annotator=AnnotatorConfig(fusion=fusion))
    with AnnotationPipeline(world.annotator_view, config=config) as pipeline:
        first = time.perf_counter()
        payloads = [
            annotation_to_dict(annotation)
            for _table, annotation in pipeline.annotate_with_tables(tables)
        ]
        first_seconds = time.perf_counter() - first
        # second pass: every cache is warm (for the fused path that includes
        # the content-addressed fused bundles, so candidate generation and
        # graph compilation are skipped outright)
        warm = time.perf_counter()
        for _pair in pipeline.annotate_with_tables(tables):
            pass
        warm_seconds = time.perf_counter() - warm
        report = pipeline.last_report
    return payloads, first_seconds, warm_seconds, report


def main() -> None:
    world = generate_world()
    generator = WebTableGenerator(
        world.full,
        TableGeneratorConfig(
            seed=17,
            n_tables=16 if SMOKE else 60,
            rows_range=(3, 6),
            noise=NoiseProfile.WIKI,
        ),
    )
    tables = [labeled.table for labeled in generator.generate()]
    print(f"corpus: {len(tables)} tables")

    per_table, cold_off, warm_off, _ = annotate(world, tables, "off")
    fused, cold_on, warm_on, report = annotate(world, tables, "bucket")

    assert fused == per_table, "fused output must be byte-identical"
    print(f"annotations identical across modes: {fused == per_table}")
    print(f"fused batches: {report.fused_batches}")
    print(f"bucket-size histogram: {report.bucket_size_histogram}")
    print(f"cold pass:  per-table {cold_off:.3f}s   fused {cold_on:.3f}s")
    print(f"warm pass:  per-table {warm_off:.3f}s   fused {warm_on:.3f}s")
    print(f"warm speedup: {warm_off / warm_on:.2f}x")


if __name__ == "__main__":
    main()
