#!/usr/bin/env python3
"""A relational search engine over annotated Web tables (paper Section 5).

Builds a corpus of noisy movie/book/geography tables, trains the annotator,
indexes the corpus with its annotations, then answers queries like
"movies directed by <person>" with all three query processors — the string
baseline (paper Figure 3), type-annotated and type+relation-annotated search
(Figure 4) — and reports MAP against the ground-truth fact store.

Run with::

    python examples/movie_search_engine.py
"""

import os

from repro import AnnotatedSearcher, BaselineSearcher, TrainingConfig
from repro.catalog.synthetic import generate_world
from repro.eval.experiments import build_annotated_index, train_model
from repro.eval.metrics import average_precision
from repro.eval.workload import (
    build_search_corpus,
    build_search_workload,
    relevance_keys,
)
from repro.tables.generator import NoiseProfile, TableGeneratorConfig, WebTableGenerator

#: REPRO_SMOKE=1 shrinks the corpus so CI's examples job stays fast
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def main() -> None:
    world = generate_world()

    print("Training the annotator on clean tables ...")
    train_tables = WebTableGenerator(
        world.full,
        TableGeneratorConfig(
            seed=11,
            n_tables=8 if SMOKE else 16,
            noise=NoiseProfile.WIKI,
            id_prefix="train",
        ),
    ).generate()
    model = train_model(
        world, train_tables, training=TrainingConfig(epochs=2, seed=0)
    )

    print("Annotating and indexing the search corpus ...")
    corpus = build_search_corpus(world, n_tables=20 if SMOKE else 80, seed=23)
    index = build_annotated_index(world, corpus, model)
    print("index:", index.stats())

    searchers = {
        "baseline (Fig 3)": BaselineSearcher(index, world.annotator_view),
        "type-only (Fig 4)": AnnotatedSearcher(
            index, world.annotator_view, use_relations=False
        ),
        "type+relation": AnnotatedSearcher(
            index, world.annotator_view, use_relations=True
        ),
    }

    # Show one query in detail: movies directed by some director.
    workload = build_search_workload(world, queries_per_relation=5, seed=3)
    query = next(
        q for q in workload.queries if q.relation_id == "rel:directed"
    )
    relevant_entities = workload.relevant[query]
    print(
        f"\nQuery: {query.relation_id}(?, {query.given_text})  — "
        f"{len(relevant_entities)} relevant movies"
    )
    for name, searcher in searchers.items():
        response = searcher.search(query)
        keys = response.ranked_keys()
        ap = average_precision(keys, relevance_keys(world, relevant_entities))
        print(f"\n  {name}: AP={ap:.3f}, {len(response.answers)} answers")
        for answer in response.answers[:5]:
            tag = answer.entity_id or "(string)"
            print(f"    {answer.score:7.2f}  {answer.text[:40]:42} {tag}")

    # MAP over the whole workload.
    print("\nMAP over the full workload:")
    for name, searcher in searchers.items():
        ap_values = []
        for q in workload.queries:
            keys = searcher.search(q).ranked_keys()
            ap_values.append(
                average_precision(keys, relevance_keys(world, workload.relevant[q]))
            )
        print(f"  {name:18s} MAP = {sum(ap_values) / len(ap_values):.3f}")


if __name__ == "__main__":
    main()
