#!/usr/bin/env python3
"""Closed-loop load driver for the `repro serve` multi-worker tier.

Boots a pre-fork pool server over a freshly built bundle (so the example
is self-contained), then drives annotate traffic from a closed-loop
client population and prints throughput, client-side p50/p99, and the
dispatcher's view of the same run from ``/metrics`` — the numbers the
operations runbook (``docs/OPERATIONS.md``) tunes against.

Point ``--url`` at an already-running server to load-test that instead::

    repro serve --bundle bundle/ --port 8080 --workers 4
    python examples/serve_load_client.py --url http://localhost:8080

Set ``REPRO_SMOKE=1`` to run a seconds-scale variant (used by CI's
examples smoke job).
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import statistics
import tempfile
import threading
import time
from http.client import HTTPConnection
from pathlib import Path
from urllib.parse import urlparse

SMOKE = bool(os.environ.get("REPRO_SMOKE"))

#: distinct tables to annotate (distinct so worker caches don't turn the
#: load into a queueing-machinery microbenchmark)
N_REQUESTS = 8 if SMOKE else 48
#: closed-loop client threads
CLIENTS = 4
#: worker processes for the self-booted server
WORKERS = 2


def post_annotate(host: str, port: int, payload: dict) -> dict:
    connection = HTTPConnection(host, port, timeout=300)
    try:
        connection.request(
            "POST",
            "/annotate",
            body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        body = json.loads(response.read())
        if response.status != 200:
            raise RuntimeError(f"HTTP {response.status}: {body}")
        return body
    finally:
        connection.close()


def get_json(host: str, port: int, path: str) -> dict:
    connection = HTTPConnection(host, port, timeout=60)
    try:
        connection.request("GET", path)
        return json.loads(connection.getresponse().read())
    finally:
        connection.close()


def boot_pool_server():
    """Build a bundle and serve it through a 2-worker dispatcher."""
    from repro.api.config import ServeConfig, SessionConfig
    from repro.catalog.synthetic import SyntheticCatalogConfig, generate_world
    from repro.serve.bundle import build_bundle
    from repro.serve.dispatcher import Dispatcher
    from repro.serve.server import create_server
    from repro.tables.generator import (
        NoiseProfile,
        TableGeneratorConfig,
        WebTableGenerator,
    )

    world = generate_world(SyntheticCatalogConfig(seed=7))
    bundle_tables = WebTableGenerator(
        world.full,
        TableGeneratorConfig(
            seed=11, n_tables=4 if SMOKE else 20, noise=NoiseProfile.WIKI
        ),
    ).generate()
    bundle_dir = Path(tempfile.mkdtemp(prefix="repro-bundle-")) / "bundle"
    print(f"building bundle under {bundle_dir} ...")
    build_bundle(bundle_dir, world.annotator_view, bundle_tables)

    dispatcher = Dispatcher(
        bundle_dir,
        config=SessionConfig(
            serve=ServeConfig(workers=WORKERS, queue_depth=N_REQUESTS + CLIENTS)
        ),
    )
    server = create_server(dispatcher, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port} with {WORKERS} workers")

    # request corpus: distinct tables, separate from the bundle's
    request_tables = WebTableGenerator(
        world.full,
        TableGeneratorConfig(seed=1117, n_tables=N_REQUESTS, noise=NoiseProfile.WIKI),
    ).generate()
    payloads = [
        {"table": labeled.table.to_dict(), "include_timing": False}
        for labeled in request_tables
    ]
    return server, dispatcher, host, port, payloads


def drive(host: str, port: int, payloads: list[dict], clients: int):
    """Closed loop: ``clients`` threads drain the request set once."""
    work: queue.Queue[dict] = queue.Queue()
    for payload in payloads:
        work.put(payload)
    latencies: list[float] = []
    lock = threading.Lock()

    def client() -> None:
        while True:
            try:
                payload = work.get_nowait()
            except queue.Empty:
                return
            started = time.perf_counter()
            post_annotate(host, port, payload)
            with lock:
                latencies.append(time.perf_counter() - started)

    threads = [threading.Thread(target=client) for _ in range(clients)]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - wall_start, sorted(latencies)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--url",
        default=None,
        help="base URL of a running server (default: boot a 2-worker pool)",
    )
    parser.add_argument("--clients", type=int, default=CLIENTS)
    args = parser.parse_args()

    server = dispatcher = None
    if args.url:
        parsed = urlparse(args.url)
        host, port = parsed.hostname, parsed.port or 80
        # against an external server, replay one small demo table
        payloads = [
            {
                "table": {"table_id": f"load-{i}", "cells": [["example", "row"]]},
                "include_timing": False,
            }
            for i in range(N_REQUESTS)
        ]
    else:
        server, dispatcher, host, port, payloads = boot_pool_server()

    health = get_json(host, port, "/healthz")
    workers = health.get("workers", {})
    print(
        f"\n/healthz -> {health['status']}"
        + (f", {workers.get('alive')} worker(s) alive" if workers else "")
    )

    wall, latencies = drive(host, port, payloads, args.clients)
    p50 = statistics.median(latencies)
    p99 = latencies[min(len(latencies) - 1, int(0.99 * (len(latencies) - 1)))]
    print(
        f"drove {len(payloads)} annotate requests with {args.clients} "
        f"clients in {wall:.2f}s"
    )
    print(f"  throughput {len(payloads) / wall:6.2f} req/s")
    print(f"  latency    p50 {p50 * 1000:7.1f} ms   p99 {p99 * 1000:7.1f} ms")

    metrics = get_json(host, port, "/metrics")
    if "dispatcher" in metrics:
        pool = metrics["dispatcher"]
        print(
            f"  dispatcher: generation {pool['generation']}, "
            f"{pool['alive_workers']} workers, shed {pool['shed_total']}, "
            f"queue wait p99 {pool['queue_wait_seconds']['p99'] * 1000:.1f} ms"
        )
        for name, entry in sorted(metrics["workers"].items()):
            handler = entry["handler_seconds"]
            print(
                f"    {name}: {entry['requests']:3} requests, "
                f"handler p50 {handler['p50'] * 1000:.1f} ms"
            )

    if server is not None:
        server.shutdown()
        server.server_close()
    if dispatcher is not None:
        dispatcher.shutdown(drain_timeout=5.0)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
