#!/usr/bin/env python3
"""Documentation checks: markdown links, runnable examples, layer contract.

Three subcommands, all exercised by CI's ``docs`` job:

``links``
    Scan every tracked ``*.md`` file for relative links and verify each
    target resolves inside the repository.  Anchored links
    (``docs/FILE.md#section`` or ``#section``) are also checked against
    the target file's headings using GitHub's anchor slug rules, so a
    renamed section breaks the build rather than the reader.

``examples``
    Run every script under ``examples/`` with ``REPRO_SMOKE=1`` (the
    convention every example honours to shrink its corpus) and fail on
    any non-zero exit.  This keeps the examples from rotting as the API
    moves.

``layers``
    Verify ``docs/ARCHITECTURE.md`` contains, verbatim, every tier line
    of the import-layer contract declared in
    ``src/repro/analysis/layers.py`` — the same declaration ``repro
    lint``'s ``arch-layering`` rule enforces — so the documented contract
    cannot drift from the enforced one.

Run all with no arguments::

    python tools/check_docs.py
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: inline markdown links, including the multi-line ``[text\n](target)``
#: style this repo uses to keep lines short
LINK_PATTERN = re.compile(r"\]\(([^)\s]+)\)")
#: schemes that are external by definition — not ours to verify
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")
#: directories never scanned for markdown
SKIP_DIRS = {".git", ".venv", "__pycache__", "node_modules", ".mypy_cache"}


def iter_markdown_files() -> list[Path]:
    found = []
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if not SKIP_DIRS.intersection(part for part in path.parts):
            found.append(path)
    return found


def strip_code_blocks(text: str) -> str:
    """Drop fenced code blocks — their ``#`` lines are not headings and
    their bracketed text is not links."""
    out: list[str] = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def anchor_slug(heading: str) -> str:
    """GitHub's heading-to-anchor rule: lowercase, strip punctuation,
    spaces to hyphens."""
    text = heading.strip().lstrip("#").strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def collect_anchors(path: Path) -> set[str]:
    anchors = set()
    for line in strip_code_blocks(path.read_text()).splitlines():
        if line.startswith("#"):
            anchors.add(anchor_slug(line))
    return anchors


def check_links() -> list[str]:
    problems: list[str] = []
    for markdown in iter_markdown_files():
        text = strip_code_blocks(markdown.read_text())
        for target in LINK_PATTERN.findall(text):
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            relative = markdown.relative_to(REPO_ROOT)
            path_part, _, anchor = target.partition("#")
            resolved = (
                markdown if not path_part else (markdown.parent / path_part)
            ).resolve()
            if not resolved.exists():
                problems.append(f"{relative}: broken link -> {target}")
                continue
            if anchor and resolved.suffix == ".md":
                if anchor not in collect_anchors(resolved):
                    problems.append(
                        f"{relative}: anchor #{anchor} not found in "
                        f"{resolved.relative_to(REPO_ROOT)}"
                    )
    return problems


def check_examples() -> list[str]:
    problems: list[str] = []
    environment = dict(os.environ, REPRO_SMOKE="1")
    environment["PYTHONPATH"] = (
        f"{REPO_ROOT / 'src'}{os.pathsep}{environment.get('PYTHONPATH', '')}"
    )
    scripts = sorted((REPO_ROOT / "examples").glob("*.py"))
    for script in scripts:
        name = script.relative_to(REPO_ROOT)
        started = time.perf_counter()
        result = subprocess.run(
            [sys.executable, str(script)],
            env=environment,
            capture_output=True,
            text=True,
            timeout=600,
        )
        elapsed = time.perf_counter() - started
        if result.returncode != 0:
            problems.append(
                f"{name}: exit {result.returncode}\n"
                f"--- stderr (tail) ---\n{result.stderr[-2000:]}"
            )
            print(f"  FAIL {name} ({elapsed:.1f}s)")
        else:
            print(f"  ok   {name} ({elapsed:.1f}s)")
    return problems


def check_layers() -> list[str]:
    """``docs/ARCHITECTURE.md`` must contain every declared tier line."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.analysis.layers import contract_lines
    finally:
        sys.path.pop(0)
    architecture = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
    problems: list[str] = []
    for line in contract_lines():
        if line not in architecture:
            problems.append(
                f"docs/ARCHITECTURE.md: missing layer-contract line "
                f"{line!r} (see src/repro/analysis/layers.py)"
            )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "check",
        nargs="?",
        choices=("links", "examples", "layers", "all"),
        default="all",
    )
    args = parser.parse_args()

    problems: list[str] = []
    if args.check in ("links", "all"):
        print("checking intra-repo markdown links ...")
        link_problems = check_links()
        problems.extend(link_problems)
        print(f"  {len(iter_markdown_files())} files, {len(link_problems)} broken")
    if args.check in ("layers", "all"):
        print("checking ARCHITECTURE.md against the declared layer contract ...")
        layer_problems = check_layers()
        problems.extend(layer_problems)
        print(f"  {len(layer_problems)} drifted line(s)")
    if args.check in ("examples", "all"):
        print("running examples/ in smoke mode (REPRO_SMOKE=1) ...")
        problems.extend(check_examples())

    if problems:
        print("\nFAILURES:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("docs checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
