"""Extraction of regular tables from raw HTML.

Built on :class:`html.parser.HTMLParser` (no external dependencies).  Follows
the paper's preprocessing rules (Section 3.2):

* tables using merged rows/columns (``rowspan``/``colspan`` > 1) are
  discarded,
* only perfectly regular grids (cells = rows × columns) survive,
* a header row is recognised from ``<th>`` cells (or a ``<thead>`` section),
* a window of text preceding each table is captured as its context,
* the relational/formatting screen of :mod:`repro.tables.classify` is applied
  unless the caller opts out.

A table *containing* a nested table is treated as layout and discarded; the
inner table is parsed on its own merits — on layout-heavy pages the real
relational grid usually sits inside a formatting shell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html.parser import HTMLParser

from repro.tables.classify import TableClass, classify_table
from repro.tables.model import Table
from repro.text.normalize import normalize_text

#: How many trailing characters of page text become the table context.
CONTEXT_WINDOW_CHARS = 200


@dataclass
class _RawTable:
    rows: list[list[str]] = field(default_factory=list)
    header_flags: list[list[bool]] = field(default_factory=list)
    context: str = ""
    merged: bool = False
    nested: bool = False


class _TableHTMLParser(HTMLParser):
    """Streams HTML, accumulating tables and the text between them."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.tables: list[_RawTable] = []
        self._table_stack: list[_RawTable] = []
        self._current_row: list[str] | None = None
        self._current_flags: list[bool] | None = None
        self._cell_chunks: list[str] | None = None
        self._cell_is_header = False
        self._page_text: list[str] = []

    # -- tag events ----------------------------------------------------
    def handle_starttag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        if tag == "table":
            if self._table_stack:
                self._table_stack[-1].nested = True
            raw = _RawTable(context=self._recent_text())
            self._table_stack.append(raw)
        elif tag == "tr" and self._table_stack:
            self._current_row = []
            self._current_flags = []
        elif tag in ("td", "th") and self._table_stack:
            attr_map = {name: value for name, value in attrs}
            for span_attr in ("rowspan", "colspan"):
                raw_span = attr_map.get(span_attr)
                if raw_span is not None and raw_span.strip() not in ("", "1"):
                    self._table_stack[-1].merged = True
            self._cell_chunks = []
            self._cell_is_header = tag == "th"

    def handle_endtag(self, tag: str) -> None:
        if tag in ("td", "th") and self._cell_chunks is not None:
            if self._current_row is not None and self._current_flags is not None:
                text = normalize_text("".join(self._cell_chunks), strip_bracketed=False)
                self._current_row.append(text)
                self._current_flags.append(self._cell_is_header)
            self._cell_chunks = None
        elif tag == "tr" and self._table_stack:
            if self._current_row:
                self._table_stack[-1].rows.append(self._current_row)
                self._table_stack[-1].header_flags.append(self._current_flags or [])
            self._current_row = None
            self._current_flags = None
        elif tag == "table" and self._table_stack:
            self.tables.append(self._table_stack.pop())

    def handle_data(self, data: str) -> None:
        if self._cell_chunks is not None:
            self._cell_chunks.append(data)
        elif not self._table_stack:
            stripped = data.strip()
            if stripped:
                self._page_text.append(stripped)

    def _recent_text(self) -> str:
        joined = " ".join(self._page_text)
        return joined[-CONTEXT_WINDOW_CHARS:].strip()


def extract_tables_from_html(
    html_text: str,
    source: str | None = None,
    screen_relational: bool = True,
    id_prefix: str = "html",
) -> list[Table]:
    """Extract regular (and optionally relational) tables from HTML.

    Args:
        html_text: The page markup.
        source: Provenance recorded on each extracted table.
        screen_relational: Apply :func:`classify_table` and keep only
            :data:`TableClass.RELATIONAL` tables (the paper's preprocessing).
        id_prefix: Extracted tables are ids ``{prefix}:0``, ``{prefix}:1``...
            in document order of the *kept* tables.

    Returns:
        A list of :class:`Table`; never raises on malformed markup (the
        stdlib parser is forgiving by design).
    """
    parser = _TableHTMLParser()
    parser.feed(html_text)
    parser.close()
    extracted: list[Table] = []
    for raw in parser.tables:
        if raw.merged or raw.nested or not raw.rows:
            continue
        width = len(raw.rows[0])
        if width == 0 or any(len(row) != width for row in raw.rows):
            continue  # not a regular grid
        headers: list[str | None] | None = None
        body_rows = raw.rows
        first_flags = raw.header_flags[0] if raw.header_flags else []
        if first_flags and all(first_flags):
            headers = [cell if cell else None for cell in raw.rows[0]]
            body_rows = raw.rows[1:]
        if not body_rows:
            continue
        table = Table(
            table_id=f"{id_prefix}:{len(extracted)}",
            cells=[list(row) for row in body_rows],
            headers=headers,
            context=raw.context,
            source=source,
        )
        if screen_relational and classify_table(table) is not TableClass.RELATIONAL:
            continue
        extracted.append(table)
    return extracted
