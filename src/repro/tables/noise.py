"""Seeded text-noise channels for the Web-table generator.

The accuracy gap between the paper's Wiki Manual and Web Manual datasets comes
from "the more noisy nature of text in Web tables compared to Wikipedia"
(Section 6.1.1).  :class:`NoiseModel` reproduces that noise with independent
channels, each gated by its own probability:

* **typo** — a single character swap/drop/duplication inside a token,
* **token drop** — a non-leading token disappears ("Albert Einstein" →
  "Albert"),
* **abbreviation** — the leading token collapses to an initial
  ("Albert Einstein" → "A. Einstein"),
* **case mangling** — all-lower or ALL-UPPER cell text,
* **junk suffix** — footnote-style decoration appended,
* **header synonym / drop** — headers swapped for a synonym from a provided
  pool or removed entirely.

Channels are applied in a fixed order using a caller-supplied ``random.Random``
so that the generator's output is a pure function of its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass
class NoiseModel:
    """Per-channel probabilities; defaults are all-off (clean text)."""

    typo_prob: float = 0.0
    token_drop_prob: float = 0.0
    abbreviation_prob: float = 0.0
    case_mangle_prob: float = 0.0
    junk_suffix_prob: float = 0.0
    header_synonym_prob: float = 0.0
    header_drop_prob: float = 0.0

    def validate(self) -> None:
        for name, value in vars(self).items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of [0, 1]: {value}")

    # ------------------------------------------------------------------
    # cell text
    # ------------------------------------------------------------------
    def corrupt_cell(self, text: str, rng: random.Random) -> str:
        """Apply cell channels to ``text``; returns a non-empty string."""
        if not text:
            return text
        result = text
        if self.abbreviation_prob and rng.random() < self.abbreviation_prob:
            result = _abbreviate(result)
        if self.token_drop_prob and rng.random() < self.token_drop_prob:
            result = _drop_token(result, rng)
        if self.typo_prob and rng.random() < self.typo_prob:
            result = _typo(result, rng)
        if self.case_mangle_prob and rng.random() < self.case_mangle_prob:
            result = result.lower() if rng.random() < 0.7 else result.upper()
        if self.junk_suffix_prob and rng.random() < self.junk_suffix_prob:
            result = result + rng.choice((" *", " †", " [1]", " (?)"))
        return result if result.strip() else text

    # ------------------------------------------------------------------
    # headers
    # ------------------------------------------------------------------
    def corrupt_header(
        self,
        header: str,
        rng: random.Random,
        synonyms: tuple[str, ...] = (),
    ) -> str | None:
        """Apply header channels; ``None`` means the header was dropped."""
        if self.header_drop_prob and rng.random() < self.header_drop_prob:
            return None
        result = header
        if (
            synonyms
            and self.header_synonym_prob
            and rng.random() < self.header_synonym_prob
        ):
            result = rng.choice(synonyms)
        if self.typo_prob and rng.random() < self.typo_prob:
            result = _typo(result, rng)
        return result


def _typo(text: str, rng: random.Random) -> str:
    """One character-level error at a random alphabetic position."""
    positions = [i for i, char in enumerate(text) if char.isalpha()]
    if not positions:
        return text
    position = rng.choice(positions)
    mode = rng.randrange(3)
    if mode == 0 and position + 1 < len(text):  # swap with next char
        chars = list(text)
        chars[position], chars[position + 1] = chars[position + 1], chars[position]
        return "".join(chars)
    if mode == 1 and len(text) > 3:  # drop
        return text[:position] + text[position + 1 :]
    return text[: position + 1] + text[position] + text[position + 1 :]  # duplicate


def _drop_token(text: str, rng: random.Random) -> str:
    tokens = text.split()
    if len(tokens) < 2:
        return text
    drop_index = rng.randrange(1, len(tokens))
    return " ".join(tokens[:drop_index] + tokens[drop_index + 1 :])


def _abbreviate(text: str) -> str:
    tokens = text.split()
    if len(tokens) < 2 or not tokens[0][0].isalpha():
        return text
    return f"{tokens[0][0]}. " + " ".join(tokens[1:])


#: Noise preset approximating Wikipedia article tables (nearly clean).
WIKI_NOISE = NoiseModel(
    typo_prob=0.01,
    token_drop_prob=0.01,
    abbreviation_prob=0.05,
    header_synonym_prob=0.15,
    header_drop_prob=0.05,
)

#: Noise preset approximating open-Web tables (noisy text, flaky headers).
WEB_NOISE = NoiseModel(
    typo_prob=0.08,
    token_drop_prob=0.07,
    abbreviation_prob=0.18,
    case_mangle_prob=0.10,
    junk_suffix_prob=0.08,
    header_synonym_prob=0.35,
    header_drop_prob=0.25,
)
