"""Corpora of (labeled) tables with JSONL persistence."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.tables.model import LabeledTable, Table


class TableCorpus:
    """An ordered collection of :class:`LabeledTable` with id lookup.

    Unlabeled tables are stored as :class:`LabeledTable` with empty truth, so
    a corpus has one shape whether or not ground truth exists.
    """

    def __init__(self, tables: Iterable[LabeledTable | Table] = ()) -> None:
        self._tables: list[LabeledTable] = []
        self._by_id: dict[str, int] = {}
        for table in tables:
            self.add(table)

    def add(self, table: LabeledTable | Table) -> None:
        labeled = table if isinstance(table, LabeledTable) else LabeledTable(table)
        if labeled.table_id in self._by_id:
            raise ValueError(f"duplicate table id: {labeled.table_id!r}")
        self._by_id[labeled.table_id] = len(self._tables)
        self._tables.append(labeled)

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[LabeledTable]:
        return iter(self._tables)

    def __getitem__(self, index: int) -> LabeledTable:
        return self._tables[index]

    def get(self, table_id: str) -> LabeledTable:
        try:
            return self._tables[self._by_id[table_id]]
        except KeyError:
            raise KeyError(f"unknown table id: {table_id!r}") from None

    def __contains__(self, table_id: str) -> bool:
        return table_id in self._by_id

    def filter(self, predicate: Callable[[LabeledTable], bool]) -> "TableCorpus":
        """A new corpus with only the tables satisfying ``predicate``."""
        return TableCorpus(table for table in self._tables if predicate(table))

    def split(self, n_first: int) -> tuple["TableCorpus", "TableCorpus"]:
        """Deterministic prefix/suffix split (used for train/test)."""
        return (
            TableCorpus(self._tables[:n_first]),
            TableCorpus(self._tables[n_first:]),
        )

    # ------------------------------------------------------------------
    # statistics (feeds the Figure 5 reproduction)
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, float]:
        """Dataset summary in the shape of the paper's Figure 5 rows."""
        n_tables = len(self._tables)
        total_rows = sum(labeled.table.n_rows for labeled in self._tables)
        entity_truth = sum(
            len(labeled.truth.cell_entities) for labeled in self._tables
        )
        type_truth = sum(len(labeled.truth.column_types) for labeled in self._tables)
        relation_truth = sum(len(labeled.truth.relations) for labeled in self._tables)
        return {
            "tables": n_tables,
            "avg_rows": (total_rows / n_tables) if n_tables else 0.0,
            "entity_annotations": entity_truth,
            "type_annotations": type_truth,
            "relation_annotations": relation_truth,
        }


def save_corpus_jsonl(corpus: TableCorpus, path: str | Path) -> None:
    """Write one JSON object per table to ``path``."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for labeled in corpus:
            handle.write(json.dumps(labeled.to_dict(), ensure_ascii=False))
            handle.write("\n")


def load_corpus_jsonl(path: str | Path) -> TableCorpus:
    """Read a corpus written by :func:`save_corpus_jsonl`."""
    path = Path(path)
    corpus = TableCorpus()
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            corpus.add(LabeledTable.from_dict(json.loads(line)))
    return corpus
