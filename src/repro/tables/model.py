"""Table data model, mirroring the paper's source representation (Section 3.2).

A :class:`Table` is a perfectly regular grid (cells = rows × columns — merged
cells were screened out upstream) plus optional per-column headers and a short
context text.  :class:`TableTruth` carries ground-truth annotations where
known; ``None`` inside a truth mapping means the ground truth is the paper's
``na`` ("no annotation") label, while a *missing* key means no ground truth
was collected for that slot (the slot is then excluded from evaluation,
matching "If ground truth is missing ... we drop it from the labeling task").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class Table:
    """One source table.

    Attributes:
        table_id: Corpus-unique identifier.
        cells: Row-major grid of cell text; every row has equal length.
        headers: Per-column header text or ``None`` when the column (or the
            whole table) has no header row.
        context: Short text surrounding the table (caption, nearby sentence).
        source: Optional provenance (URL / generator tag).
    """

    table_id: str
    cells: list[list[str]]
    headers: list[str | None] | None = None
    context: str = ""
    source: str | None = None

    def __post_init__(self) -> None:
        if self.cells:
            width = len(self.cells[0])
            for row_index, row in enumerate(self.cells):
                if len(row) != width:
                    raise ValueError(
                        f"table {self.table_id!r}: row {row_index} has "
                        f"{len(row)} cells, expected {width}"
                    )
            if self.headers is not None and len(self.headers) != width:
                raise ValueError(
                    f"table {self.table_id!r}: {len(self.headers)} headers for "
                    f"{width} columns"
                )
        elif self.headers:
            raise ValueError(f"table {self.table_id!r}: headers without cells")

    @property
    def n_rows(self) -> int:
        return len(self.cells)

    @property
    def n_columns(self) -> int:
        return len(self.cells[0]) if self.cells else 0

    def cell(self, row: int, column: int) -> str:
        return self.cells[row][column]

    def column(self, column: int) -> list[str]:
        """All cell texts of one column, top to bottom."""
        return [row[column] for row in self.cells]

    def header(self, column: int) -> str | None:
        if self.headers is None:
            return None
        return self.headers[column]

    def iter_cells(self) -> Iterator[tuple[int, int, str]]:
        """Yield ``(row, column, text)`` for every cell."""
        for row_index, row in enumerate(self.cells):
            for column_index, text in enumerate(row):
                yield row_index, column_index, text

    def to_dict(self) -> dict[str, Any]:
        return {
            "table_id": self.table_id,
            "cells": self.cells,
            "headers": self.headers,
            "context": self.context,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Table":
        return cls(
            table_id=payload["table_id"],
            cells=[list(row) for row in payload["cells"]],
            headers=(
                list(payload["headers"]) if payload.get("headers") is not None else None
            ),
            context=payload.get("context", ""),
            source=payload.get("source"),
        )


@dataclass
class TableTruth:
    """Ground-truth annotations for one table (all mappings partial).

    ``cell_entities[(r, c)]`` is an entity id or ``None`` (= true label na);
    ``column_types[c]`` is a type id or ``None``; ``relations[(c, c')]`` is a
    relation id or ``None`` with ``c < c'`` by convention.
    """

    cell_entities: dict[tuple[int, int], str | None] = field(default_factory=dict)
    column_types: dict[int, str | None] = field(default_factory=dict)
    relations: dict[tuple[int, int], str | None] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "cell_entities": {
                f"{r},{c}": entity for (r, c), entity in self.cell_entities.items()
            },
            "column_types": {str(c): t for c, t in self.column_types.items()},
            "relations": {
                f"{c},{d}": rel for (c, d), rel in self.relations.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TableTruth":
        cell_entities = {}
        for key, entity in payload.get("cell_entities", {}).items():
            row, column = key.split(",")
            cell_entities[(int(row), int(column))] = entity
        column_types = {
            int(column): type_id
            for column, type_id in payload.get("column_types", {}).items()
        }
        relations = {}
        for key, relation in payload.get("relations", {}).items():
            left, right = key.split(",")
            relations[(int(left), int(right))] = relation
        return cls(
            cell_entities=cell_entities,
            column_types=column_types,
            relations=relations,
        )


@dataclass
class LabeledTable:
    """A table together with (possibly partial) ground truth."""

    table: Table
    truth: TableTruth = field(default_factory=TableTruth)

    @property
    def table_id(self) -> str:
        return self.table.table_id

    def to_dict(self) -> dict[str, Any]:
        return {"table": self.table.to_dict(), "truth": self.truth.to_dict()}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "LabeledTable":
        return cls(
            table=Table.from_dict(payload["table"]),
            truth=TableTruth.from_dict(payload.get("truth", {})),
        )

    def strip_to_entities(self) -> "LabeledTable":
        """Keep only cell-entity truth (the Wiki Link dataset shape)."""
        return LabeledTable(
            table=self.table,
            truth=TableTruth(cell_entities=dict(self.truth.cell_entities)),
        )

    def strip_to_relations(self) -> "LabeledTable":
        """Keep only relation truth (the Web Relations dataset shape)."""
        return LabeledTable(
            table=self.table,
            truth=TableTruth(relations=dict(self.truth.relations)),
        )
