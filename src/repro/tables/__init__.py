"""Table substrate: table model, HTML extraction and the noisy generator.

The paper's source model (Section 3.2) represents a table as context text,
optional header cells, and an m×n grid of short text cells; formatting tables
and tables with merged cells are discarded.  This package provides:

* :mod:`repro.tables.model` — :class:`Table` and :class:`LabeledTable`
  (ground-truth cell entity / column type / column-pair relation labels),
* :mod:`repro.tables.html_extract` — extraction of regular tables from HTML,
* :mod:`repro.tables.classify` — WebTables-style relational-vs-formatting
  screening heuristics [6],
* :mod:`repro.tables.noise` — seeded text-noise channels (typos,
  abbreviations, token drops, header synonyms),
* :mod:`repro.tables.generator` — renders noisy Web-table analogues from a
  catalog's relations, with full ground truth,
* :mod:`repro.tables.corpus` — JSONL-backed corpora of (labeled) tables.
"""

from repro.tables.classify import TableClass, classify_table
from repro.tables.corpus import TableCorpus, load_corpus_jsonl, save_corpus_jsonl
from repro.tables.generator import (
    NoiseProfile,
    TableGeneratorConfig,
    WebTableGenerator,
)
from repro.tables.html_extract import extract_tables_from_html
from repro.tables.model import LabeledTable, Table, TableTruth
from repro.tables.noise import NoiseModel

__all__ = [
    "LabeledTable",
    "NoiseModel",
    "NoiseProfile",
    "Table",
    "TableClass",
    "TableCorpus",
    "TableGeneratorConfig",
    "TableTruth",
    "WebTableGenerator",
    "classify_table",
    "extract_tables_from_html",
    "load_corpus_jsonl",
    "save_corpus_jsonl",
]
