"""Relational-vs-formatting table screening.

The paper preprocesses its 500M-page crawl with the WebTables heuristics [6]:
most HTML tables implement visual layout, and only a small fraction carry
relational data.  This module reimplements that screening for extracted
tables: size floors, regularity, cell-length statistics and column-consistency
checks.  It is used by :mod:`repro.tables.html_extract` and exercised directly
by the web-crawl example.
"""

from __future__ import annotations

import enum
import statistics

from repro.tables.model import Table


class TableClass(enum.Enum):
    """Outcome of the screening decision."""

    RELATIONAL = "relational"
    FORMATTING = "formatting"
    TOO_SMALL = "too_small"
    IRREGULAR = "irregular"


#: Cells longer than this are prose paragraphs, not relational values.
MAX_AVG_CELL_CHARS = 80.0
#: Minimum data rows / columns for a table to be meaningfully relational.
MIN_ROWS = 2
MIN_COLUMNS = 2
#: Fraction of empty cells beyond which a table is layout scaffolding.
MAX_EMPTY_FRACTION = 0.4


def classify_table(table: Table) -> TableClass:
    """Classify a regular table as relational or formatting.

    The checks, in order:

    1. size floor (``MIN_ROWS`` × ``MIN_COLUMNS``),
    2. emptiness — formatting tables are full of blank spacer cells,
    3. prose detection — long average cell text means paragraph layout,
    4. column-type consistency — in a relational table most columns are
       homogeneous (all-numeric or mostly-short-text); a table whose columns
       mix wildly is likely layout.
    """
    if table.n_rows < MIN_ROWS or table.n_columns < MIN_COLUMNS:
        return TableClass.TOO_SMALL

    cell_texts = [text for _r, _c, text in table.iter_cells()]
    total = len(cell_texts)
    empty = sum(1 for text in cell_texts if not text.strip())
    if total and empty / total > MAX_EMPTY_FRACTION:
        return TableClass.FORMATTING

    lengths = [len(text) for text in cell_texts if text.strip()]
    if lengths and statistics.fmean(lengths) > MAX_AVG_CELL_CHARS:
        return TableClass.FORMATTING

    consistent_columns = 0
    for column_index in range(table.n_columns):
        if _column_is_consistent(table.column(column_index)):
            consistent_columns += 1
    if consistent_columns < max(2, table.n_columns // 2):
        return TableClass.FORMATTING

    return TableClass.RELATIONAL


def _column_is_consistent(values: list[str]) -> bool:
    """A column is consistent when its non-empty cells look alike."""
    non_empty = [value.strip() for value in values if value.strip()]
    if len(non_empty) < 2:
        return False
    numeric = sum(1 for value in non_empty if _looks_numeric(value))
    if numeric >= 0.8 * len(non_empty):
        return True
    if numeric > 0.5 * len(non_empty):
        return False
    lengths = [len(value) for value in non_empty]
    mean_length = statistics.fmean(lengths)
    if mean_length > MAX_AVG_CELL_CHARS:
        return False
    if len(lengths) >= 2:
        spread = statistics.pstdev(lengths)
        if mean_length > 0 and spread / mean_length > 2.5:
            return False
    return True


def _looks_numeric(value: str) -> bool:
    stripped = value.replace(",", "").replace("%", "").replace("$", "").strip()
    if not stripped:
        return False
    try:
        float(stripped)
    except ValueError:
        return False
    return True
