"""Seeded generator of noisy Web-table analogues with full ground truth.

Plays the role of the paper's 25-million-table crawl snapshot: every
generated table renders a slice of some catalog relation ``B(T1, T2)`` into a
grid, with

* the subject entity of each sampled tuple in one column and the object in
  another (optionally order-swapped, producing *reversed* relation truth),
* optional extra object columns drawn from a second relation sharing the same
  subject type (a movie table with both director and producer columns — the
  column *pair* (director, producer) then truly has no catalog relation,
  exercising the ``na`` label),
* optional numeric columns (years consistent with the entity's decade
  category) whose true type/entity labels are ``na``,
* out-of-catalog rows whose true entity labels are ``na``,
* headers sampled from type/relation lemmas then passed through the noise
  channels of :mod:`repro.tables.noise`, and context sentences mentioning the
  relation.

All sampling uses one ``random.Random(seed)`` stream.
"""

from __future__ import annotations

import enum
import random
import re
from dataclasses import dataclass, field

from repro.catalog import names
from repro.catalog.catalog import Catalog
from repro.tables.model import LabeledTable, Table, TableTruth
from repro.tables.noise import NoiseModel, WEB_NOISE, WIKI_NOISE

#: Suffix marking a relation label whose subject column is the *right* column
#: of the pair.  ``rel:directed`` on (c, c') means B(column c, column c');
#: ``rel:directed^-1`` means B(column c', column c).
REVERSED_SUFFIX = "^-1"


def reversed_label(relation_id: str) -> str:
    """The label for ``relation_id`` read right-to-left across a column pair."""
    if relation_id.endswith(REVERSED_SUFFIX):
        return relation_id[: -len(REVERSED_SUFFIX)]
    return relation_id + REVERSED_SUFFIX


def base_relation(label: str) -> tuple[str, bool]:
    """Split a (possibly reversed) relation label into (relation_id, reversed)."""
    if label.endswith(REVERSED_SUFFIX):
        return label[: -len(REVERSED_SUFFIX)], True
    return label, False


class NoiseProfile(enum.Enum):
    """Named noise presets matching the paper's dataset families."""

    CLEAN = "clean"
    WIKI = "wiki"
    WEB = "web"

    def model(self) -> NoiseModel:
        if self is NoiseProfile.CLEAN:
            return NoiseModel()
        if self is NoiseProfile.WIKI:
            return WIKI_NOISE
        return WEB_NOISE


@dataclass
class TableGeneratorConfig:
    """Knobs for table synthesis."""

    seed: int = 11
    n_tables: int = 40
    rows_range: tuple[int, int] = (6, 24)
    noise: NoiseProfile | NoiseModel = NoiseProfile.WIKI
    #: probability a row's object (or subject) is an out-of-catalog string
    unknown_cell_prob: float = 0.04
    #: probability a table gets a numeric "Year" column
    numeric_column_prob: float = 0.45
    #: probability of a second object column from a compatible relation
    extra_object_column_prob: float = 0.35
    #: probability the subject/object columns are emitted right-to-left
    swap_columns_prob: float = 0.2
    #: probability the table is *category-scoped*: subjects drawn from one
    #: fine category ("List of 1990s films ..."), whose id becomes the
    #: subject column's true type — the paper's datasets are full of such
    #: Wikipedia-list tables, and they are what LCA over-generalises on
    scoped_subject_prob: float = 0.45
    #: probability a cell uses a non-primary lemma of its entity
    alternate_lemma_prob: float = 0.3
    #: restrict generated tables to these relations (default: all rich enough)
    relations: tuple[str, ...] = field(default_factory=tuple)
    #: minimum tuples a relation needs to be eligible
    min_relation_tuples: int = 4
    id_prefix: str = "gen"

    def noise_model(self) -> NoiseModel:
        model = (
            self.noise.model() if isinstance(self.noise, NoiseProfile) else self.noise
        )
        model.validate()
        return model


_DECADE_TYPE_RE = re.compile(r"type:cat:(\d{4})s_")


class WebTableGenerator:
    """Renders labeled tables from a (ground-truth) catalog."""

    def __init__(self, catalog: Catalog, config: TableGeneratorConfig | None = None):
        self.catalog = catalog
        self.config = config if config is not None else TableGeneratorConfig()
        self._noise = self.config.noise_model()
        eligible = []
        wanted = set(self.config.relations)
        for relation in catalog.relations.all_relations():
            if wanted and relation.relation_id not in wanted:
                continue
            if (
                catalog.relations.tuple_count(relation.relation_id)
                >= self.config.min_relation_tuples
            ):
                eligible.append(relation.relation_id)
        if not eligible:
            raise ValueError("no relation has enough tuples to generate tables")
        self._eligible_relations = sorted(eligible)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self) -> list[LabeledTable]:
        """Generate ``config.n_tables`` labeled tables."""
        rng = random.Random(self.config.seed)
        tables = []
        for index in range(self.config.n_tables):
            tables.append(self._generate_one(rng, index))
        return tables

    def generate_one(self, seed: int, table_id: str | None = None) -> LabeledTable:
        """Generate a single table from an explicit seed (used in tests)."""
        rng = random.Random(seed)
        labeled = self._generate_one(rng, 0)
        if table_id is not None:
            labeled.table.table_id = table_id
        return labeled

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _generate_one(self, rng: random.Random, index: int) -> LabeledTable:
        relation_id = rng.choice(self._eligible_relations)
        relation = self.catalog.relations.get(relation_id)
        subjects = sorted(self.catalog.relations.participating_subjects(relation_id))
        lo, hi = self.config.rows_range
        subject_scope: str | None = None
        if rng.random() < self.config.scoped_subject_prob:
            scoped = self._pick_subject_scope(rng, relation_id, relation.subject_type)
            if scoped is not None:
                subject_scope, subjects = scoped
        target_rows = rng.randint(lo, hi)
        n_rows = min(target_rows, len(subjects))
        chosen_subjects = rng.sample(subjects, n_rows)

        # Optional second object column sharing the subject type.
        extra_relation_id: str | None = None
        if rng.random() < self.config.extra_object_column_prob:
            extra_relation_id = self._pick_extra_relation(rng, relation_id)

        columns: list[dict] = [
            {
                "kind": "subject",
                "type": subject_scope or relation.subject_type,
                "relation": None,
            }
        ]
        columns.append(
            {"kind": "object", "type": relation.object_type, "relation": relation_id}
        )
        if extra_relation_id is not None:
            extra = self.catalog.relations.get(extra_relation_id)
            columns.append(
                {
                    "kind": "object",
                    "type": extra.object_type,
                    "relation": extra_relation_id,
                }
            )
        if rng.random() < self.config.numeric_column_prob:
            columns.append({"kind": "year", "type": None, "relation": None})

        swap = rng.random() < self.config.swap_columns_prob and len(columns) >= 2
        if swap:
            columns[0], columns[1] = columns[1], columns[0]
        subject_col = next(
            i for i, column in enumerate(columns) if column["kind"] == "subject"
        )

        truth = TableTruth()
        grid: list[list[str]] = []
        headers: list[str | None] = []
        for column_index, column in enumerate(columns):
            headers.append(self._render_header(rng, column))
            if column["kind"] == "year":
                truth.column_types[column_index] = None
            else:
                truth.column_types[column_index] = column["type"]

        for row_index, subject in enumerate(chosen_subjects):
            row: list[str] = [""] * len(columns)
            subject_unknown = rng.random() < self.config.unknown_cell_prob
            subject_entity = None if subject_unknown else subject
            row[subject_col] = self._render_entity_cell(
                rng, subject, unknown=subject_unknown
            )
            truth.cell_entities[(row_index, subject_col)] = subject_entity
            for column_index, column in enumerate(columns):
                if column_index == subject_col:
                    continue
                if column["kind"] == "year":
                    row[column_index] = str(self._year_for(rng, subject))
                    truth.cell_entities[(row_index, column_index)] = None
                    continue
                object_entity = self._object_for(rng, column["relation"], subject)
                if object_entity is None or rng.random() < self.config.unknown_cell_prob:
                    row[column_index] = self._render_unknown_cell(rng, column["type"])
                    truth.cell_entities[(row_index, column_index)] = None
                else:
                    row[column_index] = self._render_entity_cell(rng, object_entity)
                    truth.cell_entities[(row_index, column_index)] = object_entity
            grid.append(row)

        # Relation truth for every ordered pair (left < right).
        for left in range(len(columns)):
            for right in range(left + 1, len(columns)):
                label = self._pair_truth(columns, left, right, subject_col)
                truth.relations[(left, right)] = label

        if all(header is None for header in headers):
            final_headers: list[str | None] | None = None
        else:
            final_headers = headers
        context = self._render_context(rng, relation)
        table = Table(
            table_id=f"{self.config.id_prefix}:{index:05d}",
            cells=grid,
            headers=final_headers,
            context=context,
            source="synthetic-web",
        )
        return LabeledTable(table=table, truth=truth)

    def _pair_truth(
        self, columns: list[dict], left: int, right: int, subject_col: int
    ) -> str | None:
        left_col, right_col = columns[left], columns[right]
        if left_col["kind"] == "subject" and right_col["relation"]:
            return right_col["relation"]
        if right_col["kind"] == "subject" and left_col["relation"]:
            return reversed_label(left_col["relation"])
        return None

    def _pick_subject_scope(
        self, rng: random.Random, relation_id: str, subject_type: str
    ) -> tuple[str, list[str]] | None:
        """A fine category with enough relation participants, if any.

        Returns ``(category_id, member subjects)`` — the generated table then
        mimics a "List of <category> ..." page and the category becomes the
        subject column's true type.
        """
        participants = self.catalog.relations.participating_subjects(relation_id)
        options: list[tuple[str, list[str]]] = []
        for category in sorted(self.catalog.types.descendants(subject_type)):
            if not category.startswith("type:cat:"):
                continue
            members = sorted(self.catalog.entities_of_type(category) & participants)
            if len(members) >= self.config.rows_range[0]:
                options.append((category, members))
        if not options:
            return None
        return options[rng.randrange(len(options))]

    def _pick_extra_relation(
        self, rng: random.Random, relation_id: str
    ) -> str | None:
        relation = self.catalog.relations.get(relation_id)
        options = []
        for candidate in self._eligible_relations:
            if candidate == relation_id:
                continue
            other = self.catalog.relations.get(candidate)
            if other.subject_type != relation.subject_type:
                continue
            shared = self.catalog.relations.participating_subjects(
                relation_id
            ) & self.catalog.relations.participating_subjects(candidate)
            if len(shared) >= self.config.rows_range[0]:
                options.append(candidate)
        if not options:
            return None
        return rng.choice(sorted(options))

    def _object_for(
        self, rng: random.Random, relation_id: str | None, subject: str
    ) -> str | None:
        if relation_id is None:
            return None
        objects = sorted(self.catalog.relations.objects_of(relation_id, subject))
        if not objects:
            return None
        return rng.choice(objects)

    def _render_entity_cell(
        self, rng: random.Random, entity_id: str, unknown: bool = False
    ) -> str:
        if unknown:
            entity = self.catalog.entities.get(entity_id)
            return self._render_unknown_like(rng, entity.primary_lemma)
        lemmas = self.catalog.entities.lemmas(entity_id)
        if not lemmas:
            text = entity_id
        elif len(lemmas) > 1 and rng.random() < self.config.alternate_lemma_prob:
            text = rng.choice(lemmas[1:])
        else:
            text = lemmas[0]
        return self._noise.corrupt_cell(text, rng)

    def _render_unknown_cell(self, rng: random.Random, type_id: str | None) -> str:
        """Fabricate an out-of-catalog mention plausible for the column type."""
        if type_id is not None and "person" in self._spine_kind(type_id):
            first = rng.choice(names.FIRST_NAMES)
            surname = rng.choice(names.SURNAMES)
            middle = rng.choice("BCDFGKLMPRST")
            return self._noise.corrupt_cell(f"{first} {middle}. {surname}", rng)
        adjective = rng.choice(names.TITLE_ADJECTIVES)
        noun = rng.choice(names.TITLE_NOUNS)
        return self._noise.corrupt_cell(f"{adjective} {noun} {rng.randint(2, 99)}", rng)

    def _render_unknown_like(self, rng: random.Random, primary: str) -> str:
        tokens = primary.split()
        if len(tokens) >= 2:
            first = rng.choice(names.FIRST_NAMES)
            return self._noise.corrupt_cell(f"{first} {tokens[-1]}", rng)
        return self._render_unknown_cell(rng, None)

    def _spine_kind(self, type_id: str) -> str:
        """Coarse spine bucket of a type ("person", "work", ...)."""
        ancestors = self.catalog.types.ancestors(type_id, include_self=True)
        for spine in ("type:person", "type:work", "type:place", "type:organization"):
            if spine in ancestors:
                return spine
        return type_id

    def _render_header(self, rng: random.Random, column: dict) -> str | None:
        if column["kind"] == "year":
            base = rng.choice(("Year", "Released", "Since"))
            return self._noise.corrupt_header(base, rng)
        lemmas = list(self.catalog.types.lemmas(column["type"]))
        if column["relation"]:
            lemmas.extend(self.catalog.relations.get(column["relation"]).lemmas)
        if not lemmas:
            lemmas = [column["type"].rsplit(":", 1)[-1]]
        base = lemmas[0].title()
        return self._noise.corrupt_header(
            base, rng, synonyms=tuple(lemma.title() for lemma in lemmas)
        )

    def _render_context(self, rng: random.Random, relation) -> str:
        subject_lemma = self.catalog.types.lemmas(relation.subject_type)[0]
        relation_lemma = relation.lemmas[0] if relation.lemmas else relation.relation_id
        templates = (
            f"List of {subject_lemma}s and {relation_lemma}",
            f"{subject_lemma.title()}s — {relation_lemma}",
            f"Table of {subject_lemma}s ({relation_lemma})",
        )
        return rng.choice(templates)

    def _year_for(self, rng: random.Random, entity_id: str) -> int:
        """A year consistent with the entity's decade category when present."""
        for type_id in self.catalog.entities.direct_types(entity_id):
            match = _DECADE_TYPE_RE.match(type_id)
            if match:
                decade = int(match.group(1))
                return decade + rng.randrange(10)
        return rng.randint(1950, 2009)


def generate_formatting_table(seed: int, table_id: str = "fmt:0") -> Table:
    """A layout-ish junk table (spacer cells, prose) for classifier tests."""
    rng = random.Random(seed)
    prose = (
        "This is a long navigation paragraph that only exists to lay out the "
        "page and has nothing tabular about it whatsoever, "
    ) * 2
    cells = [
        [prose, ""],
        ["", rng.choice(("Home | About | Contact", "© 2009 Example Corp"))],
        ["", ""],
    ]
    return Table(table_id=table_id, cells=cells, headers=None, context="")
