"""Versioned on-disk artifact bundles: build offline, serve warm.

The paper's deployment splits into an offline annotation phase and an online
query phase.  This module is that split's contract: ``build_bundle``
serializes everything the query path needs —

* the catalog and the trained :class:`~repro.core.model.AnnotationModel`,
* the **frozen lemma index** with its precomputed IDF values, posting arrays
  and document norms (as flat ``.npy`` vectors, loaded array-backed /
  memory-mapped instead of re-running ``freeze()``), plus the matching
  TF-IDF table,
* the corpus tables and their **pre-computed annotations** (full fidelity,
  scores included),
* the annotated table index's frozen header/context text indexes, and
* the batched candidate engine's **interned candidate tables** (entity /
  type / relation id interning, type-ancestor arrays, packed pair→relations
  and per-relation tuple keys — see
  :class:`~repro.core.candidates_batched.InternedCandidateTables`), so a warm
  server skips that build exactly as it skips ``freeze()``,

under a ``manifest.json`` carrying the format version, per-file SHA-256
content hashes and build statistics.  ``load_bundle`` verifies and restores
all of it; startup cost drops from "re-annotate the corpus" to "read
arrays" (the Figure-7 bench measures the ratio).

Bundle layout (format version 2 — version-1 bundles predate the candidate
tables and are rejected with a rebuild hint)::

    bundle/
      manifest.json          version, hashes, identity, build stats
      catalog.json           repro.catalog.io format
      model.json             AnnotationModel.to_dict
      tfidf.json             lemma TF-IDF document frequencies
      tables.jsonl           one Table per line, corpus order
      annotations.jsonl      one full-fidelity annotation per line
      indexes/<name>.meta.json     tokens + document keys
      indexes/<name>.<field>.npy   offsets / doc_ids / weights / idf / doc_norm
      candidates/interned.meta.json    entity / type / relation id lists
      candidates/interned.<field>.npy  ancestor / pair / tuple arrays

where ``<name>`` is ``lemma``, ``header`` or ``context``.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.catalog.catalog import Catalog
from repro.catalog.io import catalog_from_dict, catalog_to_dict
from repro.core.candidates_batched import InternedCandidateTables
from repro.core.model import AnnotationModel
from repro.pipeline.io import annotation_from_payload, annotation_to_payload
from repro.pipeline.pipeline import AnnotationPipeline, PipelineConfig
from repro.search.table_index import AnnotatedTableIndex
from repro.serve.errors import BundleError, BundleIntegrityError, BundleVersionError
from repro.tables.model import LabeledTable, Table
from repro.text.index import InvertedIndex
from repro.text.tfidf import TfidfWeights

FORMAT_VERSION = 2
MANIFEST_NAME = "manifest.json"
TEXT_INDEX_NAMES = ("lemma", "header", "context")
_INDEX_FIELDS = ("offsets", "doc_ids", "weights", "idf", "doc_norm")
_CANDIDATE_META_FIELDS = ("entity_ids", "type_ids", "relation_ids")
_CANDIDATE_ARRAY_FIELDS = (
    "anc_offsets",
    "anc_flat",
    "type_specificity",
    "pair_keys",
    "pair_offsets",
    "pair_relations",
    "tuple_offsets",
    "tuple_keys_by_relation",
)


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------
@dataclass
class BundleManifest:
    """Everything needed to trust and describe a bundle."""

    format_version: int = FORMAT_VERSION
    created_unix: float = 0.0
    #: relative file path -> sha256 hex digest
    files: dict[str, str] = field(default_factory=dict)
    #: content fingerprints tying the bundle to its inputs
    identity: dict = field(default_factory=dict)
    #: build-time statistics (table counts, annotate seconds, cache rates)
    stats: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "format_version": self.format_version,
            "created_unix": self.created_unix,
            "files": dict(sorted(self.files.items())),
            "identity": self.identity,
            "stats": self.stats,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BundleManifest":
        return cls(
            format_version=payload.get("format_version", -1),
            created_unix=payload.get("created_unix", 0.0),
            files=dict(payload.get("files", {})),
            identity=dict(payload.get("identity", {})),
            stats=dict(payload.get("stats", {})),
        )


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# index state <-> files
# ----------------------------------------------------------------------
def _encode_key(key):
    """Document keys are str or tuples; JSON stores tuples as lists."""
    return list(key) if isinstance(key, tuple) else key


def _decode_key(key):
    return tuple(key) if isinstance(key, list) else key


def _write_index_state(directory: Path, name: str, state: dict) -> list[Path]:
    """Persist one frozen-index state; returns the files written."""
    written = []
    meta_path = directory / f"{name}.meta.json"
    meta_path.write_text(
        json.dumps(
            {
                "tokens": state["tokens"],
                "doc_keys": [_encode_key(key) for key in state["doc_keys"]],
            },
            ensure_ascii=False,
        ),
        encoding="utf-8",
    )
    written.append(meta_path)
    for field_name in _INDEX_FIELDS:
        array_path = directory / f"{name}.{field_name}.npy"
        np.save(array_path, np.asarray(state[field_name]))
        written.append(array_path)
    return written


def _read_index_state(directory: Path, name: str, mmap: bool) -> dict:
    meta = json.loads((directory / f"{name}.meta.json").read_text(encoding="utf-8"))
    state: dict = {
        "tokens": meta["tokens"],
        "doc_keys": [_decode_key(key) for key in meta["doc_keys"]],
    }
    mmap_mode = "r" if mmap else None
    for field_name in _INDEX_FIELDS:
        state[field_name] = np.load(
            directory / f"{name}.{field_name}.npy", mmap_mode=mmap_mode
        )
    return state


# ----------------------------------------------------------------------
# interned candidate tables <-> files
# ----------------------------------------------------------------------
def _write_candidate_state(directory: Path, state: dict) -> list[Path]:
    """Persist the interned candidate tables; returns the files written."""
    written = []
    meta_path = directory / "interned.meta.json"
    meta_path.write_text(
        json.dumps(
            {name: list(state[name]) for name in _CANDIDATE_META_FIELDS},
            ensure_ascii=False,
        ),
        encoding="utf-8",
    )
    written.append(meta_path)
    for field_name in _CANDIDATE_ARRAY_FIELDS:
        array_path = directory / f"interned.{field_name}.npy"
        np.save(array_path, np.asarray(state[field_name]))
        written.append(array_path)
    return written


def _read_candidate_state(directory: Path, mmap: bool) -> dict:
    meta = json.loads(
        (directory / "interned.meta.json").read_text(encoding="utf-8")
    )
    state: dict = {name: meta[name] for name in _CANDIDATE_META_FIELDS}
    mmap_mode = "r" if mmap else None
    for field_name in _CANDIDATE_ARRAY_FIELDS:
        state[field_name] = np.load(
            directory / f"interned.{field_name}.npy", mmap_mode=mmap_mode
        )
    return state


# ----------------------------------------------------------------------
# build
# ----------------------------------------------------------------------
def build_bundle(
    output: str | Path,
    catalog: Catalog,
    tables: Iterable[Table | LabeledTable],
    model: AnnotationModel | None = None,
    pipeline: AnnotationPipeline | None = None,
    config: PipelineConfig | None = None,
) -> BundleManifest:
    """Annotate ``tables`` and write a complete bundle under ``output``.

    ``tables`` is consumed as a stream: each table is annotated through the
    pipeline, appended to ``tables.jsonl`` / ``annotations.jsonl`` and folded
    into the in-memory table index, so peak memory matches a plain corpus
    annotation run.  Returns the manifest (also written to disk).
    """
    output = Path(output)
    output.mkdir(parents=True, exist_ok=True)
    (output / "indexes").mkdir(exist_ok=True)
    (output / "candidates").mkdir(exist_ok=True)
    if pipeline is None:
        pipeline = AnnotationPipeline(catalog, model=model, config=config)
    model = pipeline.model

    start = time.perf_counter()
    index = AnnotatedTableIndex(catalog=catalog)
    tables_path = output / "tables.jsonl"
    annotations_path = output / "annotations.jsonl"
    n_tables = 0
    with (
        tables_path.open("w", encoding="utf-8") as tables_handle,
        annotations_path.open("w", encoding="utf-8") as annotations_handle,
    ):
        for table, annotation in pipeline.annotate_with_tables(tables):
            index.add_table(table, annotation)
            tables_handle.write(
                json.dumps(table.to_dict(), ensure_ascii=False) + "\n"
            )
            annotations_handle.write(
                json.dumps(annotation_to_payload(annotation), ensure_ascii=False)
                + "\n"
            )
            n_tables += 1
    index.freeze()
    annotate_seconds = time.perf_counter() - start

    catalog_payload = json.dumps(
        catalog_to_dict(catalog), ensure_ascii=False, indent=1
    )
    (output / "catalog.json").write_text(catalog_payload, encoding="utf-8")
    model_payload = json.dumps(model.to_dict(), indent=1)
    (output / "model.json").write_text(model_payload, encoding="utf-8")

    generator = pipeline.annotator.candidate_generator
    (output / "tfidf.json").write_text(
        json.dumps(generator.lemma_tfidf.to_state(), ensure_ascii=False),
        encoding="utf-8",
    )
    header_state, context_state = index.text_index_states()
    index_files: list[Path] = []
    index_files += _write_index_state(
        output / "indexes", "lemma", generator.lemma_index.to_state()
    )
    index_files += _write_index_state(output / "indexes", "header", header_state)
    index_files += _write_index_state(output / "indexes", "context", context_state)
    # the batched candidate engine's interned tables: reuse the pipeline's
    # (it annotated the whole corpus with them) or build once from the
    # catalog when the pipeline ran the scalar reference engine
    interned = getattr(generator, "tables", None)
    if interned is None:
        interned = InternedCandidateTables.from_catalog(catalog)
    index_files += _write_candidate_state(
        output / "candidates", interned.to_state()
    )

    report = pipeline.last_report
    manifest = BundleManifest(
        format_version=FORMAT_VERSION,
        created_unix=time.time(),
        stats={
            "n_tables": n_tables,
            "annotate_seconds": round(annotate_seconds, 6),
            "catalog": catalog.stats(),
            "index": index.stats(),
            "cache_hit_rate": (
                round(report.cache.hit_rate, 4)
                if report is not None and report.cache is not None
                else None
            ),
        },
    )
    tracked = [
        output / "catalog.json",
        output / "model.json",
        output / "tfidf.json",
        tables_path,
        annotations_path,
        *index_files,
    ]
    for path in tracked:
        manifest.files[path.relative_to(output).as_posix()] = _sha256_file(path)
    manifest.identity = {
        # catalog.json's content hash doubles as the catalog fingerprint
        "catalog_sha256": manifest.files["catalog.json"],
        "model_sha256": model.fingerprint(),
        "catalog_name": catalog.name,
    }
    (output / MANIFEST_NAME).write_text(
        json.dumps(manifest.to_dict(), indent=1), encoding="utf-8"
    )
    return manifest


# ----------------------------------------------------------------------
# load
# ----------------------------------------------------------------------
@dataclass
class LoadedBundle:
    """A bundle restored into warm, immutable serving state."""

    path: Path
    manifest: BundleManifest
    catalog: Catalog
    model: AnnotationModel
    table_index: AnnotatedTableIndex
    lemma_index: InvertedIndex
    lemma_tfidf: TfidfWeights
    #: interned candidate tables (candidates/ arrays) for the batched
    #: candidate engine; restored via InternedCandidateTables.from_state
    candidate_state: dict | None = None


def read_manifest(path: str | Path) -> BundleManifest:
    """Parse and version-check a bundle's manifest (no content verification)."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise BundleError(f"not a bundle: {path} has no {MANIFEST_NAME}")
    try:
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise BundleError(
            f"unreadable bundle manifest {manifest_path}: {error}"
        ) from error
    manifest = BundleManifest.from_dict(payload)
    if manifest.format_version != FORMAT_VERSION:
        raise BundleVersionError(
            f"bundle {path} has format version {manifest.format_version}; "
            f"this build supports version {FORMAT_VERSION} — rebuild the "
            f"bundle with `repro bundle build`"
        )
    return manifest


def verify_bundle(path: str | Path, manifest: BundleManifest) -> None:
    """Check every manifest-listed file exists with the recorded hash."""
    path = Path(path)
    for relative, expected in manifest.files.items():
        file_path = path / relative
        if not file_path.is_file():
            raise BundleIntegrityError(f"bundle file missing: {relative}")
        actual = _sha256_file(file_path)
        if actual != expected:
            raise BundleIntegrityError(
                f"bundle file corrupted: {relative} (sha256 {actual[:12]}… "
                f"does not match manifest {expected[:12]}…)"
            )


def load_bundle(
    path: str | Path, verify: bool = True, mmap: bool = True
) -> LoadedBundle:
    """Restore a bundle written by :func:`build_bundle`.

    ``verify`` re-hashes every file against the manifest (a corrupted or
    tampered bundle raises :class:`BundleIntegrityError` before any of it is
    used); ``mmap`` memory-maps the index arrays instead of copying them.
    """
    path = Path(path)
    manifest = read_manifest(path)
    if verify:
        verify_bundle(path, manifest)

    catalog = catalog_from_dict(
        json.loads((path / "catalog.json").read_text(encoding="utf-8"))
    )
    model = AnnotationModel.from_dict(
        json.loads((path / "model.json").read_text(encoding="utf-8"))
    )
    lemma_tfidf = TfidfWeights.from_state(
        json.loads((path / "tfidf.json").read_text(encoding="utf-8"))
    )
    lemma_index = InvertedIndex.from_state(
        _read_index_state(path / "indexes", "lemma", mmap)
    )
    header_index = InvertedIndex.from_state(
        _read_index_state(path / "indexes", "header", mmap)
    )
    context_index = InvertedIndex.from_state(
        _read_index_state(path / "indexes", "context", mmap)
    )
    candidate_state = _read_candidate_state(path / "candidates", mmap)

    tables: list[Table] = []
    with (path / "tables.jsonl").open("r", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                tables.append(Table.from_dict(json.loads(line)))
    annotations = {}
    with (path / "annotations.jsonl").open("r", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                annotation = annotation_from_payload(json.loads(line))
                annotations[annotation.table_id] = annotation

    table_index = AnnotatedTableIndex.from_artifacts(
        catalog, tables, annotations, header_index, context_index
    )
    return LoadedBundle(
        path=path,
        manifest=manifest,
        catalog=catalog,
        model=model,
        table_index=table_index,
        lemma_index=lemma_index,
        lemma_tfidf=lemma_tfidf,
        candidate_state=candidate_state,
    )
