"""Threaded stdlib-HTTP front end over :class:`~repro.serve.state.ServeState`.

No third-party dependencies: :class:`http.server.ThreadingHTTPServer` gives
one OS thread per in-flight request, which is the right shape for this
workload — request handling is NumPy-heavy (releases the GIL in the hot
spots) and the shared state is read-mostly (see the locking story in
:mod:`repro.serve.state`).

Endpoints::

    GET  /healthz       liveness + bundle identity + schema_version
    POST /annotate      AnnotateRequest    -> AnnotateResponse
    POST /search        SearchRequest      -> SearchResponse
    POST /search/join   JoinSearchRequest  -> SearchResponse
    GET  /metrics       request counts, latency percentiles, cache hit rates

Request and response bodies are the versioned wire schema of
:mod:`repro.api.types`, serialized with :func:`repro.api.types.encode_json`
— the same encoder the CLI's ``--wire``/``--json`` modes use, which is what
makes the two frontends byte-identical for identical requests.  Failures of
any kind are an :class:`~repro.api.types.ErrorEnvelope`::

    {"schema_version": 1, "error": {"code": "<stable code>", "message": …}}

with the HTTP status derived from the code by the taxonomy in
:mod:`repro.api.errors` (400 family for bad payloads / unknown catalog ids,
404 unknown path, 405 wrong method, 500 unexpected).
"""

from __future__ import annotations

import json
import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.api.types import ErrorEnvelope, encode_json
from repro.serve.errors import BadRequestError
from repro.serve.state import ServeState

#: reject request bodies larger than this (64 MiB) outright
MAX_BODY_BYTES = 64 << 20


class TableServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer carrying the shared serving state."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], state: ServeState, quiet: bool = True):
        super().__init__(address, _Handler)
        self.state = state
        self.quiet = quiet


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/2.0"
    protocol_version = "HTTP/1.1"
    server: TableServer

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        state = self.server.state
        if self.path == "/healthz":
            self._handle("healthz", lambda: state.healthz())
        elif self.path == "/metrics":
            self._handle("metrics", lambda: state.metrics_snapshot())
        elif self.path in ("/annotate", "/search", "/search/join"):
            self._send_error(
                BadRequestError(
                    f"{self.path} requires POST", code="method_not_allowed"
                )
            )
        else:
            self._send_error(
                BadRequestError(f"unknown path: {self.path}", code="not_found")
            )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        state = self.server.state
        routes = {
            "/annotate": ("annotate", state.annotate_payload),
            "/search": ("search", state.search_payload),
            "/search/join": ("search_join", state.search_join_payload),
        }
        route = routes.get(self.path)
        if route is None:
            if self.path in ("/healthz", "/metrics"):
                self._send_error(
                    BadRequestError(
                        f"{self.path} requires GET", code="method_not_allowed"
                    )
                )
            else:
                self._send_error(
                    BadRequestError(
                        f"unknown path: {self.path}", code="not_found"
                    )
                )
            return
        endpoint, handler = route
        self._handle(endpoint, lambda: handler(self._read_json_body()))

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _read_json_body(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise BadRequestError("invalid Content-Length header") from None
        if length <= 0:
            raise BadRequestError("request body required (JSON)")
        if length > MAX_BODY_BYTES:
            raise BadRequestError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise BadRequestError(f"invalid JSON body: {error}") from error
        if not isinstance(payload, dict):
            raise BadRequestError("JSON body must be an object")
        return payload

    def _handle(self, endpoint: str, run: Callable[[], dict]) -> None:
        """Run one handler, recording metrics and mapping every failure to
        the structured :class:`ErrorEnvelope`."""
        metrics = self.server.state.metrics
        start = time.perf_counter()
        try:
            result = run()
        except Exception as error:  # noqa: BLE001 - the API boundary
            metrics.observe(endpoint, time.perf_counter() - start, error=True)
            self._send_error(error)
            return
        metrics.observe(endpoint, time.perf_counter() - start, error=False)
        self._send_json(200, result)

    def _send_error(self, error: BaseException) -> None:
        envelope = ErrorEnvelope.from_error(error)
        self._send_json(envelope.http_status, envelope.to_json())

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = encode_json(payload).encode("utf-8")
        if status >= 400:
            # error paths may not have drained the request body; under
            # HTTP/1.1 keep-alive the unread bytes would be parsed as the
            # next request line, so drop the connection instead
            self.close_connection = True
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            sys.stderr.write(
                f"{self.address_string()} - {format % args}\n"
            )


def create_server(
    state: ServeState, host: str = "127.0.0.1", port: int = 8080, quiet: bool = True
) -> TableServer:
    """Bind a :class:`TableServer` (``port=0`` picks a free port)."""
    return TableServer((host, port), state, quiet=quiet)


def run_server(server: TableServer) -> None:
    """Serve until interrupted; always releases the socket."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
