"""Threaded stdlib-HTTP front end over a pluggable serving backend.

No third-party dependencies: :class:`http.server.ThreadingHTTPServer` gives
one OS thread per in-flight request.  What those threads do with a request
depends on the **backend** behind the server:

* :class:`InlineBackend` — the single-process shape: requests run directly
  on the HTTP threads against one shared
  :class:`~repro.serve.state.ServeState` (read-mostly NumPy work that
  releases the GIL in the hot spots; see the locking story in
  :mod:`repro.serve.state`).
* :class:`~repro.serve.dispatcher.Dispatcher` — the pre-fork shape
  (``repro serve --workers N``): HTTP threads hand the decoded body to the
  dispatcher, which queues it onto one of N forked worker processes
  sharing the bundle's pages.  Backpressure, load shedding, worker
  restarts and bundle hot-swap all live there.

Endpoints::

    GET  /healthz       liveness + bundle identity + schema_version
    POST /annotate      AnnotateRequest    -> AnnotateResponse
    POST /search        SearchRequest      -> SearchResponse
    POST /search/join   JoinSearchRequest  -> SearchResponse
    GET  /metrics       request counts, latency percentiles, cache hit rates
    POST /admin/reload  hot-swap the bundle ({"bundle": path}, body optional)

Request and response bodies are the versioned wire schema of
:mod:`repro.api.types`, serialized with :func:`repro.api.types.encode_json`
— the same encoder the CLI's ``--wire``/``--json`` modes use, which is what
makes the frontends (and the two serving backends) byte-identical for
identical requests.  Failures of any kind are an
:class:`~repro.api.types.ErrorEnvelope`::

    {"schema_version": 1, "error": {"code": "<stable code>", "message": …}}

with the HTTP status derived from the code by the taxonomy in
:mod:`repro.api.errors` (400 family for bad payloads / unknown catalog ids,
404 unknown path, 405 wrong method, 503 overloaded / worker_failed, 500
unexpected).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Protocol

from repro.api import errors as api_errors
from repro.api.errors import ApiError
from repro.api.types import ErrorEnvelope, encode_json
from repro.serve.errors import BadRequestError
from repro.serve.state import ServeState

#: reject request bodies larger than this (64 MiB) outright
MAX_BODY_BYTES = 64 << 20

#: endpoint names the HTTP layer routes to ``backend.call``
_POST_ROUTES = {
    "/annotate": "annotate",
    "/search": "search",
    "/search/join": "search_join",
}


class Backend(Protocol):
    """What the HTTP layer needs from a serving implementation."""

    def call(self, endpoint: str, payload: dict) -> dict:
        """Handle one decoded request body; raises on failure."""

    def call_batch(
        self,
        endpoint: str,
        payloads: list[dict],
        timeout: float | None = None,
    ) -> list[dict]:
        """Handle one coalesced batch: one ``{"ok": ...}`` / ``{"error":
        ...}`` outcome per payload, in order (failures isolated per item;
        raises only on whole-batch transport failure)."""

    def observe(self, endpoint: str, seconds: float, error: bool) -> None:
        """Record one finished request in the aggregate registry."""

    def healthz(self) -> dict: ...

    def metrics_snapshot(self) -> dict: ...

    def reload(self, payload: dict) -> dict:
        """Swap the serving bundle (``POST /admin/reload``)."""

    def shutdown(self, drain_timeout: float | None = None) -> bool:
        """Stop serving resources; True if in-flight work drained."""


class InlineBackend:
    """Single-process backend: requests run on the HTTP threads.

    ``reload`` builds a whole new :class:`ServeState` (bundle, session,
    pipelines, metrics) and swaps it in; requests already executing finish
    on the old state, which the garbage collector then retires.  Metrics
    restart with the new state — the process-level aggregate continuity of
    the dispatcher backend needs the dispatcher.
    """

    def __init__(self, state: ServeState) -> None:
        self._lock = threading.Lock()
        self._state = state

    @property
    def state(self) -> ServeState:
        with self._lock:
            return self._state

    def call(self, endpoint: str, payload: dict) -> dict:
        return self.state.handle(endpoint, payload)

    def call_batch(
        self,
        endpoint: str,
        payloads: list[dict],
        timeout: float | None = None,
    ) -> list[dict]:
        """One coalesced batch on the in-process state (``timeout`` is a
        dispatcher concern; the inline shape runs to completion)."""
        results: list[dict] = self.state.handle_batch(endpoint, payloads)[
            "results"
        ]
        return results

    def observe(self, endpoint: str, seconds: float, error: bool) -> None:
        self.state.metrics.observe(endpoint, seconds, error=error)

    def healthz(self) -> dict:
        return self.state.healthz()

    def metrics_snapshot(self) -> dict:
        return self.state.metrics_snapshot()

    def reload(self, payload: dict) -> dict:
        from repro.serve.bundle import load_bundle

        old = self.state
        bundle_path = payload.get("bundle")
        if bundle_path is None:
            bundle_path = str(old.bundle.path)
        if not isinstance(bundle_path, str):
            raise ApiError(
                api_errors.VALIDATION_ERROR, "reload 'bundle' must be a path"
            )
        start = time.perf_counter()
        bundle = load_bundle(bundle_path)
        fresh = ServeState(bundle, session_config=old.session.config)
        with self._lock:
            self._state = fresh
        return {
            "status": "ok",
            "bundle": str(bundle.path),
            "workers": 0,
            "reload_seconds": round(time.perf_counter() - start, 3),
        }

    def shutdown(self, drain_timeout: float | None = None) -> bool:
        return True  # HTTP threads are joined by TableServer.server_close


class TableServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer carrying the serving backend."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        backend: Backend | ServeState,
        quiet: bool = True,
    ):
        super().__init__(address, _Handler)
        if isinstance(backend, ServeState):
            backend = InlineBackend(backend)
        self.backend = backend
        self.quiet = quiet

    @property
    def state(self) -> ServeState:
        """The inline backend's state (kept for tests / library callers);
        raises on a dispatcher backend, which has no in-process state."""
        backend = self.backend
        if isinstance(backend, InlineBackend):
            return backend.state
        # reprolint: ignore[exc-unclassified]: library-misuse guard on a
        # test/debug accessor — it is never reachable from a request
        # handler, so it cannot cross the wire
        raise AttributeError(
            "TableServer.state only exists on the inline backend"
        )


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/2.1"
    protocol_version = "HTTP/1.1"
    server: TableServer

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        backend = self.server.backend
        if self.path == "/healthz":
            self._handle("healthz", backend.healthz)
        elif self.path == "/metrics":
            self._handle("metrics", backend.metrics_snapshot)
        elif self.path in _POST_ROUTES or self.path == "/admin/reload":
            self._send_error(
                BadRequestError(
                    f"{self.path} requires POST", code="method_not_allowed"
                )
            )
        else:
            self._send_error(
                BadRequestError(f"unknown path: {self.path}", code="not_found")
            )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        backend = self.server.backend
        if self.path == "/admin/reload":
            # body optional: an empty body re-loads the current bundle path
            self._handle(
                "admin_reload",
                lambda: backend.reload(self._read_json_body(required=False)),
            )
            return
        endpoint = _POST_ROUTES.get(self.path)
        if endpoint is None:
            if self.path in ("/healthz", "/metrics"):
                self._send_error(
                    BadRequestError(
                        f"{self.path} requires GET", code="method_not_allowed"
                    )
                )
            else:
                self._send_error(
                    BadRequestError(
                        f"unknown path: {self.path}", code="not_found"
                    )
                )
            return
        self._handle(
            endpoint, lambda: backend.call(endpoint, self._read_json_body())
        )

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _read_json_body(self, required: bool = True) -> dict:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise BadRequestError("invalid Content-Length header") from None
        if length <= 0:
            if required:
                raise BadRequestError("request body required (JSON)")
            return {}
        if length > MAX_BODY_BYTES:
            raise BadRequestError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise BadRequestError(f"invalid JSON body: {error}") from error
        if not isinstance(payload, dict):
            raise BadRequestError("JSON body must be an object")
        return payload

    def _handle(self, endpoint: str, run: Callable[[], dict]) -> None:
        """Run one handler, recording metrics and mapping every failure to
        the structured :class:`ErrorEnvelope`."""
        backend = self.server.backend
        start = time.perf_counter()
        try:
            result = run()
        except Exception as error:  # noqa: BLE001 - the API boundary
            backend.observe(endpoint, time.perf_counter() - start, error=True)
            self._send_error(error)
            return
        backend.observe(endpoint, time.perf_counter() - start, error=False)
        self._send_json(200, result)

    def _send_error(self, error: BaseException) -> None:
        envelope = ErrorEnvelope.from_error(error)
        self._send_json(envelope.http_status, envelope.to_json())

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = encode_json(payload).encode("utf-8")
        if status >= 400:
            # error paths may not have drained the request body; under
            # HTTP/1.1 keep-alive the unread bytes would be parsed as the
            # next request line, so drop the connection instead
            self.close_connection = True
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            sys.stderr.write(
                f"{self.address_string()} - {format % args}\n"
            )


def create_server(
    backend: Backend | ServeState,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
) -> TableServer:
    """Bind a :class:`TableServer` (``port=0`` picks a free port).

    Accepts either a bare :class:`ServeState` (wrapped in an
    :class:`InlineBackend`, the historical single-process shape) or any
    :class:`Backend` — in particular the multi-process
    :class:`~repro.serve.dispatcher.Dispatcher`.
    """
    return TableServer((host, port), backend, quiet=quiet)


def run_server(server: TableServer) -> None:
    """Serve until interrupted; always releases the socket."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
