"""Pre-fork worker processes: one warm pipeline each, one shared bundle.

The multi-process serving tier's bottom layer.  Each worker is a forked
child of the serving parent running a plain request loop over one duplex
pipe:

* **Fork, not spawn.**  The parent loads the bundle once
  (:func:`~repro.serve.bundle.load_bundle` with ``mmap=True``); forking
  shares every flat ``.npy`` array as file-backed read-only pages and the
  already-parsed Python state (catalog, table index, interned candidate
  tables) as copy-on-write memory.  Worker startup therefore costs one
  :class:`~repro.serve.state.ServeState` construction — milliseconds — not
  a bundle load.
* **One request at a time per worker.**  Concurrency comes from the number
  of workers, not from threads inside one; annotation is CPU-bound Python/
  NumPy, so a worker past its GIL does not help.  The pipe is strictly
  request/response, serialized by the handle's lock on the parent side.
* **Crash isolation.**  A worker segfaulting or being OOM-killed takes one
  in-flight request with it, not the server; the dispatcher replaces it
  (see :mod:`repro.serve.dispatcher`).

Wire protocol (parent -> worker, worker -> parent), all plain tuples over a
``multiprocessing`` pipe:

====================================  ====================================
parent sends                          worker replies
====================================  ====================================
``("request", endpoint, payload)``    ``("ok", result, handler_seconds)``
                                      or ``("error", envelope, status,
                                      handler_seconds)``
``("ping",)``                         ``("pong", pid)``
``("stats",)``                        ``("ok", stats, 0.0)``
``("shutdown",)``                     ``("bye",)`` then exit 0
====================================  ====================================

Errors cross the pipe as the same :class:`~repro.api.types.ErrorEnvelope`
payload the single-process server would emit, so multi-worker error
responses are byte-identical to inline ones.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from multiprocessing.connection import Connection
from typing import TYPE_CHECKING, Any

from repro.api.config import SessionConfig
from repro.serve.errors import WorkerSpawnError, WorkerTimeout

if TYPE_CHECKING:
    from repro.serve.bundle import LoadedBundle

__all__ = [
    "DEFAULT_CALL_TIMEOUT",
    "WorkerHandle",
    "WorkerSpawnError",
    "WorkerTimeout",
    "fork_context",
    "spawn_worker",
]

#: default ceiling on one pipe round trip (overridden per dispatcher config)
DEFAULT_CALL_TIMEOUT = 120.0


def fork_context() -> multiprocessing.context.BaseContext:
    """The fork start method, or a clear error where it does not exist.

    Page-shared workers require ``fork`` (spawn would re-import and reload
    the bundle per worker, forfeiting the shared warm state this tier is
    built on).  Every Linux and macOS CPython supports it; on platforms
    without it `repro serve` falls back to the in-process backend.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError as error:  # pragma: no cover - non-POSIX platforms
        # reprolint: ignore[exc-unclassified]: startup-only capability
        # probe — cmd_serve catches it and falls back to the in-process
        # backend; it never crosses the request path
        raise RuntimeError(
            "the multi-worker serving tier requires the 'fork' start "
            "method, which this platform does not provide; run with "
            "--workers 1 on the in-process backend instead"
        ) from error


def _worker_main(
    conn: Connection,
    bundle: "LoadedBundle",
    config: SessionConfig,
    name: str,
) -> None:
    """The child process: build one warm state, answer the pipe forever.

    Runs until a ``shutdown`` message or EOF (parent died).  SIGINT is
    ignored — a Ctrl-C in the parent's terminal reaches the whole process
    group, and workers must keep draining until the parent tells them to
    stop; SIGTERM keeps its default (the dispatcher escalates to it only
    after a graceful shutdown call times out).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # deferred import: this module is imported by the dispatcher before any
    # forking, and state imports the whole session stack
    from repro.api.types import ErrorEnvelope
    from repro.serve.state import ServeState

    state = ServeState(bundle, session_config=config)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent is gone: nothing to serve
            break
        kind = message[0]
        if kind == "request":
            endpoint, payload = message[1], message[2]
            start = time.perf_counter()
            try:
                result = state.handle(endpoint, payload)
            except Exception as error:  # noqa: BLE001 - the process boundary
                envelope = ErrorEnvelope.from_error(error)
                conn.send(
                    (
                        "error",
                        envelope.to_json(),
                        envelope.http_status,
                        time.perf_counter() - start,
                    )
                )
            else:
                conn.send(("ok", result, time.perf_counter() - start))
        elif kind == "ping":
            conn.send(("pong", os.getpid()))
        elif kind == "stats":
            conn.send(("ok", state.worker_stats(), 0.0))
        elif kind == "shutdown":
            conn.send(("bye",))
            break
        else:  # unknown control message: fail loudly, do not wedge the pipe
            conn.send(("error", {"unknown_message": repr(kind)}, 500, 0.0))
    conn.close()


class WorkerHandle:
    """The parent's view of one worker process.

    The handle serializes pipe access with one lock (`call` is a strict
    request/response round trip), tracks liveness, and owns teardown.  A
    handle marked ``defunct`` is dead to the dispatcher: it never re-enters
    the idle pool and its process is already being replaced.
    """

    def __init__(
        self,
        name: str,
        generation: int,
        bundle: "LoadedBundle",
        config: SessionConfig,
    ) -> None:
        self.name = name
        self.generation = generation
        ctx = fork_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self._conn = parent_conn
        self._conn_lock = threading.Lock()
        self.defunct = False
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, bundle, config, name),
            name=f"repro-serve-{name}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()  # the parent's copy; the child keeps its own

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def call(
        self, message: tuple, timeout: float = DEFAULT_CALL_TIMEOUT
    ) -> tuple[Any, ...]:
        """One request/response round trip; raises on death or timeout."""
        with self._conn_lock:
            self._conn.send(message)
            # reprolint: ignore[lock-order-hold-wait]: _conn_lock exists
            # precisely to serialize this round trip; the child replies
            # regardless of parent lock state, and poll() is the bounded
            # wait that turns a wedged worker into WorkerTimeout
            if not self._conn.poll(timeout):
                raise WorkerTimeout(
                    f"worker {self.name} silent for {timeout:.0f}s"
                )
            # reprolint: ignore[lock-order-hold-wait]: poll() above already
            # confirmed a buffered reply; this recv() cannot block
            reply = self._conn.recv()
        if not isinstance(reply, tuple) or not reply:
            # reprolint: ignore[exc-unclassified]: deliberately a pipe-level
            # error — the dispatcher's _PIPE_ERRORS handling turns it into
            # the stable worker_failed code and replaces the worker
            raise OSError(f"worker {self.name} sent a malformed reply")
        return reply

    def ping(self, timeout: float = 5.0) -> bool:
        """Liveness probe; False on any failure (never raises)."""
        try:
            return self.call(("ping",), timeout=timeout)[0] == "pong"
        except (WorkerTimeout, OSError, EOFError, BrokenPipeError):
            return False

    def alive(self) -> bool:
        return not self.defunct and self.process.is_alive()

    @property
    def pid(self) -> int | None:
        return self.process.pid

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def stop(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: ask nicely, then escalate, always reap.

        The graceful ask is skipped when the pipe lock is held — a worker
        mid-request is by definition not reading control messages, and a
        force-stop (retire past the drain timeout) must not wait behind a
        request that may be the reason for the force-stop.
        """
        if self._conn_lock.acquire(timeout=0.1):
            try:
                self._conn.send(("shutdown",))
                if self._conn.poll(timeout):
                    self._conn.recv()
            except (OSError, EOFError, BrokenPipeError):
                pass
            finally:
                self._conn_lock.release()
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - wedged worker
            self.process.terminate()
            self.process.join(timeout=timeout)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=timeout)
        self.close()

    def close(self) -> None:
        """Release the pipe and the process table entry (idempotent)."""
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self.process.pid is not None and not self.process.is_alive():
            self.process.join(timeout=0)


def spawn_worker(
    name: str,
    generation: int,
    bundle: "LoadedBundle",
    config: SessionConfig,
    ready_timeout: float = 60.0,
) -> WorkerHandle:
    """Fork one worker and wait until it answers a ping.

    The ping bounds how broken a worker can be when it enters the idle
    pool: a child that failed during :class:`ServeState` construction dies
    before ponging, and the dispatcher surfaces that at spawn time instead
    of on the first unlucky request.
    """
    handle = WorkerHandle(name, generation, bundle, config)
    if not handle.ping(timeout=ready_timeout):
        handle.stop(timeout=1.0)
        raise WorkerSpawnError(
            f"worker {name} failed to become ready within {ready_timeout:.0f}s"
        )
    return handle
