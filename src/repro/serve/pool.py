"""Pre-fork worker processes: one warm pipeline each, one shared bundle.

The multi-process serving tier's bottom layer.  Each worker is a forked
child of the serving parent running a plain request loop over one duplex
pipe:

* **Fork, not spawn.**  The parent loads the bundle once
  (:func:`~repro.serve.bundle.load_bundle` with ``mmap=True``); forking
  shares every flat ``.npy`` array as file-backed read-only pages and the
  already-parsed Python state (catalog, table index, interned candidate
  tables) as copy-on-write memory.  Worker startup therefore costs one
  :class:`~repro.serve.state.ServeState` construction — milliseconds — not
  a bundle load.
* **One request at a time per worker.**  Concurrency comes from the number
  of workers, not from threads inside one; annotation is CPU-bound Python/
  NumPy, so a worker past its GIL does not help.  The pipe is strictly
  request/response, serialized by the handle's lock on the parent side.
* **Crash isolation.**  A worker segfaulting or being OOM-killed takes one
  in-flight request with it, not the server; the dispatcher replaces it
  (see :mod:`repro.serve.dispatcher`).

Wire protocol (parent -> worker, worker -> parent), all plain tuples over a
``multiprocessing`` pipe:

====================================  ====================================
parent sends                          worker replies
====================================  ====================================
``("request", endpoint, payload)``    ``("ok", result, handler_seconds)``
                                      or ``("error", envelope, status,
                                      handler_seconds)``
``("batch", endpoint, payloads)``     ``("ok", {"results": [...]},
                                      handler_seconds)`` — one outcome
                                      dict per payload, in order
``("ping",)``                         ``("pong", pid)``
``("stats",)``                        ``("ok", stats, 0.0)``
``("shutdown",)``                     ``("bye",)`` then exit 0
====================================  ====================================

Messages are pickled at :data:`pickle.HIGHEST_PROTOCOL` with PEP-574
out-of-band buffer extraction (:func:`send_message` / :func:`recv_message`)
rather than the default ``Connection.send`` pickler: NumPy payloads cross
the pipe as raw buffer frames instead of being copied through the pickle
stream, and the in-band pickle stays small however large the arrays get
(regression-tested in ``tests/serve/test_pool.py``).

Errors cross the pipe as the same :class:`~repro.api.types.ErrorEnvelope`
payload the single-process server would emit, so multi-worker error
responses are byte-identical to inline ones.  A ``batch`` reply carries
one ``{"ok": result}`` / ``{"error": envelope}`` outcome per payload —
per-request error isolation across the same boundary.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import struct
import threading
import time
from multiprocessing.connection import Connection
from typing import TYPE_CHECKING, Any

from repro.api.config import SessionConfig
from repro.serve.errors import WorkerSpawnError, WorkerTimeout

if TYPE_CHECKING:
    from repro.serve.bundle import LoadedBundle

__all__ = [
    "DEFAULT_CALL_TIMEOUT",
    "WorkerHandle",
    "WorkerSpawnError",
    "WorkerTimeout",
    "fork_context",
    "recv_message",
    "send_message",
    "spawn_worker",
]

#: default ceiling on one pipe round trip (overridden per dispatcher config)
DEFAULT_CALL_TIMEOUT = 120.0

#: frame header: little-endian u32 count of out-of-band buffer frames
_HEADER = struct.Struct("<I")


def send_message(conn: Connection, message: Any) -> None:
    """Send one message as framed protocol-5 pickle bytes.

    Frames: ``[u32 buffer count][pickle payload][raw buffer]*``.  NumPy
    arrays (and anything else advertising :class:`pickle.PickleBuffer`)
    travel as raw buffer frames after the payload, so the pickle stream
    itself stays a few hundred bytes regardless of array sizes.  Falls back
    to one in-band frame for the rare non-contiguous buffer.
    """
    buffers: list[pickle.PickleBuffer] = []
    try:
        payload = pickle.dumps(
            message,
            protocol=pickle.HIGHEST_PROTOCOL,
            buffer_callback=buffers.append,
        )
        raw_frames = [buffer.raw() for buffer in buffers]
    except BufferError:  # pragma: no cover - non-contiguous exotic payload
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        raw_frames = []
    conn.send_bytes(_HEADER.pack(len(raw_frames)))
    conn.send_bytes(payload)
    for frame in raw_frames:
        conn.send_bytes(frame)


def recv_message(conn: Connection) -> Any:
    """Receive one :func:`send_message` frame sequence."""
    (n_buffers,) = _HEADER.unpack(conn.recv_bytes())
    payload = conn.recv_bytes()
    buffers = [conn.recv_bytes() for _ in range(n_buffers)]
    return pickle.loads(payload, buffers=buffers)


def fork_context() -> multiprocessing.context.BaseContext:
    """The fork start method, or a clear error where it does not exist.

    Page-shared workers require ``fork`` (spawn would re-import and reload
    the bundle per worker, forfeiting the shared warm state this tier is
    built on).  Every Linux and macOS CPython supports it; on platforms
    without it `repro serve` falls back to the in-process backend.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError as error:  # pragma: no cover - non-POSIX platforms
        # reprolint: ignore[exc-unclassified]: startup-only capability
        # probe — cmd_serve catches it and falls back to the in-process
        # backend; it never crosses the request path
        raise RuntimeError(
            "the multi-worker serving tier requires the 'fork' start "
            "method, which this platform does not provide; run with "
            "--workers 1 on the in-process backend instead"
        ) from error


def _worker_main(
    conn: Connection,
    bundle: "LoadedBundle",
    config: SessionConfig,
    name: str,
) -> None:
    """The child process: build one warm state, answer the pipe forever.

    Runs until a ``shutdown`` message or EOF (parent died).  SIGINT is
    ignored — a Ctrl-C in the parent's terminal reaches the whole process
    group, and workers must keep draining until the parent tells them to
    stop; SIGTERM keeps its default (the dispatcher escalates to it only
    after a graceful shutdown call times out).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # deferred import: this module is imported by the dispatcher before any
    # forking, and state imports the whole session stack
    from repro.api.types import ErrorEnvelope
    from repro.serve.state import ServeState

    state = ServeState(bundle, session_config=config)
    while True:
        try:
            message = recv_message(conn)
        except (EOFError, OSError):  # parent is gone: nothing to serve
            break
        kind = message[0]
        if kind in ("request", "batch"):
            endpoint, payload = message[1], message[2]
            start = time.perf_counter()
            try:
                if kind == "batch":
                    result = state.handle_batch(endpoint, payload)
                else:
                    result = state.handle(endpoint, payload)
            except Exception as error:  # noqa: BLE001 - the process boundary
                envelope = ErrorEnvelope.from_error(error)
                send_message(
                    conn,
                    (
                        "error",
                        envelope.to_json(),
                        envelope.http_status,
                        time.perf_counter() - start,
                    ),
                )
            else:
                send_message(conn, ("ok", result, time.perf_counter() - start))
        elif kind == "ping":
            send_message(conn, ("pong", os.getpid()))
        elif kind == "stats":
            send_message(conn, ("ok", state.worker_stats(), 0.0))
        elif kind == "shutdown":
            send_message(conn, ("bye",))
            break
        else:  # unknown control message: fail loudly, do not wedge the pipe
            send_message(
                conn, ("error", {"unknown_message": repr(kind)}, 500, 0.0)
            )
    conn.close()


class WorkerHandle:
    """The parent's view of one worker process.

    The handle serializes pipe access with one lock (`call` is a strict
    request/response round trip), tracks liveness, and owns teardown.  A
    handle marked ``defunct`` is dead to the dispatcher: it never re-enters
    the idle pool and its process is already being replaced.
    """

    def __init__(
        self,
        name: str,
        generation: int,
        bundle: "LoadedBundle",
        config: SessionConfig,
    ) -> None:
        self.name = name
        self.generation = generation
        ctx = fork_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self._conn = parent_conn
        self._conn_lock = threading.Lock()
        self.defunct = False
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, bundle, config, name),
            name=f"repro-serve-{name}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()  # the parent's copy; the child keeps its own

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def call(
        self, message: tuple, timeout: float = DEFAULT_CALL_TIMEOUT
    ) -> tuple[Any, ...]:
        """One request/response round trip; raises on death or timeout."""
        with self._conn_lock:
            send_message(self._conn, message)
            # reprolint: ignore[lock-order-hold-wait]: _conn_lock exists
            # precisely to serialize this round trip; the child replies
            # regardless of parent lock state, and poll() is the bounded
            # wait that turns a wedged worker into WorkerTimeout
            if not self._conn.poll(timeout):
                raise WorkerTimeout(
                    f"worker {self.name} silent for {timeout:.0f}s"
                )
            reply = recv_message(self._conn)
        if not isinstance(reply, tuple) or not reply:
            # reprolint: ignore[exc-unclassified]: deliberately a pipe-level
            # error — the dispatcher's _PIPE_ERRORS handling turns it into
            # the stable worker_failed code and replaces the worker
            raise OSError(f"worker {self.name} sent a malformed reply")
        return reply

    def ping(self, timeout: float = 5.0) -> bool:
        """Liveness probe; False on any failure (never raises)."""
        try:
            return self.call(("ping",), timeout=timeout)[0] == "pong"
        except (WorkerTimeout, OSError, EOFError, BrokenPipeError):
            return False

    def alive(self) -> bool:
        return not self.defunct and self.process.is_alive()

    @property
    def pid(self) -> int | None:
        return self.process.pid

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def stop(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: ask nicely, then escalate, always reap.

        The graceful ask is skipped when the pipe lock is held — a worker
        mid-request is by definition not reading control messages, and a
        force-stop (retire past the drain timeout) must not wait behind a
        request that may be the reason for the force-stop.
        """
        if self._conn_lock.acquire(timeout=0.1):
            try:
                send_message(self._conn, ("shutdown",))
                if self._conn.poll(timeout):
                    recv_message(self._conn)
            except (OSError, EOFError, BrokenPipeError):
                pass
            finally:
                self._conn_lock.release()
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - wedged worker
            self.process.terminate()
            self.process.join(timeout=timeout)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=timeout)
        self.close()

    def close(self) -> None:
        """Release the pipe and the process table entry (idempotent)."""
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self.process.pid is not None and not self.process.is_alive():
            self.process.join(timeout=0)


def spawn_worker(
    name: str,
    generation: int,
    bundle: "LoadedBundle",
    config: SessionConfig,
    ready_timeout: float = 60.0,
) -> WorkerHandle:
    """Fork one worker and wait until it answers a ping.

    The ping bounds how broken a worker can be when it enters the idle
    pool: a child that failed during :class:`ServeState` construction dies
    before ponging, and the dispatcher surfaces that at spawn time instead
    of on the first unlucky request.
    """
    handle = WorkerHandle(name, generation, bundle, config)
    if not handle.ping(timeout=ready_timeout):
        handle.stop(timeout=1.0)
        raise WorkerSpawnError(
            f"worker {name} failed to become ready within {ready_timeout:.0f}s"
        )
    return handle
