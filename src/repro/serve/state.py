"""Warm, shared serving state: one bundle, many concurrent requests.

Since the typed API layer landed, this module is deliberately thin: all
domain work lives in :class:`~repro.api.session.ReproSession` (shared with
the CLI and library callers, so the frontends cannot diverge), and
``ServeState`` adds only what an HTTP *process* needs on top — request
metrics and the payload-level handlers that decode JSON into typed requests
and encode typed responses back out.

Concurrency model (the whole locking story):

* **Bundle state is immutable.**  The catalog, the frozen lemma/header/
  context indexes and the annotated table index are never mutated after
  :func:`~repro.serve.bundle.load_bundle`, so every search request reads
  them lock-free.
* **Annotation is a pure function with thread-safe memoisation.**  One
  :class:`~repro.pipeline.AnnotationPipeline` per engine is shared by all
  requests (owned by the session); its candidate / feature-block /
  compiled-graph LRUs carry their own internal locks, so concurrent
  ``/annotate`` requests produce exactly the answers serial requests would
  (covered by the concurrency determinism tests).
* **The per-table timing ledger is bounded** — the session trims it under a
  lock once it passes a threshold; each response reads its own timing from
  the annotation's diagnostics, never from the ledger.
* **Everything else** (metrics registry, lazy creation of the non-default
  engine's pipeline) sits behind one small mutex each, inside the session
  or the metrics registry.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

from repro.api import errors as api_errors
from repro.api.config import SessionConfig
from repro.api.errors import ApiError
from repro.api.session import ReproSession
from repro.api.types import (
    SCHEMA_VERSION,
    AnnotateRequest,
    ErrorEnvelope,
    JoinSearchRequest,
    SearchRequest,
    SearchResponse,
)
from repro.pipeline.pipeline import AnnotationPipeline, PipelineConfig
from repro.search.ranking import SearchResponse as RankedResponse
from repro.serve.bundle import LoadedBundle
from repro.serve.metrics import MetricsRegistry


def response_to_dict(response: RankedResponse, top_k: int | None = None) -> dict:
    """Deprecated shim over :meth:`repro.api.types.SearchResponse.to_json`.

    Returns the current versioned wire shape — a superset of the pre-API
    dict (same ``answers``/``tables_considered``/``rows_matched`` content,
    plus a leading ``schema_version`` key).  Callers comparing two of these
    payloads are unaffected; callers pinning the exact pre-API key set
    should move to the typed :class:`SearchResponse`.
    """
    return SearchResponse.from_ranked(response, top_k=top_k).to_json()


def _session_config(
    default_engine: str | None,
    pipeline_config: PipelineConfig | None,
    session_config: SessionConfig | None,
) -> SessionConfig:
    """Fold the legacy ``(engine, PipelineConfig)`` wiring into one
    :class:`SessionConfig` (the pre-API constructor signature still works).

    An explicit ``default_engine`` wins; otherwise the session config's own
    engine stands (``default_engine=None`` means "not specified").
    """
    if session_config is not None:
        engine = default_engine if default_engine is not None else session_config.engine
        if session_config.engine != engine:
            session_config = replace(session_config, engine=engine)
        return session_config
    engine = default_engine if default_engine is not None else "batched"
    if pipeline_config is None:
        return SessionConfig(engine=engine)
    return SessionConfig(
        engine=engine,
        candidate_engine=pipeline_config.annotator.candidate_engine,
        fusion=pipeline_config.annotator.fusion,
        executor=pipeline_config.executor,
        workers=pipeline_config.workers,
        batch_size=pipeline_config.batch_size,
        cache_size=pipeline_config.cache_size,
        compiled_cache_size=pipeline_config.compiled_cache_size,
        annotator=replace(pipeline_config.annotator, engine=engine),
    )


class ServeState:
    """Everything one server process shares across requests."""

    def __init__(
        self,
        bundle: LoadedBundle,
        default_engine: str | None = None,
        pipeline_config: PipelineConfig | None = None,
        metrics_window: int = 2048,
        session_config: SessionConfig | None = None,
    ) -> None:
        config = _session_config(default_engine, pipeline_config, session_config)
        self.session = ReproSession.from_bundle(bundle, config=config)
        self.bundle = bundle
        self.catalog = bundle.catalog
        self.model = bundle.model
        self.index = bundle.table_index
        self.default_engine = config.engine
        self.metrics = MetricsRegistry(window_size=metrics_window)

    # ------------------------------------------------------------------
    # pipelines (kept for introspection / tests)
    # ------------------------------------------------------------------
    def pipeline(self, engine: str) -> AnnotationPipeline:
        """The session's shared pipeline for ``engine``."""
        return self.session.pipeline(engine)

    # ------------------------------------------------------------------
    # request handlers: decode -> session -> encode
    # ------------------------------------------------------------------
    def handle(self, endpoint: str, payload: dict) -> dict:
        """Route one decoded request body by endpoint name.

        The single routing table shared by the in-process backend and the
        pool workers (:mod:`repro.serve.pool`), so the two serving modes
        cannot drift.  ``_sleep`` is a drain/test aid — it is never routed
        by the HTTP server, only reachable through a dispatcher handle.
        """
        if endpoint == "annotate":
            return self.annotate_payload(payload)
        if endpoint == "search":
            return self.search_payload(payload)
        if endpoint == "search_join":
            return self.search_join_payload(payload)
        if endpoint == "_sleep":
            time.sleep(float(payload.get("seconds", 0.0)))
            return {"slept": payload.get("seconds", 0.0), "pid": os.getpid()}
        raise ApiError(api_errors.NOT_FOUND, f"unknown endpoint: {endpoint}")

    def handle_batch(self, endpoint: str, payloads: list[dict]) -> dict:
        """Handle one coalesced super-batch with per-item error isolation.

        Returns ``{"results": [...]}`` with one outcome per payload, in
        order: ``{"ok": <response body>}`` or ``{"error": <ErrorEnvelope>}``
        — exactly the bodies and envelopes the per-request path would emit,
        which is what makes serve-time batching invisible in responses.
        ``annotate`` batches run fused through the session
        (:meth:`~repro.api.session.ReproSession.annotate_batch`); any other
        endpoint degrades to a per-item loop over :meth:`handle`.
        """
        if endpoint == "annotate":
            return {"results": self._annotate_batch_results(payloads)}
        results: list[dict] = []
        for payload in payloads:
            try:
                results.append({"ok": self.handle(endpoint, payload)})
            except Exception as error:  # noqa: BLE001 - isolate batchmates
                results.append(
                    {"error": ErrorEnvelope.from_error(error).to_json()}
                )
        return {"results": results}

    def _annotate_batch_results(self, payloads: list[dict]) -> list[dict]:
        """Decode, fuse-annotate and encode one ``annotate`` batch."""
        outcomes: list[dict | None] = [None] * len(payloads)
        requests: list[AnnotateRequest] = []
        decoded_indices: list[int] = []
        for index, payload in enumerate(payloads):
            try:
                requests.append(AnnotateRequest.from_json(payload))
            except Exception as error:  # noqa: BLE001 - isolate batchmates
                outcomes[index] = {
                    "error": ErrorEnvelope.from_error(error).to_json()
                }
            else:
                decoded_indices.append(index)
        if requests:
            responses = self.session.annotate_batch(requests)
            for index, response in zip(decoded_indices, responses):
                if isinstance(response, ApiError):
                    outcomes[index] = {
                        "error": ErrorEnvelope.from_error(response).to_json()
                    }
                else:
                    outcomes[index] = {"ok": response.to_json()}
        return [
            outcome
            if outcome is not None
            else {
                "error": ErrorEnvelope.from_error(
                    ApiError(
                        api_errors.INTERNAL_ERROR, "batch slot never resolved"
                    )
                ).to_json()
            }
            for outcome in outcomes
        ]

    def annotate_payload(self, payload: dict) -> dict:
        """Handle one ``/annotate`` body."""
        return self.session.annotate(AnnotateRequest.from_json(payload)).to_json()

    def search_payload(self, payload: dict) -> dict:
        """Handle one ``/search`` body."""
        return self.session.search(SearchRequest.from_json(payload)).to_json()

    def search_join_payload(self, payload: dict) -> dict:
        """Handle one ``/search/join`` body (two-hop join queries)."""
        return self.session.join_search(
            JoinSearchRequest.from_json(payload)
        ).to_json()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return {
            "status": "ok",
            "schema_version": SCHEMA_VERSION,
            "bundle": str(self.bundle.path),
            "tables": len(self.index),
            "default_engine": self.default_engine,
            "catalog": self.bundle.manifest.identity.get("catalog_name"),
            "model_sha256": self.bundle.manifest.identity.get("model_sha256"),
        }

    def metrics_snapshot(self) -> dict:
        snapshot = self.metrics.snapshot()
        snapshot["schema_version"] = SCHEMA_VERSION
        snapshot["caches"] = self.cache_stats()
        snapshot["bundle"] = {
            "path": str(self.bundle.path),
            "tables": len(self.index),
            "identity": self.bundle.manifest.identity,
        }
        return snapshot

    def worker_stats(self) -> dict:
        """The per-process stats fragment a pool worker reports to the
        dispatcher's ``/metrics`` aggregation (see :mod:`repro.serve.pool`)."""
        return {"pid": os.getpid(), "caches": self.cache_stats()}

    def cache_stats(self) -> dict:
        """Cache/fusion counters of every warm pipeline, keyed by engine."""
        caches: dict[str, dict] = {}
        for engine, pipeline in sorted(self.session.pipelines().items()):
            entry: dict[str, dict] = {}
            for cache_name, cache in (
                ("candidate_cache", pipeline.cache),
                ("block_cache", pipeline.block_cache),
                ("compiled_graph_cache", pipeline.compiled_cache),
            ):
                if cache is None:
                    continue
                stats = cache.stats()
                entry[cache_name] = {
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "hit_rate": round(stats.hit_rate, 4),
                    "entries": stats.entries,
                    "evictions": stats.evictions,
                }
            report = pipeline.last_report
            entry["fusion"] = {
                "mode": pipeline.config.annotator.fusion,
                "fused_batches": report.fused_batches if report else 0,
                "bucket_size_histogram": (
                    report.bucket_size_histogram if report else {}
                ),
            }
            caches[engine] = entry
        return caches
