"""Warm, shared serving state: one bundle, many concurrent requests.

Concurrency model (the whole locking story):

* **Bundle state is immutable.**  The catalog, the frozen lemma/header/
  context indexes and the annotated table index are never mutated after
  :func:`~repro.serve.bundle.load_bundle`, so every search request reads
  them lock-free.
* **Annotation is a pure function with thread-safe memoisation.**  One
  :class:`~repro.pipeline.AnnotationPipeline` per engine is shared by all
  requests; its candidate / feature-block / compiled-graph LRUs carry their
  own internal locks (:class:`~repro.pipeline.cache.LRUCache`), and the
  pipeline already supports threaded execution, so concurrent ``/annotate``
  requests produce exactly the answers serial requests would (covered by
  the concurrency determinism tests).
* **The per-table timing ledger is bounded.**  ``TableAnnotator.annotate``
  appends one timing record per call (a GIL-atomic list append); a
  long-lived process would grow it without bound, so this layer trims it
  under ``_timings_lock`` once it passes a threshold.  Each response reads
  its own timing from the annotation's diagnostics, never from the ledger.
* **Everything else** (metrics registry, lazy creation of the non-default
  engine's pipeline) sits behind one small mutex each.
"""

from __future__ import annotations

import threading
from dataclasses import replace

from repro.catalog.errors import CatalogError
from repro.core.candidates import CandidateGenerator
from repro.core.inference import ENGINES
from repro.pipeline.io import annotation_to_dict
from repro.pipeline.pipeline import AnnotationPipeline, PipelineConfig
from repro.search.annotated_search import AnnotatedSearcher
from repro.search.join_search import JoinQuery, JoinSearcher
from repro.search.query import RelationQuery
from repro.search.ranking import SearchResponse, build_lemma_resolver
from repro.search.table_index import AnnotatedTableIndex
from repro.serve.bundle import LoadedBundle
from repro.serve.errors import BadRequestError
from repro.serve.metrics import MetricsRegistry
from repro.tables.model import Table

#: trim the annotator's timing ledger once it exceeds this many entries
MAX_TIMING_LEDGER = 4096


def response_to_dict(response: SearchResponse, top_k: int | None = None) -> dict:
    """JSON shape of one search response (stable field order)."""
    answers = response.answers if top_k is None else response.answers[:top_k]
    return {
        "answers": [
            {
                "text": answer.text,
                "score": answer.score,
                "entity_id": answer.entity_id,
                "supporting_tables": list(answer.supporting_tables),
            }
            for answer in answers
        ],
        "tables_considered": response.tables_considered,
        "rows_matched": response.rows_matched,
    }


def _require(payload: dict, key: str) -> object:
    if not isinstance(payload, dict) or key not in payload:
        raise BadRequestError(f"missing required field: {key!r}")
    return payload[key]


def _optional_top_k(payload: dict) -> int | None:
    top_k = payload.get("top_k")
    if top_k is None:
        return None
    if not isinstance(top_k, int) or top_k < 1:
        raise BadRequestError("top_k must be a positive integer")
    return top_k


class ServeState:
    """Everything one server process shares across requests."""

    def __init__(
        self,
        bundle: LoadedBundle,
        default_engine: str = "batched",
        pipeline_config: PipelineConfig | None = None,
        metrics_window: int = 2048,
    ) -> None:
        if default_engine not in ENGINES:
            raise ValueError(f"unknown engine: {default_engine!r}")
        self.bundle = bundle
        self.catalog = bundle.catalog
        self.model = bundle.model
        self.index: AnnotatedTableIndex = bundle.table_index
        self.default_engine = default_engine
        self._base_config = (
            pipeline_config if pipeline_config is not None else PipelineConfig()
        )
        # one generator (hence one frozen lemma index) shared by every
        # engine's pipeline — loaded straight from the bundle, never rebuilt
        self._generator = CandidateGenerator(
            self.catalog,
            top_k_entities=self._base_config.annotator.top_k_entities,
            max_type_candidates=self._base_config.annotator.max_type_candidates,
            lemma_index=bundle.lemma_index,
            lemma_tfidf=bundle.lemma_tfidf,
        )
        self._pipelines: dict[str, AnnotationPipeline] = {}
        self._pipeline_lock = threading.Lock()
        self._timings_lock = threading.Lock()
        self.metrics = MetricsRegistry(window_size=metrics_window)

        lemma_resolver = build_lemma_resolver(self.catalog)
        self._searchers = {
            True: AnnotatedSearcher(
                self.index,
                self.catalog,
                use_relations=True,
                lemma_resolver=lemma_resolver,
            ),
            False: AnnotatedSearcher(
                self.index,
                self.catalog,
                use_relations=False,
                lemma_resolver=lemma_resolver,
            ),
        }
        self._join_searcher = JoinSearcher(
            self.index, self.catalog, lemma_resolver=lemma_resolver
        )
        # warm the default engine so the first request pays nothing extra
        self.pipeline(default_engine)

    # ------------------------------------------------------------------
    # pipelines
    # ------------------------------------------------------------------
    def pipeline(self, engine: str) -> AnnotationPipeline:
        """The shared pipeline for ``engine`` (built lazily, then reused)."""
        if engine not in ENGINES:
            raise BadRequestError(
                f"unknown engine: {engine!r} (choose from {', '.join(ENGINES)})"
            )
        pipeline = self._pipelines.get(engine)
        if pipeline is not None:
            return pipeline
        with self._pipeline_lock:
            pipeline = self._pipelines.get(engine)
            if pipeline is None:
                config = replace(
                    self._base_config,
                    annotator=replace(self._base_config.annotator, engine=engine),
                )
                pipeline = AnnotationPipeline(
                    self.catalog,
                    model=self.model,
                    config=config,
                    candidate_generator=self._generator,
                )
                self._pipelines[engine] = pipeline
            return pipeline

    def _trim_timing_ledger(self, pipeline: AnnotationPipeline) -> None:
        timings = pipeline.annotator.timings
        if len(timings) > MAX_TIMING_LEDGER:
            with self._timings_lock:
                if len(timings) > MAX_TIMING_LEDGER:
                    timings.clear()

    # ------------------------------------------------------------------
    # request handlers (transport-independent)
    # ------------------------------------------------------------------
    def annotate_payload(self, payload: dict) -> dict:
        """Handle one ``/annotate`` body: ``{"table": {...}, "engine"?}``."""
        table_payload = _require(payload, "table")
        try:
            table = Table.from_dict(table_payload)
        except (KeyError, TypeError, ValueError) as error:
            raise BadRequestError(f"invalid table payload: {error}")
        engine = payload.get("engine") or self.default_engine
        pipeline = self.pipeline(engine)
        annotation = pipeline.annotate(table)
        self._trim_timing_ledger(pipeline)
        timing = annotation.diagnostics.get("timing")
        return {
            "table_id": table.table_id,
            "engine": engine,
            "annotation": annotation_to_dict(annotation),
            "diagnostics": {
                "iterations": annotation.diagnostics.get("iterations"),
                "converged": annotation.diagnostics.get("converged"),
                "n_variables": annotation.diagnostics.get("n_variables"),
                "n_factors": annotation.diagnostics.get("n_factors"),
            },
            "timing_seconds": (
                {
                    "total": timing.total_seconds,
                    "candidates": timing.candidate_seconds,
                    "inference": timing.inference_seconds,
                }
                if timing is not None
                else None
            ),
        }

    def search_payload(self, payload: dict) -> dict:
        """Handle one ``/search`` body: ``{"relation", "entity", ...}``."""
        relation_id = _require(payload, "relation")
        entity_id = _require(payload, "entity")
        use_relations = bool(payload.get("use_relations", True))
        try:
            query = RelationQuery.from_catalog(self.catalog, relation_id, entity_id)
        except CatalogError as error:
            raise BadRequestError(str(error))
        response = self._searchers[use_relations].search(query)
        return response_to_dict(response, top_k=_optional_top_k(payload))

    def search_join_payload(self, payload: dict) -> dict:
        """Handle one ``/search/join`` body (two-hop join queries)."""
        first = _require(payload, "first_relation")
        second = _require(payload, "second_relation")
        entity_id = _require(payload, "entity")
        try:
            query = JoinQuery.from_catalog(self.catalog, first, second, entity_id)
        except (CatalogError, ValueError) as error:
            raise BadRequestError(str(error))
        response = self._join_searcher.search(query)
        return response_to_dict(response, top_k=_optional_top_k(payload))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return {
            "status": "ok",
            "bundle": str(self.bundle.path),
            "tables": len(self.index),
            "default_engine": self.default_engine,
            "catalog": self.bundle.manifest.identity.get("catalog_name"),
            "model_sha256": self.bundle.manifest.identity.get("model_sha256"),
        }

    def metrics_snapshot(self) -> dict:
        snapshot = self.metrics.snapshot()
        caches: dict[str, dict] = {}
        with self._pipeline_lock:
            pipelines = dict(self._pipelines)
        for engine, pipeline in sorted(pipelines.items()):
            entry: dict[str, dict] = {}
            for cache_name, cache in (
                ("candidate_cache", pipeline.cache),
                ("block_cache", pipeline.block_cache),
                ("compiled_graph_cache", pipeline.compiled_cache),
            ):
                if cache is None:
                    continue
                stats = cache.stats()
                entry[cache_name] = {
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "hit_rate": round(stats.hit_rate, 4),
                    "entries": stats.entries,
                    "evictions": stats.evictions,
                }
            caches[engine] = entry
        snapshot["caches"] = caches
        snapshot["bundle"] = {
            "path": str(self.bundle.path),
            "tables": len(self.index),
            "identity": self.bundle.manifest.identity,
        }
        return snapshot
