"""Request metrics for the long-lived server.

Two registries, both locked the same way (all mutation under one mutex —
the arithmetic is nanoseconds next to request work):

* :class:`MetricsRegistry` — per-endpoint counters and a bounded window of
  recent latencies, observed at the HTTP layer.  This is the **aggregate**
  view: whatever the worker topology, every request lands here once.
* :class:`DispatcherMetrics` — the multi-process tier's split of the same
  traffic: per-worker handler-latency histograms (the time inside the
  worker process, excluding queue wait), a queue-wait window, and the
  dispatcher counters (sheds, worker restarts, reloads, in-flight gauge).
* :class:`BatchingMetrics` — the request coalescer's accounting: how many
  requests rode a fused super-batch vs. ran solo, the batch-size
  histogram, and a window of coalesce waits (time a request sat in the
  batching queue before its batch executed).

``/metrics`` reports all of them: the aggregate ``endpoints`` section
keeps its shape from the single-process days, the ``workers`` /
``dispatcher`` sections carry the per-worker split, and ``batching``
appears when the coalescer is enabled (see ``docs/OPERATIONS.md`` for the
full field reference).
"""

from __future__ import annotations

import threading
import time
from collections import deque


def percentile(ordered: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 for empty input)."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


class EndpointMetrics:
    """Counters plus a recent-latency window for one endpoint."""

    def __init__(self, window_size: int) -> None:
        self.requests = 0
        self.errors = 0
        self.total_seconds = 0.0
        self.window: deque[float] = deque(maxlen=window_size)

    def observe(self, seconds: float, error: bool) -> None:
        self.requests += 1
        self.total_seconds += seconds
        if error:
            self.errors += 1
        else:
            # error latencies are short-circuit paths; keeping them out of
            # the window stops a burst of 400s from masking real latency
            self.window.append(seconds)

    def snapshot(self) -> dict:
        ordered = sorted(self.window)
        return {
            "requests": self.requests,
            "errors": self.errors,
            "total_seconds": round(self.total_seconds, 6),
            "latency_seconds": {
                "p50": round(percentile(ordered, 0.50), 6),
                "p90": round(percentile(ordered, 0.90), 6),
                "p99": round(percentile(ordered, 0.99), 6),
                "max": round(ordered[-1], 6) if ordered else 0.0,
                "window": len(ordered),
            },
        }


class MetricsRegistry:
    """Thread-safe per-endpoint request accounting."""

    def __init__(self, window_size: int = 2048) -> None:
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        self._window_size = window_size
        self._endpoints: dict[str, EndpointMetrics] = {}
        self._lock = threading.Lock()
        self._started = time.time()

    def observe(self, endpoint: str, seconds: float, error: bool = False) -> None:
        with self._lock:
            metrics = self._endpoints.get(endpoint)
            if metrics is None:
                metrics = self._endpoints[endpoint] = EndpointMetrics(
                    self._window_size
                )
            metrics.observe(seconds, error)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "uptime_seconds": round(time.time() - self._started, 3),
                "endpoints": {
                    endpoint: metrics.snapshot()
                    for endpoint, metrics in sorted(self._endpoints.items())
                },
            }


class DispatcherMetrics:
    """Per-worker and dispatcher-level accounting for the pre-fork tier.

    Worker names are generation-qualified (``g1.w0``): a hot-swap starts a
    fresh histogram per new worker instead of mixing two bundles' latency
    profiles.  Every method takes the one lock; the snapshot is a deep copy
    so callers never alias live state.
    """

    def __init__(self, window_size: int = 2048) -> None:
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        self._window_size = window_size
        self._lock = threading.Lock()
        self._workers: dict[str, EndpointMetrics] = {}
        self._queue_window: deque[float] = deque(maxlen=window_size)
        self._shed: dict[str, int] = {}
        self._in_flight = 0
        self._worker_restarts = 0
        self._reloads = 0

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------
    def observe_admitted(self) -> None:
        with self._lock:
            self._in_flight += 1

    def observe_done(
        self,
        worker: str,
        queue_seconds: float,
        handler_seconds: float,
        error: bool,
    ) -> None:
        """One request finished on ``worker`` (successfully or with an
        API error — transport-level worker deaths go through
        :meth:`observe_worker_restart` instead)."""
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)
            metrics = self._workers.get(worker)
            if metrics is None:
                metrics = self._workers[worker] = EndpointMetrics(
                    self._window_size
                )
            metrics.observe(handler_seconds, error)
            self._queue_window.append(queue_seconds)

    def observe_shed(self, endpoint: str) -> None:
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)
            self._shed[endpoint] = self._shed.get(endpoint, 0) + 1

    def observe_worker_failed(self) -> None:
        """A request died with its worker: drop the in-flight slot."""
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)
            self._worker_restarts += 1

    def observe_worker_restart(self) -> None:
        """An idle worker found dead by the health sweep and replaced."""
        with self._lock:
            self._worker_restarts += 1

    def observe_reload(self) -> None:
        with self._lock:
            self._reloads += 1

    def forget_worker(self, worker: str) -> None:
        """Drop a retired generation's histogram (its counters already
        contributed to the aggregate registry)."""
        with self._lock:
            self._workers.pop(worker, None)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def worker_snapshot(self, worker: str) -> dict:
        with self._lock:
            metrics = self._workers.get(worker)
            if metrics is None:
                return EndpointMetrics(self._window_size).snapshot()
            return metrics.snapshot()

    def snapshot(self) -> dict:
        with self._lock:
            ordered = sorted(self._queue_window)
            return {
                "in_flight": self._in_flight,
                "shed_total": sum(self._shed.values()),
                "shed": dict(sorted(self._shed.items())),
                "worker_restarts": self._worker_restarts,
                "reloads": self._reloads,
                "queue_wait_seconds": {
                    "p50": round(percentile(ordered, 0.50), 6),
                    "p90": round(percentile(ordered, 0.90), 6),
                    "p99": round(percentile(ordered, 0.99), 6),
                    "max": round(ordered[-1], 6) if ordered else 0.0,
                    "window": len(ordered),
                },
            }


class BatchingMetrics:
    """The request coalescer's accounting (fused-vs-solo split).

    One instance per :class:`~repro.serve.dispatcher.BatchingBackend`.  All
    mutation under one mutex, same as the other registries; the snapshot is
    a fresh dict so callers never alias live state.
    """

    def __init__(self, window_size: int = 2048) -> None:
        if window_size < 1:
            # reprolint: ignore[exc-unclassified]: a programmer-error guard
            # at construction time, never reachable from a request
            raise ValueError("window_size must be >= 1")
        self._lock = threading.Lock()
        self._batches = 0
        self._batch_errors = 0
        self._batched_requests = 0
        self._solo_requests = 0
        self._shed = 0
        self._size_histogram: dict[int, int] = {}
        self._wait_window: deque[float] = deque(maxlen=window_size)

    def observe_batch(
        self, size: int, waits: list[float], error: bool = False
    ) -> None:
        """One coalesced super-batch executed (``waits`` holds each rider's
        time in the batching queue; ``error`` means the whole batch failed
        at the transport level, not that one table errored)."""
        with self._lock:
            self._batches += 1
            self._batched_requests += size
            if error:
                self._batch_errors += 1
            self._size_histogram[size] = self._size_histogram.get(size, 0) + 1
            self._wait_window.extend(waits)

    def observe_solo(self) -> None:
        """One request bypassed the coalescer (non-annotate endpoint or an
        engine override the batch default cannot serve)."""
        with self._lock:
            self._solo_requests += 1

    def observe_shed(self) -> None:
        """One request shed because the batching queue was full."""
        with self._lock:
            self._shed += 1

    def snapshot(self) -> dict:
        with self._lock:
            ordered = sorted(self._wait_window)
            batches = self._batches
            return {
                "batches": batches,
                "batch_errors": self._batch_errors,
                "batched_requests": self._batched_requests,
                "solo_requests": self._solo_requests,
                "shed": self._shed,
                "mean_batch_size": (
                    round(self._batched_requests / batches, 3) if batches else 0.0
                ),
                "batch_size_histogram": {
                    str(size): count
                    for size, count in sorted(self._size_histogram.items())
                },
                "coalesce_wait_seconds": {
                    "p50": round(percentile(ordered, 0.50), 6),
                    "p90": round(percentile(ordered, 0.90), 6),
                    "p99": round(percentile(ordered, 0.99), 6),
                    "max": round(ordered[-1], 6) if ordered else 0.0,
                    "window": len(ordered),
                },
            }
