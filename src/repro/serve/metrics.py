"""Request metrics for the long-lived server.

One :class:`MetricsRegistry` per server.  Every handled request records
``(endpoint, seconds, error)``; the registry keeps per-endpoint counters and
a bounded window of recent latencies from which ``/metrics`` reports
percentiles.  All mutation happens under one lock — the arithmetic is
nanoseconds next to request work, so a single mutex is the entire
concurrency story here.
"""

from __future__ import annotations

import threading
import time
from collections import deque


def percentile(ordered: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 for empty input)."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


class EndpointMetrics:
    """Counters plus a recent-latency window for one endpoint."""

    def __init__(self, window_size: int) -> None:
        self.requests = 0
        self.errors = 0
        self.total_seconds = 0.0
        self.window: deque[float] = deque(maxlen=window_size)

    def observe(self, seconds: float, error: bool) -> None:
        self.requests += 1
        self.total_seconds += seconds
        if error:
            self.errors += 1
        else:
            # error latencies are short-circuit paths; keeping them out of
            # the window stops a burst of 400s from masking real latency
            self.window.append(seconds)

    def snapshot(self) -> dict:
        ordered = sorted(self.window)
        return {
            "requests": self.requests,
            "errors": self.errors,
            "total_seconds": round(self.total_seconds, 6),
            "latency_seconds": {
                "p50": round(percentile(ordered, 0.50), 6),
                "p90": round(percentile(ordered, 0.90), 6),
                "p99": round(percentile(ordered, 0.99), 6),
                "max": round(ordered[-1], 6) if ordered else 0.0,
                "window": len(ordered),
            },
        }


class MetricsRegistry:
    """Thread-safe per-endpoint request accounting."""

    def __init__(self, window_size: int = 2048) -> None:
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        self._window_size = window_size
        self._endpoints: dict[str, EndpointMetrics] = {}
        self._lock = threading.Lock()
        self._started = time.time()

    def observe(self, endpoint: str, seconds: float, error: bool = False) -> None:
        with self._lock:
            metrics = self._endpoints.get(endpoint)
            if metrics is None:
                metrics = self._endpoints[endpoint] = EndpointMetrics(
                    self._window_size
                )
            metrics.observe(seconds, error)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "uptime_seconds": round(time.time() - self._started, 3),
                "endpoints": {
                    endpoint: metrics.snapshot()
                    for endpoint, metrics in sorted(self._endpoints.items())
                },
            }
