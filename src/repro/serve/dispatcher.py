"""The serving parent: admission control, load balancing, worker lifecycle.

One :class:`Dispatcher` sits between the threaded HTTP front end and the
pre-fork worker pool (:mod:`repro.serve.pool`).  Its job is four loops of
bookkeeping around a very small hot path:

* **Admission + backpressure.**  A generation of ``N`` workers with queue
  depth ``Q`` admits at most ``N + Q`` requests; a request that cannot be
  admitted within ``shed_timeout_seconds`` is shed with a 503
  ``overloaded`` *before* it consumes any worker time.  Under overload the
  server degrades to a bounded queue plus fast rejections instead of an
  unbounded thread pile-up.  Admission is strictly FIFO
  (:class:`FifoSlots`): freed slots go to the longest-waiting request, so
  no request starves behind later arrivals however long the overload
  lasts.
* **Load balancing.**  Admitted requests take the first idle worker (a
  plain queue: workers that finish fastest serve the most requests, which
  is the right policy for homogeneous workers over one shared bundle).
* **Health.**  A sweep thread replaces dead workers every
  ``health_interval_seconds``; a worker that dies or wedges mid-request is
  replaced immediately and the request fails with a 503 ``worker_failed``
  (the client retries; every other in-flight request is untouched).
* **Hot swap.**  ``reload()`` builds a whole new *generation* — load the
  new bundle, fork fresh workers, ping them ready — then atomically swaps
  it in.  Requests admitted before the swap drain on the old generation;
  requests after it run on the new one.  The old generation is retired
  once drained (bounded by ``drain_timeout_seconds``).

Lock discipline (checked by ``repro lint``'s ``lock-unguarded-attr`` rule):
every access to the generation table (``_active``, ``_generation_seq``,
per-generation worker lists) happens under ``_lock``; metrics live behind
their own locks in :mod:`repro.serve.metrics`; the pipe of each worker is
serialized by its handle's lock.  The only lock-free state is each
handle's ``defunct`` flag, written exactly once under ``_lock`` and read
opportunistically (a stale ``False`` just costs one extra liveness check).
"""

from __future__ import annotations

import queue
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.api import errors as api_errors
from repro.api.config import SessionConfig
from repro.api.errors import ApiError, to_api_error
from repro.api.types import SCHEMA_VERSION
from repro.serve.bundle import LoadedBundle, load_bundle
from repro.serve.metrics import (
    BatchingMetrics,
    DispatcherMetrics,
    MetricsRegistry,
)
from repro.serve.pool import WorkerHandle, WorkerTimeout, spawn_worker

if TYPE_CHECKING:
    from repro.serve.server import Backend

_PIPE_ERRORS = (WorkerTimeout, OSError, EOFError, BrokenPipeError)


class FifoSlots:
    """Admission tickets handed out strictly in arrival order.

    A drop-in for the ``threading.Semaphore`` the dispatcher used to use,
    with one behavioral difference that matters under sustained overload:
    ``Semaphore`` wakes blocked acquirers in arbitrary order, so an unlucky
    request can lose every wakeup race and wait orders of magnitude longer
    than its peers (the p99 ≈ 100× p50 signature in ``BENCH_serve.json``).
    Here a released slot is handed directly to the longest-waiting ticket,
    and a fresh ``acquire`` never jumps past parked waiters.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            # reprolint: ignore[exc-unclassified]: a programmer-error guard
            # at construction time, never reachable from a request
            raise ValueError("capacity must be >= 1")
        self._lock = threading.Lock()
        self._available = capacity
        self._waiters: deque[threading.Event] = deque()

    def acquire(self, timeout: float | None = None) -> bool:
        """Take one slot; False when none frees up within ``timeout``."""
        with self._lock:
            if self._available > 0 and not self._waiters:
                self._available -= 1
                return True
            ticket = threading.Event()
            self._waiters.append(ticket)
        if ticket.wait(timeout):
            return True
        with self._lock:
            if ticket.is_set():
                # a release handed us the slot in the instant we timed out;
                # the hand-off already consumed it, so the acquire stands
                return True
            self._waiters.remove(ticket)
        return False

    def release(self) -> None:
        """Free one slot — passed to the head waiter if anyone is parked."""
        with self._lock:
            if self._waiters:
                self._waiters.popleft().set()
            else:
                self._available += 1


class _Generation:
    """One bundle's worth of workers plus its admission bookkeeping."""

    def __init__(
        self,
        generation_id: int,
        bundle: LoadedBundle,
        workers: list[WorkerHandle],
        queue_depth: int,
    ) -> None:
        self.id = generation_id
        self.bundle = bundle
        self.workers = workers
        self.capacity = len(workers) + queue_depth
        self.slots = FifoSlots(self.capacity)
        self.idle: queue.Queue[WorkerHandle] = queue.Queue()
        for worker in workers:
            self.idle.put(worker)
        self.next_worker_index = len(workers)
        self.retired = False


class Dispatcher:
    """The multi-process serving backend (see module docs).

    Implements the same backend surface as the in-process
    :class:`~repro.serve.server.InlineBackend`: ``call`` / ``healthz`` /
    ``metrics_snapshot`` / ``reload`` / ``observe`` / ``shutdown``.
    """

    def __init__(
        self,
        bundle_path: str | Path,
        config: SessionConfig | None = None,
        verify: bool = True,
        quiet: bool = True,
        metrics_window: int = 2048,
    ) -> None:
        self.config = config if config is not None else SessionConfig()
        serve = self.config.serve
        self.workers = serve.workers
        self.queue_depth = serve.queue_depth
        self.shed_timeout = serve.shed_timeout_seconds
        self.request_timeout = serve.request_timeout_seconds
        self.drain_timeout = serve.drain_timeout_seconds
        self._verify = verify
        self._quiet = quiet
        self.registry = MetricsRegistry(window_size=metrics_window)
        self.dispatch_metrics = DispatcherMetrics(window_size=metrics_window)
        self._lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._generation_seq = 1
        bundle = load_bundle(bundle_path, verify=verify)
        self._active = self._spawn_generation(1, bundle)
        self._health_thread = threading.Thread(
            target=self._health_loop,
            name="repro-serve-health",
            daemon=True,
        )
        self._health_thread.start()

    # ------------------------------------------------------------------
    # generation construction
    # ------------------------------------------------------------------
    def _spawn_generation(
        self, generation_id: int, bundle: LoadedBundle
    ) -> _Generation:
        workers: list[WorkerHandle] = []
        try:
            for index in range(self.workers):
                workers.append(
                    spawn_worker(
                        f"g{generation_id}.w{index}",
                        generation_id,
                        bundle,
                        self.config,
                    )
                )
        except Exception:
            for worker in workers:
                worker.stop(timeout=1.0)
            raise
        self._log(
            f"generation {generation_id}: {len(workers)} worker(s) ready "
            f"on {bundle.path}"
        )
        return _Generation(generation_id, bundle, workers, self.queue_depth)

    def _log(self, message: str) -> None:
        if not self._quiet:
            sys.stderr.write(f"[dispatcher] {message}\n")
            sys.stderr.flush()

    def _current(self) -> _Generation:
        with self._lock:
            return self._active

    # ------------------------------------------------------------------
    # the hot path
    # ------------------------------------------------------------------
    def call(self, endpoint: str, payload: dict) -> dict:
        """Dispatch one request to a worker; raises :class:`ApiError`."""
        result: dict = self._admit_and_call(("request", endpoint, payload))
        return result

    def call_batch(
        self,
        endpoint: str,
        payloads: list[dict],
        timeout: float | None = None,
    ) -> list[dict]:
        """Run one coalesced super-batch on a single worker.

        The whole bucket ships as one ``batch`` pipe message; the worker
        answers with one outcome per payload (failures isolated per item by
        :meth:`~repro.serve.state.ServeState.handle_batch`).  ``timeout``
        bounds the worker round trip — the coalescer passes the tightest
        member deadline so ``request_timeout`` stays per request, not per
        batch.  Raises :class:`ApiError` only on whole-batch failure
        (shed admission, dead worker).
        """
        reply = self._admit_and_call(
            ("batch", endpoint, payloads), timeout=timeout
        )
        results = reply.get("results") if isinstance(reply, dict) else None
        if not isinstance(results, list) or len(results) != len(payloads):
            raise ApiError(
                api_errors.INTERNAL_ERROR,
                "worker returned a malformed batch reply",
            )
        return results

    def _admit_and_call(
        self, message: tuple, timeout: float | None = None
    ) -> dict:
        """Admission + one worker round trip (shared by call / call_batch)."""
        endpoint = message[1]
        generation = self._current()
        admitted_at = time.perf_counter()
        self.dispatch_metrics.observe_admitted()
        if not generation.slots.acquire(timeout=self.shed_timeout):
            self.dispatch_metrics.observe_shed(endpoint)
            raise ApiError(
                api_errors.OVERLOADED,
                f"server overloaded: {generation.capacity} requests already "
                f"in flight or queued (workers={self.workers}, "
                f"queue_depth={self.queue_depth}); retry with backoff",
            )
        try:
            worker = self._take_worker(generation)
            queue_seconds = time.perf_counter() - admitted_at
            try:
                reply = worker.call(
                    message,
                    timeout=(
                        timeout if timeout is not None else self.request_timeout
                    ),
                )
            except _PIPE_ERRORS as error:
                self.dispatch_metrics.observe_worker_failed()
                self._replace_worker(generation, worker, reason=str(error))
                raise ApiError(
                    api_errors.WORKER_FAILED,
                    f"worker {worker.name} died handling the request "
                    f"({type(error).__name__}); it is being replaced — retry",
                ) from error
            self._return_worker(generation, worker)
            kind = reply[0]
            if kind == "ok":
                self.dispatch_metrics.observe_done(
                    worker.name, queue_seconds, reply[2], error=False
                )
                result: dict = reply[1]
                return result
            envelope, handler_seconds = reply[1], reply[3]
            self.dispatch_metrics.observe_done(
                worker.name, queue_seconds, handler_seconds, error=True
            )
            error_body: Mapping[str, str] = envelope.get("error", {})
            raise ApiError(
                error_body.get("code", api_errors.INTERNAL_ERROR),
                error_body.get("message", "worker error"),
            )
        finally:
            generation.slots.release()

    def _take_worker(self, generation: _Generation) -> WorkerHandle:
        """Pop the first live idle worker (defunct handles are discarded)."""
        deadline = time.monotonic() + self.request_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.dispatch_metrics.observe_shed("queue_wait")
                raise ApiError(
                    api_errors.OVERLOADED,
                    "no worker became available within "
                    f"{self.request_timeout:.0f}s",
                )
            try:
                worker = generation.idle.get(timeout=min(remaining, 1.0))
            except queue.Empty:
                continue
            if worker.defunct:
                continue  # replaced worker already re-queued by its spawner
            if not worker.process.is_alive():
                self._replace_worker(
                    generation, worker, reason="found dead in idle pool"
                )
                continue
            return worker

    def _return_worker(
        self, generation: _Generation, worker: WorkerHandle
    ) -> None:
        if not worker.defunct:
            generation.idle.put(worker)

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _replace_worker(
        self, generation: _Generation, worker: WorkerHandle, reason: str
    ) -> None:
        """Retire one dead/wedged worker and fork its replacement.

        Idempotent per handle: the ``defunct`` flag flips exactly once
        under ``_lock``, so a request thread and the health sweep racing on
        the same corpse spawn exactly one replacement.
        """
        with self._lock:
            if worker.defunct or generation.retired:
                return
            worker.defunct = True
            generation.workers = [
                w for w in generation.workers if w is not worker
            ]
            name = f"g{generation.id}.w{generation.next_worker_index}"
            generation.next_worker_index += 1
        self._log(f"replacing worker {worker.name}: {reason}")
        worker.stop(timeout=1.0)
        self.dispatch_metrics.forget_worker(worker.name)
        try:
            replacement = spawn_worker(
                name, generation.id, generation.bundle, self.config
            )
        except Exception as error:  # noqa: BLE001 - degraded, not fatal
            self._log(f"failed to spawn replacement {name}: {error}")
            return
        with self._lock:
            retired = generation.retired
            if not retired:
                generation.workers.append(replacement)
        if retired:
            # stop() joins the child process — never block inside _lock
            replacement.stop(timeout=1.0)
            return
        generation.idle.put(replacement)
        self._log(f"worker {replacement.name} (pid {replacement.pid}) ready")

    def _health_loop(self) -> None:
        interval = max(self.config.serve.health_interval_seconds, 0.05)
        while not self._stop_event.wait(interval):
            generation = self._current()
            with self._lock:
                workers = list(generation.workers)
            for worker in workers:
                if not worker.defunct and not worker.process.is_alive():
                    self.dispatch_metrics.observe_worker_restart()
                    self._replace_worker(
                        generation, worker, reason="health sweep found it dead"
                    )

    # ------------------------------------------------------------------
    # hot swap + shutdown
    # ------------------------------------------------------------------
    def reload(self, payload: dict) -> dict:
        """``POST /admin/reload``: swap in a new bundle generation.

        Spawns and readies the new generation *before* the swap, so a bad
        bundle path or corrupt bundle leaves the serving generation
        untouched.  Returns once the old generation has drained (bounded by
        the drain timeout) and been stopped.
        """
        bundle_path = payload.get("bundle")
        if bundle_path is None:
            generation = self._current()
            bundle_path = str(generation.bundle.path)
        if not isinstance(bundle_path, str):
            raise ApiError(
                api_errors.VALIDATION_ERROR, "reload 'bundle' must be a path"
            )
        start = time.perf_counter()
        with self._reload_lock:
            bundle = load_bundle(bundle_path, verify=self._verify)
            with self._lock:
                generation_id = self._generation_seq + 1
            fresh = self._spawn_generation(generation_id, bundle)
            with self._lock:
                old = self._active
                self._active = fresh
                self._generation_seq = generation_id
            self.dispatch_metrics.observe_reload()
            # reprolint: ignore[lock-order-hold-wait]: _reload_lock exists
            # to serialize whole reloads end-to-end (request threads never
            # take it), so draining the old generation under it is the
            # point, not a hazard
            drained = self._retire(old)
        self._log(
            f"reloaded onto {bundle_path} as generation {fresh.id} "
            f"(old generation {'drained' if drained else 'FORCE-STOPPED'})"
        )
        return {
            "status": "ok",
            "generation": fresh.id,
            "bundle": str(bundle.path),
            "workers": len(fresh.workers),
            "previous_generation_drained": drained,
            "reload_seconds": round(time.perf_counter() - start, 3),
        }

    def _retire(self, generation: _Generation) -> bool:
        """Drain and stop one generation; True if it drained cleanly.

        Draining means re-acquiring the full admission capacity: every
        slot held by an in-flight request comes back through its
        ``finally``, so holding all of them proves the generation idle.
        """
        with self._lock:
            generation.retired = True
        deadline = time.monotonic() + self.drain_timeout
        drained = True
        for _ in range(generation.capacity):
            remaining = max(0.0, deadline - time.monotonic())
            if not generation.slots.acquire(timeout=remaining):
                drained = False
                break
        with self._lock:
            workers = list(generation.workers)
            generation.workers = []
        for worker in workers:
            worker.defunct = True
            worker.stop(timeout=5.0)
            self.dispatch_metrics.forget_worker(worker.name)
        return drained

    def shutdown(self, drain_timeout: float | None = None) -> bool:
        """Stop the health loop, drain in-flight work, stop every worker."""
        if drain_timeout is not None:
            self.drain_timeout = drain_timeout
        self._stop_event.set()
        self._health_thread.join(timeout=5.0)
        return self._retire(self._current())

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def observe(self, endpoint: str, seconds: float, error: bool) -> None:
        """Aggregate request accounting (called by the HTTP layer)."""
        self.registry.observe(endpoint, seconds, error=error)

    def healthz(self) -> dict:
        generation = self._current()
        with self._lock:
            alive = sum(1 for w in generation.workers if w.alive())
            total = len(generation.workers)
        bundle = generation.bundle
        return {
            "status": "ok" if alive else "error",
            "schema_version": SCHEMA_VERSION,
            "bundle": str(bundle.path),
            "tables": len(bundle.table_index),
            "default_engine": self.config.engine,
            "catalog": bundle.manifest.identity.get("catalog_name"),
            "model_sha256": bundle.manifest.identity.get("model_sha256"),
            "generation": generation.id,
            "workers": {"configured": self.workers, "alive": alive,
                        "current": total},
        }

    def _collect_worker_stats(
        self, timeout_per_worker: float = 0.25
    ) -> dict[str, dict]:
        """Cache stats from every *idle* worker (busy ones are skipped).

        Pops whatever the idle pool holds right now, round-trips a cheap
        ``stats`` message on each, and puts them back.  Workers mid-request
        simply do not appear — ``/metrics`` marks them busy rather than
        stalling behind a long annotation.
        """
        generation = self._current()
        borrowed: list[WorkerHandle] = []
        stats: dict[str, dict] = {}
        try:
            while True:
                try:
                    worker = generation.idle.get_nowait()
                except queue.Empty:
                    break
                if worker.defunct:
                    continue
                borrowed.append(worker)
        finally:
            for worker in borrowed:
                try:
                    reply = worker.call(("stats",), timeout=timeout_per_worker)
                    if reply[0] == "ok":
                        stats[worker.name] = reply[1]
                except _PIPE_ERRORS:
                    pass  # the health sweep will deal with it
                generation.idle.put(worker)
        return stats

    @staticmethod
    def _merge_cache_stats(per_worker: list[dict]) -> dict:
        """Sum cache counters across workers (hit rates recomputed)."""
        merged: dict[str, dict] = {}
        for caches in per_worker:
            for engine, entry in caches.items():
                target = merged.setdefault(engine, {})
                for cache_name, counters in entry.items():
                    if cache_name == "fusion":
                        fusion = target.setdefault(
                            "fusion",
                            {
                                "mode": counters.get("mode"),
                                "fused_batches": 0,
                                "bucket_size_histogram": {},
                            },
                        )
                        fusion["fused_batches"] += counters.get(
                            "fused_batches", 0
                        )
                        continue
                    cache = target.setdefault(
                        cache_name,
                        {"hits": 0, "misses": 0, "entries": 0, "evictions": 0},
                    )
                    for key in ("hits", "misses", "entries", "evictions"):
                        cache[key] += counters.get(key, 0)
        for entry in merged.values():
            for cache_name, counters in entry.items():
                if cache_name == "fusion":
                    continue
                total = counters["hits"] + counters["misses"]
                counters["hit_rate"] = (
                    round(counters["hits"] / total, 4) if total else 0.0
                )
        return merged

    def metrics_snapshot(self) -> dict:
        generation = self._current()
        snapshot = self.registry.snapshot()
        snapshot["schema_version"] = SCHEMA_VERSION
        worker_stats = self._collect_worker_stats()
        with self._lock:
            workers = list(generation.workers)
        workers_payload: dict[str, dict] = {}
        for worker in sorted(workers, key=lambda w: w.name):
            split = self.dispatch_metrics.worker_snapshot(worker.name)
            stats = worker_stats.get(worker.name)
            workers_payload[worker.name] = {
                "pid": worker.pid,
                "alive": worker.alive(),
                "generation": worker.generation,
                "requests": split["requests"],
                "errors": split["errors"],
                "handler_seconds": split["latency_seconds"],
                "caches": stats["caches"] if stats else None,
                "busy": stats is None,
            }
        snapshot["workers"] = workers_payload
        snapshot["dispatcher"] = {
            **self.dispatch_metrics.snapshot(),
            "generation": generation.id,
            "workers": len(workers),
            "alive_workers": sum(1 for w in workers if w.alive()),
            "queue_depth": self.queue_depth,
            "capacity": generation.capacity,
            "shed_timeout_seconds": self.shed_timeout,
            "request_timeout_seconds": self.request_timeout,
        }
        snapshot["caches"] = self._merge_cache_stats(
            [
                stats["caches"]
                for stats in worker_stats.values()
                if "caches" in stats
            ]
        )
        bundle = generation.bundle
        snapshot["bundle"] = {
            "path": str(bundle.path),
            "tables": len(bundle.table_index),
            "identity": bundle.manifest.identity,
        }
        return snapshot


class _PendingRequest:
    """One coalesced request parked between its HTTP thread and a batcher."""

    __slots__ = ("payload", "enqueued_at", "deadline", "done", "result", "error")

    def __init__(
        self, payload: dict, enqueued_at: float, deadline: float
    ) -> None:
        self.payload = payload
        self.enqueued_at = enqueued_at
        self.deadline = deadline
        self.done = threading.Event()
        self.result: dict | None = None
        self.error: ApiError | None = None

    def resolve(self, result: dict) -> None:
        self.result = result
        self.done.set()

    def fail(self, error: ApiError) -> None:
        self.error = error
        self.done.set()


class BatchingBackend:
    """Serve-time dynamic micro-batching over any serving backend.

    Sits between the HTTP layer and an inner backend (the
    :class:`Dispatcher` or an :class:`~repro.serve.server.InlineBackend`)
    and coalesces concurrent ``/annotate`` requests into fused
    super-batches: a request parks in a bounded queue until either
    ``batch_wait_ms`` passes or ``max_batch_size`` tables have gathered,
    then the whole batch ships as **one** ``call_batch`` — one worker round
    trip, planned into shape buckets and executed as fused BP super-graphs
    by the session underneath.  Responses are demultiplexed back to their
    HTTP threads byte-identical to unbatched serving (property-tested in
    ``tests/serve/test_batching.py``).

    Contracts the coalescer keeps:

    * **Per-request error isolation** — a poisoned table fails only its own
      request; batchmates resolve normally (the per-item ``ok``/``error``
      outcomes of :meth:`ServeState.handle_batch` carry this across the
      pipe).
    * **``request_timeout`` is per request, not per batch** — each member's
      deadline starts at its own enqueue; a batch's worker round trip is
      bounded by the tightest member deadline, and a member already past
      its deadline is failed without riding along.
    * **Deterministic under restart/hot-swap** — the coalescer holds no
      bundle state; batches land on whatever generation the inner backend
      currently serves, and shutdown drains the queue before the inner
      backend drains its workers.

    Non-annotate endpoints, and annotate requests whose explicit ``engine``
    differs from the serving default, bypass the queue and run solo —
    counted in the ``batching`` metrics section as ``solo_requests``.
    """

    def __init__(
        self,
        inner: "Backend",
        config: SessionConfig | None = None,
        metrics_window: int = 2048,
    ) -> None:
        self.inner = inner
        self.config = config if config is not None else SessionConfig()
        serve = self.config.serve
        self.max_batch_size = serve.max_batch_size
        self.batch_wait_seconds = serve.batch_wait_ms / 1000.0
        self.shed_timeout = serve.shed_timeout_seconds
        self.request_timeout = serve.request_timeout_seconds
        self.default_engine = self.config.engine
        self.batch_metrics = BatchingMetrics(window_size=metrics_window)
        capacity = (serve.workers + serve.queue_depth) * serve.max_batch_size
        self._pending: queue.Queue[_PendingRequest] = queue.Queue(
            maxsize=capacity
        )
        self._stop_event = threading.Event()
        self._batchers = [
            threading.Thread(
                target=self._batch_loop,
                name=f"repro-serve-batcher-{index}",
                daemon=True,
            )
            for index in range(serve.workers)
        ]
        for thread in self._batchers:
            thread.start()

    # ------------------------------------------------------------------
    # the hot path
    # ------------------------------------------------------------------
    def call(self, endpoint: str, payload: dict) -> dict:
        """Coalesce an ``/annotate`` request; run anything else solo."""
        if endpoint != "annotate" or not self._batchable(payload):
            self.batch_metrics.observe_solo()
            return self.inner.call(endpoint, payload)
        now = time.perf_counter()
        pending = _PendingRequest(payload, now, now + self.request_timeout)
        try:
            self._pending.put(pending, timeout=self.shed_timeout)
        except queue.Full:
            self.batch_metrics.observe_shed()
            raise ApiError(
                api_errors.OVERLOADED,
                "server overloaded: the batching queue is full; retry "
                "with backoff",
            ) from None
        # generous ceiling: the batcher enforces the real per-request
        # deadline; this wait only guards against a lost wakeup
        if not pending.done.wait(
            self.request_timeout + self.batch_wait_seconds + 60.0
        ):  # pragma: no cover - requires a wedged batcher thread
            raise ApiError(
                api_errors.INTERNAL_ERROR,
                "batched request was never resolved; the coalescer is wedged",
            )
        if pending.error is not None:
            # re-raise per caller: one shared whole-batch failure must not
            # mutate a single exception object across N threads
            raise ApiError(pending.error.code, str(pending.error))
        result: dict = pending.result if pending.result is not None else {}
        return result

    def _batchable(self, payload: dict) -> bool:
        """Only requests the default-engine fused path can serve batch up;
        an explicit off-default engine override runs solo."""
        if not isinstance(payload, dict):
            return False
        engine = payload.get("engine")
        return engine is None or engine == self.default_engine

    # ------------------------------------------------------------------
    # batcher threads
    # ------------------------------------------------------------------
    def _batch_loop(self) -> None:
        """Collect one batch, execute it, repeat until drained + stopped."""
        while True:
            try:
                first = self._pending.get(timeout=0.1)
            except queue.Empty:
                if self._stop_event.is_set():
                    return
                continue
            batch = [first]
            hold_until = time.perf_counter() + self.batch_wait_seconds
            while len(batch) < self.max_batch_size:
                remaining = hold_until - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    batch.append(self._pending.get(timeout=remaining))
                except queue.Empty:
                    break
            try:
                self._execute(batch)
            except Exception as error:  # noqa: BLE001 - a batcher thread
                # must survive anything; fail the riders, keep looping
                converted = to_api_error(error)
                for pending in batch:
                    pending.fail(ApiError(converted.code, str(converted)))

    def _execute(self, batch: list[_PendingRequest]) -> None:
        """One coalesced batch: enforce deadlines, ship, demultiplex."""
        now = time.perf_counter()
        live: list[_PendingRequest] = []
        for pending in batch:
            if pending.deadline <= now:
                pending.fail(
                    ApiError(
                        api_errors.OVERLOADED,
                        "request timed out in the batching queue; retry "
                        "with backoff",
                    )
                )
            else:
                live.append(pending)
        if not live:
            return
        waits = [now - pending.enqueued_at for pending in live]
        timeout = max(0.05, min(p.deadline for p in live) - now)
        try:
            outcomes = self.inner.call_batch(
                "annotate", [p.payload for p in live], timeout=timeout
            )
        except ApiError as error:
            self.batch_metrics.observe_batch(len(live), waits, error=True)
            for pending in live:
                pending.fail(ApiError(error.code, str(error)))
            return
        self.batch_metrics.observe_batch(len(live), waits)
        for pending, outcome in zip(live, outcomes):
            error_payload = (
                outcome.get("error") if isinstance(outcome, dict) else None
            )
            if error_payload is not None:
                body: Mapping[str, str] = error_payload.get("error", {})
                pending.fail(
                    ApiError(
                        body.get("code", api_errors.INTERNAL_ERROR),
                        body.get("message", "worker error"),
                    )
                )
            elif isinstance(outcome, dict) and "ok" in outcome:
                pending.resolve(outcome["ok"])
            else:
                pending.fail(
                    ApiError(
                        api_errors.INTERNAL_ERROR,
                        "batch backend returned a malformed outcome",
                    )
                )

    # ------------------------------------------------------------------
    # delegation
    # ------------------------------------------------------------------
    def call_batch(
        self,
        endpoint: str,
        payloads: list[dict],
        timeout: float | None = None,
    ) -> list[dict]:
        return self.inner.call_batch(endpoint, payloads, timeout=timeout)

    def observe(self, endpoint: str, seconds: float, error: bool) -> None:
        self.inner.observe(endpoint, seconds, error)

    def healthz(self) -> dict:
        return self.inner.healthz()

    def metrics_snapshot(self) -> dict:
        snapshot = self.inner.metrics_snapshot()
        snapshot["batching"] = {
            "enabled": True,
            "max_batch_size": self.max_batch_size,
            "batch_wait_ms": round(self.batch_wait_seconds * 1000.0, 3),
            **self.batch_metrics.snapshot(),
        }
        return snapshot

    def reload(self, payload: dict) -> dict:
        return self.inner.reload(payload)

    def drain_batchers(self, timeout: float = 30.0) -> bool:
        """Drain the batching queue and stop the coalescer threads without
        touching the inner backend — for callers that own the inner
        backend's lifecycle separately (benchmarks, layered serving)."""
        self._stop_event.set()
        deadline = time.monotonic() + max(timeout, 0.2)
        drained = True
        for thread in self._batchers:
            thread.join(timeout=max(0.1, deadline - time.monotonic()))
            if thread.is_alive():
                drained = False
        return drained

    def shutdown(self, drain_timeout: float | None = None) -> bool:
        """Drain the batching queue, stop the batchers, then the inner
        backend (which drains its own in-flight work)."""
        drained = self.drain_batchers(
            drain_timeout if drain_timeout is not None else 30.0
        )
        return self.inner.shutdown(drain_timeout) and drained
