"""Serving subsystem: prebuilt artifact bundles + a long-lived HTTP service.

The offline/online split of the paper's deployment story:

* :mod:`repro.serve.bundle` — ``build_bundle`` / ``load_bundle``: a
  versioned on-disk format holding the catalog, trained model, frozen
  (array-backed) text indexes and pre-computed corpus annotations, under a
  hash-verified manifest.
* :mod:`repro.serve.state` — :class:`ServeState`: request metrics plus the
  payload handlers (decode JSON → typed request → shared
  :class:`~repro.api.ReproSession` → typed response → JSON).
* :mod:`repro.serve.server` — the threaded stdlib-HTTP front end
  (``repro serve``): ``/annotate``, ``/search``, ``/search/join``,
  ``/healthz``, ``/metrics``.
* :mod:`repro.serve.metrics` — request counters and latency percentiles.

Quickstart::

    repro bundle build --catalog view.json --corpus corpus.jsonl --output b/
    repro serve --bundle b/ --port 8080
    curl -s localhost:8080/healthz
"""

from repro.serve.bundle import (
    FORMAT_VERSION,
    BundleManifest,
    LoadedBundle,
    build_bundle,
    load_bundle,
    read_manifest,
    verify_bundle,
)
from repro.serve.errors import (
    BadRequestError,
    BundleError,
    BundleIntegrityError,
    BundleVersionError,
    ServeError,
)
from repro.serve.metrics import MetricsRegistry
from repro.serve.server import TableServer, create_server, run_server
from repro.serve.state import ServeState

__all__ = [
    "FORMAT_VERSION",
    "BadRequestError",
    "BundleError",
    "BundleIntegrityError",
    "BundleManifest",
    "BundleVersionError",
    "LoadedBundle",
    "MetricsRegistry",
    "ServeError",
    "ServeState",
    "TableServer",
    "build_bundle",
    "create_server",
    "load_bundle",
    "read_manifest",
    "run_server",
    "verify_bundle",
]
