"""Serving subsystem: prebuilt artifact bundles + a long-lived HTTP service.

The offline/online split of the paper's deployment story:

* :mod:`repro.serve.bundle` — ``build_bundle`` / ``load_bundle``: a
  versioned on-disk format holding the catalog, trained model, frozen
  (array-backed) text indexes and pre-computed corpus annotations, under a
  hash-verified manifest.
* :mod:`repro.serve.state` — :class:`ServeState`: request metrics plus the
  payload handlers (decode JSON → typed request → shared
  :class:`~repro.api.ReproSession` → typed response → JSON).
* :mod:`repro.serve.server` — the threaded stdlib-HTTP front end
  (``repro serve``): ``/annotate``, ``/search``, ``/search/join``,
  ``/healthz``, ``/metrics``, ``/admin/reload``.
* :mod:`repro.serve.pool` / :mod:`repro.serve.dispatcher` — the pre-fork
  multi-process tier (``repro serve --workers N``): forked workers sharing
  one mmapped bundle, admission control with 503 load shedding, automatic
  worker restart, and generational bundle hot-swap.
* :mod:`repro.serve.metrics` — request counters and latency percentiles,
  aggregate and per-worker.

Quickstart (see ``docs/OPERATIONS.md`` for the full runbook)::

    repro bundle build --catalog view.json --corpus corpus.jsonl --output b/
    repro serve --bundle b/ --port 8080 --workers 4
    curl -s localhost:8080/healthz
"""

from repro.serve.bundle import (
    FORMAT_VERSION,
    BundleManifest,
    LoadedBundle,
    build_bundle,
    load_bundle,
    read_manifest,
    verify_bundle,
)
from repro.serve.errors import (
    BadRequestError,
    BundleError,
    BundleIntegrityError,
    BundleVersionError,
    ServeError,
)
from repro.serve.dispatcher import Dispatcher
from repro.serve.metrics import DispatcherMetrics, MetricsRegistry
from repro.serve.pool import WorkerHandle, WorkerTimeout, spawn_worker
from repro.serve.server import (
    InlineBackend,
    TableServer,
    create_server,
    run_server,
)
from repro.serve.state import ServeState

__all__ = [
    "FORMAT_VERSION",
    "BadRequestError",
    "BundleError",
    "BundleIntegrityError",
    "BundleManifest",
    "BundleVersionError",
    "Dispatcher",
    "DispatcherMetrics",
    "InlineBackend",
    "LoadedBundle",
    "MetricsRegistry",
    "ServeError",
    "ServeState",
    "TableServer",
    "WorkerHandle",
    "WorkerTimeout",
    "build_bundle",
    "create_server",
    "load_bundle",
    "read_manifest",
    "run_server",
    "spawn_worker",
    "verify_bundle",
]
