"""Exception hierarchy of the serving subsystem."""

from __future__ import annotations


class ServeError(Exception):
    """Base class for all serving-layer errors."""


class BundleError(ServeError):
    """An artifact bundle could not be built or loaded."""


class BundleVersionError(BundleError):
    """The bundle's format version is not supported by this code."""


class BundleIntegrityError(BundleError):
    """A bundle file is missing or its content hash does not match."""


class BadRequestError(ServeError):
    """A request payload is malformed or references unknown catalog ids.

    The HTTP layer maps this to a 400 response with the message as the
    ``error`` field.
    """
