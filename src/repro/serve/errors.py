"""Exception hierarchy of the serving subsystem.

The bundle errors live here (they belong to the artifact format);
request-payload failures moved to the shared API taxonomy in
:mod:`repro.api.errors` and are :class:`~repro.api.errors.ApiError`
instances — new code should catch ``ApiError``.  ``BadRequestError`` below
is a deprecation shim keeping both the old import path *and* the old
hierarchy: it subclasses the API taxonomy and ``ServeError``, and the HTTP
transport still raises it for body-level problems.  Schema-level
validation errors raised by :mod:`repro.api.types` are plain ``ApiError``
and are **not** ``ServeError`` — that part of the old hierarchy moved.
All of these classify to stable wire codes through
:func:`repro.api.errors.to_api_error`.
"""

from __future__ import annotations

from repro.api.errors import BAD_REQUEST, ApiError
from repro.api.errors import BadRequestError as _ApiBadRequestError

__all__ = [
    "ApiError",
    "BadRequestError",
    "BundleError",
    "BundleIntegrityError",
    "BundleVersionError",
    "ServeError",
    "WorkerSpawnError",
    "WorkerTimeout",
]


class ServeError(Exception):
    """Base class for all serving-layer errors."""


class WorkerTimeout(Exception):
    """A worker did not reply within the per-request ceiling.

    Deliberately *not* a :class:`ServeError`: the dispatcher's pipe-error
    handling treats it alongside ``OSError``/``EOFError``, and a blanket
    ``except ServeError`` must not swallow it.  Classifies to the stable
    ``worker_failed`` wire code.
    """


class WorkerSpawnError(ServeError, RuntimeError):
    """A forked worker never became ready (died during warmup).

    Subclasses ``RuntimeError`` too: callers that treated the old
    ``RuntimeError`` raise from ``spawn_worker`` as fatal keep working,
    while :func:`repro.api.errors.to_api_error` now classifies it to the
    stable ``worker_failed`` wire code instead of ``internal_error``.
    """


class BadRequestError(_ApiBadRequestError, ServeError):
    """A request body is malformed at the transport level.

    Deprecated alias kept for compatibility: carries the API taxonomy
    (stable ``code``, HTTP status) *and* remains a :class:`ServeError` so
    pre-existing ``except ServeError`` handlers still catch it.
    """

    def __init__(self, message: str, code: str = BAD_REQUEST) -> None:
        super().__init__(message, code)


class BundleError(ServeError):
    """An artifact bundle could not be built or loaded."""


class BundleVersionError(BundleError):
    """The bundle's format version is not supported by this code."""


class BundleIntegrityError(BundleError):
    """A bundle file is missing or its content hash does not match."""
