"""Answer aggregation and ranking shared by all query processors.

All three processors end the same way (paper Figures 3/4, last line):
"cluster, dedup, rank and present" the collected evidence.  Evidence arrives
as per-row hits — either an entity id (annotated cells) or a raw string
(unannotated cells) — each with a weight.  Entity evidence aggregates by id;
string evidence clusters by normalised text; an entity absorbs string
evidence that exactly matches one of its lemmas ("aggregate evidence in favor
of known entities").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.text.normalize import normalize_text


@dataclass
class SearchAnswer:
    """One ranked answer.

    ``entity_id`` is set when the evidence resolved to a catalog entity;
    ``text`` always carries a displayable surface form.
    """

    text: str
    score: float
    entity_id: str | None = None
    supporting_tables: tuple[str, ...] = ()

    def to_payload(self) -> dict:
        """Wire shape of one answer (stable field order)."""
        return {
            "text": self.text,
            "score": self.score,
            "entity_id": self.entity_id,
            "supporting_tables": list(self.supporting_tables),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SearchAnswer":
        return cls(
            text=payload["text"],
            score=payload["score"],
            entity_id=payload.get("entity_id"),
            supporting_tables=tuple(payload.get("supporting_tables", ())),
        )


@dataclass
class SearchResponse:
    """Ranked answers plus bookkeeping for evaluation."""

    answers: list[SearchAnswer] = field(default_factory=list)
    tables_considered: int = 0
    rows_matched: int = 0

    def ranked_keys(self) -> list[str]:
        """Entity ids where known, else normalised answer text, in rank order."""
        keys = []
        for answer in self.answers:
            keys.append(
                answer.entity_id
                if answer.entity_id is not None
                else normalize_text(answer.text).lower()
            )
        return keys


def build_lemma_resolver(catalog: Catalog) -> dict[str, str]:
    """Folded lemma → entity id, for lemmas naming exactly one entity.

    One accumulator builds this lazily per query; long-lived callers (the
    serving layer) precompute it once per catalog and hand the same immutable
    mapping to every request's accumulator — catalog-sized work leaves the
    per-query path entirely.
    """
    mapping: dict[str, str | None] = {}
    for entity in catalog.entities.all_entities():
        for lemma in entity.lemmas:
            folded = normalize_text(lemma).lower()
            if folded in mapping and mapping[folded] != entity.entity_id:
                mapping[folded] = None  # ambiguous lemma: do not resolve
            else:
                mapping.setdefault(folded, entity.entity_id)
    return {
        lemma: entity_id
        for lemma, entity_id in mapping.items()
        if entity_id is not None
    }


class EvidenceAccumulator:
    """Collects per-row hits and produces the ranked response."""

    def __init__(
        self,
        catalog: Catalog,
        resolve_strings_to_entities: bool = True,
        lemma_resolver: dict[str, str] | None = None,
    ) -> None:
        """``resolve_strings_to_entities=False`` keeps string evidence as
        strings (the Figure-3 baseline presents raw cell contents and never
        touches the catalog); ``lemma_resolver`` injects a prebuilt
        :func:`build_lemma_resolver` mapping (otherwise built lazily)."""
        self._catalog = catalog
        self._resolve = resolve_strings_to_entities
        self._entity_scores: dict[str, float] = {}
        self._entity_tables: dict[str, set[str]] = {}
        self._string_scores: dict[str, float] = {}
        self._string_display: dict[str, str] = {}
        self._string_tables: dict[str, set[str]] = {}
        self._lemma_to_entity: dict[str, str] | None = lemma_resolver
        self.rows_matched = 0
        self.tables_considered = 0

    # ------------------------------------------------------------------
    def add_entity_evidence(self, entity_id: str, weight: float, table_id: str) -> None:
        self.rows_matched += 1
        self._entity_scores[entity_id] = self._entity_scores.get(entity_id, 0.0) + weight
        self._entity_tables.setdefault(entity_id, set()).add(table_id)

    def add_string_evidence(self, text: str, weight: float, table_id: str) -> None:
        self.rows_matched += 1
        key = normalize_text(text).lower()
        if not key:
            return
        entity_id = self._resolve_lemma(key) if self._resolve else None
        if entity_id is not None:
            self._entity_scores[entity_id] = (
                self._entity_scores.get(entity_id, 0.0) + weight
            )
            self._entity_tables.setdefault(entity_id, set()).add(table_id)
            return
        self._string_scores[key] = self._string_scores.get(key, 0.0) + weight
        self._string_display.setdefault(key, text.strip())
        self._string_tables.setdefault(key, set()).add(table_id)

    def _resolve_lemma(self, key: str) -> str | None:
        """Entity whose lemma exactly matches ``key``, if unambiguous."""
        if self._lemma_to_entity is None:
            self._lemma_to_entity = build_lemma_resolver(self._catalog)
        return self._lemma_to_entity.get(key)

    # ------------------------------------------------------------------
    def response(self, top_k: int = 50) -> SearchResponse:
        answers: list[SearchAnswer] = []
        for entity_id, score in self._entity_scores.items():
            entity = self._catalog.entities.get(entity_id)
            answers.append(
                SearchAnswer(
                    text=entity.primary_lemma,
                    score=score,
                    entity_id=entity_id,
                    supporting_tables=tuple(sorted(self._entity_tables[entity_id])),
                )
            )
        for key, score in self._string_scores.items():
            answers.append(
                SearchAnswer(
                    text=self._string_display[key],
                    score=score,
                    entity_id=None,
                    supporting_tables=tuple(sorted(self._string_tables[key])),
                )
            )
        answers.sort(key=lambda answer: (-answer.score, answer.text.lower()))
        return SearchResponse(
            answers=answers[:top_k],
            tables_considered=self.tables_considered,
            rows_matched=self.rows_matched,
        )
