"""Index over a table corpus and its annotations.

This is the search application's preprocessing product (paper Section 5):
tables are indexed *textually* (headers, context — what the Figure-3 baseline
can use) and *semantically* (column types, cell entities, column-pair
relations produced by the annotator — what Figure 4 exploits).

Type lookups expand through the catalog's subtype DAG: a column annotated
``type:cat:1990s_films`` satisfies a query for ``type:movie``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.catalog.catalog import Catalog
from repro.core.annotation import TableAnnotation
from repro.tables.generator import base_relation
from repro.tables.model import Table
from repro.text.index import InvertedIndex


@dataclass
class RelationEdge:
    """One annotated relation instance: subject/object columns of a table."""

    table_id: str
    subject_column: int
    object_column: int
    relation_id: str
    score: float = 0.0


@dataclass
class AnnotatedTableIndex:
    """Tables + text indexes + semantic (annotation) indexes."""

    catalog: Catalog
    tables: dict[str, Table] = field(default_factory=dict)
    annotations: dict[str, TableAnnotation] = field(default_factory=dict)
    _header_index: InvertedIndex = field(default_factory=InvertedIndex)
    _context_index: InvertedIndex = field(default_factory=InvertedIndex)
    _columns_by_type: dict[str, list[tuple[str, int]]] = field(default_factory=dict)
    _cells_by_entity: dict[str, list[tuple[str, int, int]]] = field(default_factory=dict)
    _edges_by_relation: dict[str, list[RelationEdge]] = field(default_factory=dict)
    _frozen: bool = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_table(
        self, table: Table, annotation: TableAnnotation | None = None
    ) -> None:
        """Register a table and (optionally) its annotation."""
        if table.table_id in self.tables:
            raise ValueError(f"duplicate table id: {table.table_id!r}")
        if self._frozen:
            raise RuntimeError("index is frozen")
        self.tables[table.table_id] = table
        if table.headers:
            for column, header in enumerate(table.headers):
                if header:
                    self._header_index.add((table.table_id, column), header)
        if table.context:
            self._context_index.add(table.table_id, table.context)
        if annotation is not None:
            self._register_annotation(table.table_id, annotation)

    def _register_annotation(
        self, table_id: str, annotation: TableAnnotation
    ) -> None:
        """Populate the semantic maps for one table's annotation."""
        self.annotations[table_id] = annotation
        for column, column_annotation in annotation.columns.items():
            if column_annotation.type_id is not None:
                self._columns_by_type.setdefault(
                    column_annotation.type_id, []
                ).append((table_id, column))
        for (row, column), cell in annotation.cells.items():
            if cell.entity_id is not None:
                self._cells_by_entity.setdefault(cell.entity_id, []).append(
                    (table_id, row, column)
                )
        for (left, right), relation in annotation.relations.items():
            if relation.label is None:
                continue
            relation_id, reverse = base_relation(relation.label)
            edge = RelationEdge(
                table_id=table_id,
                subject_column=right if reverse else left,
                object_column=left if reverse else right,
                relation_id=relation_id,
                score=relation.score,
            )
            self._edges_by_relation.setdefault(relation_id, []).append(edge)

    @classmethod
    def from_corpus(
        cls,
        catalog: Catalog,
        tables,
        pipeline=None,
        model=None,
        pipeline_config=None,
    ) -> "AnnotatedTableIndex":
        """Build a frozen index by annotating ``tables`` through the pipeline.

        ``tables`` is any iterable of :class:`Table` / ``LabeledTable``; it is
        consumed as a stream, so corpus-scale construction never materialises
        the corpus.  Pass an existing :class:`~repro.pipeline.AnnotationPipeline`
        to share its candidate cache; otherwise one is built from ``model`` /
        ``pipeline_config``.
        """
        from repro.pipeline.pipeline import AnnotationPipeline

        if pipeline is None:
            pipeline = AnnotationPipeline(catalog, model=model, config=pipeline_config)
        index = cls(catalog=catalog)
        for table, annotation in pipeline.annotate_with_tables(tables):
            index.add_table(table, annotation)
        index.freeze()
        return index

    @classmethod
    def from_artifacts(
        cls,
        catalog: Catalog,
        tables: Iterable[Table],
        annotations: dict[str, TableAnnotation],
        header_index: InvertedIndex,
        context_index: InvertedIndex,
    ) -> "AnnotatedTableIndex":
        """Restore a frozen index from pre-serialized parts (bundle load path).

        The text indexes arrive already frozen (array-backed, see
        :meth:`repro.text.index.InvertedIndex.from_state`) and the semantic
        maps are rebuilt from the stored annotations in table order — no
        re-annotation, no re-tokenisation, no ``freeze()`` recomputation.
        The result is indistinguishable from :meth:`from_corpus` on the same
        corpus (covered by bundle round-trip tests).
        """
        index = cls(
            catalog=catalog,
            _header_index=header_index,
            _context_index=context_index,
        )
        for table in tables:
            index.tables[table.table_id] = table
            annotation = annotations.get(table.table_id)
            if annotation is not None:
                index._register_annotation(table.table_id, annotation)
        index._frozen = True
        return index

    def text_index_states(self) -> tuple[dict, dict]:
        """Frozen array states of the (header, context) text indexes."""
        self.freeze()
        return self._header_index.to_state(), self._context_index.to_state()

    def freeze(self) -> None:
        """Finalise the text indexes (idempotent)."""
        if not self._frozen:
            self._header_index.freeze()
            self._context_index.freeze()
            self._frozen = True

    def __len__(self) -> int:
        return len(self.tables)

    # ------------------------------------------------------------------
    # textual lookups (baseline)
    # ------------------------------------------------------------------
    def columns_with_header(
        self, header_text: str, top_k: int = 50
    ) -> list[tuple[str, int, float]]:
        """(table, column, score) whose header matches ``header_text``."""
        self.freeze()
        return [
            (hit.key[0], hit.key[1], hit.score)
            for hit in self._header_index.search(header_text, top_k=top_k)
        ]

    def tables_with_context(self, text: str, top_k: int = 200) -> dict[str, float]:
        """Table → context-match score."""
        self.freeze()
        return {
            hit.key: hit.score for hit in self._context_index.search(text, top_k=top_k)
        }

    # ------------------------------------------------------------------
    # semantic lookups (annotated search)
    # ------------------------------------------------------------------
    def columns_of_type(self, type_id: str) -> list[tuple[str, int]]:
        """Columns annotated with ``type_id`` or any of its subtypes."""
        results: list[tuple[str, int]] = []
        wanted = {type_id}
        if type_id in self.catalog.types:
            wanted |= self.catalog.types.descendants(type_id)
        for concrete in wanted:
            results.extend(self._columns_by_type.get(concrete, ()))
        return sorted(set(results))

    def cells_of_entity(self, entity_id: str) -> list[tuple[str, int, int]]:
        return list(self._cells_by_entity.get(entity_id, ()))

    def relation_edges(self, relation_id: str) -> list[RelationEdge]:
        return list(self._edges_by_relation.get(relation_id, ()))

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        return {
            "tables": len(self.tables),
            "annotated_tables": len(self.annotations),
            "typed_columns": sum(len(v) for v in self._columns_by_type.values()),
            "entity_cells": sum(len(v) for v in self._cells_by_entity.values()),
            "relation_edges": sum(len(v) for v in self._edges_by_relation.values()),
        }
