"""The no-annotation baseline query processor (paper Figure 3).

All inputs are interpreted as strings.  The processor:

1. finds tables whose column headers match the ``T1`` and ``T2`` strings and
   whose context matches the ``R`` string (context is a soft bonus — headers
   are the hard requirement, since without headers the baseline has nothing
   to anchor a column),
2. within each qualifying table, scans the ``T2``-matched column for cells
   textually similar to ``E2``,
3. collects the cell contents of the ``T1``-matched column in qualifying
   rows, and
4. clusters, dedups and ranks the collected strings.

Answers are raw strings — the baseline never consults the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.search.query import RelationQuery
from repro.search.ranking import EvidenceAccumulator, SearchResponse
from repro.search.table_index import AnnotatedTableIndex
from repro.text.similarity import cosine_tfidf


@dataclass
class BaselineSearchConfig:
    """Thresholds of the string-matching pipeline."""

    header_top_k: int = 60
    min_cell_similarity: float = 0.6
    context_bonus: float = 0.25
    top_k_answers: int = 50


class BaselineSearcher:
    """Figure-3 query processing over the textual part of the index."""

    def __init__(
        self,
        index: AnnotatedTableIndex,
        catalog: Catalog,
        config: BaselineSearchConfig | None = None,
    ) -> None:
        self.index = index
        self.catalog = catalog
        self.config = config if config is not None else BaselineSearchConfig()

    def search(self, query: RelationQuery) -> SearchResponse:
        relation_text, t1_text, t2_text, e2_text = query.as_strings(self.catalog)
        accumulator = EvidenceAccumulator(
            self.catalog, resolve_strings_to_entities=False
        )

        t1_hits = self.index.columns_with_header(
            t1_text, top_k=self.config.header_top_k
        )
        t2_hits = self.index.columns_with_header(
            t2_text, top_k=self.config.header_top_k
        )
        context_scores = self.index.tables_with_context(relation_text)

        t1_by_table: dict[str, tuple[int, float]] = {}
        for table_id, column, score in t1_hits:
            current = t1_by_table.get(table_id)
            if current is None or score > current[1]:
                t1_by_table[table_id] = (column, score)
        for table_id, t2_column, t2_score in t2_hits:
            t1_entry = t1_by_table.get(table_id)
            if t1_entry is None:
                continue
            t1_column, t1_score = t1_entry
            if t1_column == t2_column:
                continue
            accumulator.tables_considered += 1
            table = self.index.tables[table_id]
            table_weight = (
                t1_score
                + t2_score
                + self.config.context_bonus * context_scores.get(table_id, 0.0)
            )
            for row in range(table.n_rows):
                cell_text = table.cell(row, t2_column)
                similarity = cosine_tfidf(cell_text, e2_text)
                if similarity < self.config.min_cell_similarity:
                    continue
                answer_text = table.cell(row, t1_column)
                if answer_text.strip():
                    accumulator.add_string_evidence(
                        answer_text, table_weight * similarity, table_id
                    )
        return accumulator.response(top_k=self.config.top_k_answers)
