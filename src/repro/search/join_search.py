"""Join queries over annotated tables — the paper's "left for future work".

Section 2.1 sketches the query form

    R1(e1 ∈ T1, e2 ∈ T2)  ∧  R2(e2 ∈ T2, E3 ∈ T3)

with ``E3`` given: e.g. "movies (e1) acted in by footballers-turned-actors
(e2) who play for club E3" — a two-hop join through the middle variable
``e2``.  The paper notes that "tagging tables with entities and types lets us
express precise join queries without depending on fuzzy text matches"; this
module implements exactly that on top of the annotated index:

1. answer ``R2(?, E3)`` with the Type+Rel processor → candidate middle
   entities with scores,
2. for each middle entity (top ``max_middle``), answer ``R1(?, e2)``,
3. aggregate ``E1`` scores across middles (score of the join path = product
   of hop scores, summed over paths).

Only entity-resolved middles participate — a string answer cannot anchor the
second hop, which is precisely why the join needs annotations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.search.annotated_search import AnnotatedSearcher
from repro.search.query import RelationQuery
from repro.search.ranking import SearchAnswer, SearchResponse
from repro.search.table_index import AnnotatedTableIndex


@dataclass(frozen=True)
class JoinQuery:
    """``R1(e1, e2) ∧ R2(e2, E3)`` with ``E3`` known.

    ``first_relation`` is R1 (its subjects are the answers); ``second_relation``
    is R2 (its subjects are the middle entities; ``given_entity`` is E3).
    The middle variable must inhabit both R1's object type and R2's subject
    type — validated against the catalog at construction time via
    :meth:`from_catalog`.
    """

    first_relation: str
    second_relation: str
    given_entity: str

    @classmethod
    def from_catalog(
        cls, catalog: Catalog, first_relation: str, second_relation: str, given_entity: str
    ) -> "JoinQuery":
        r1 = catalog.relations.get(first_relation)
        r2 = catalog.relations.get(second_relation)
        compatible = catalog.types.is_subtype(
            r2.subject_type, r1.object_type
        ) or catalog.types.is_subtype(r1.object_type, r2.subject_type)
        if not compatible:
            raise ValueError(
                f"join types incompatible: {first_relation} object type "
                f"{r1.object_type} vs {second_relation} subject type {r2.subject_type}"
            )
        catalog.entities.get(given_entity)  # validates existence
        return cls(
            first_relation=first_relation,
            second_relation=second_relation,
            given_entity=given_entity,
        )


class JoinSearcher:
    """Two-hop join processing over one annotated index."""

    def __init__(
        self,
        index: AnnotatedTableIndex,
        catalog: Catalog,
        max_middle: int = 10,
        top_k_answers: int = 50,
        lemma_resolver: dict[str, str] | None = None,
    ) -> None:
        self.index = index
        self.catalog = catalog
        self.max_middle = max_middle
        self.top_k_answers = top_k_answers
        self._hop_searcher = AnnotatedSearcher(
            index, catalog, use_relations=True, lemma_resolver=lemma_resolver
        )

    def search(self, query: JoinQuery) -> SearchResponse:
        # Hop 2 first: middle entities e2 with R2(e2, E3).
        middle_query = RelationQuery.from_catalog(
            self.catalog, query.second_relation, query.given_entity
        )
        middle_response = self._hop_searcher.search(middle_query)
        middles = [
            answer
            for answer in middle_response.answers
            if answer.entity_id is not None
        ][: self.max_middle]

        # Hop 1: answers e1 with R1(e1, e2), aggregated over middles.
        scores: dict[str, float] = {}
        texts: dict[str, str] = {}
        supports: dict[str, set[str]] = {}
        tables_considered = middle_response.tables_considered
        rows_matched = middle_response.rows_matched
        for middle in middles:
            first_query = RelationQuery.from_catalog(
                self.catalog, query.first_relation, middle.entity_id
            )
            response = self._hop_searcher.search(first_query)
            tables_considered += response.tables_considered
            rows_matched += response.rows_matched
            for answer in response.answers:
                if answer.entity_id is None:
                    continue  # unresolved strings cannot be join answers
                path_score = answer.score * middle.score
                scores[answer.entity_id] = scores.get(answer.entity_id, 0.0) + path_score
                texts.setdefault(answer.entity_id, answer.text)
                supports.setdefault(answer.entity_id, set()).update(
                    answer.supporting_tables
                )
        ranked = sorted(
            scores.items(), key=lambda item: (-item[1], texts[item[0]].lower())
        )
        answers = [
            SearchAnswer(
                text=texts[entity_id],
                score=score,
                entity_id=entity_id,
                supporting_tables=tuple(sorted(supports[entity_id])),
            )
            for entity_id, score in ranked[: self.top_k_answers]
        ]
        return SearchResponse(
            answers=answers,
            tables_considered=tables_considered,
            rows_matched=rows_matched,
        )
