"""The relational Web-table search application (paper Section 5).

Given ``R, T1, T2, E2`` with ``R(T1, T2)`` in the catalog, return a ranked
list of ``E1`` such that ``R(E1, E2)`` holds, mined from an annotated table
corpus.  Three query processors of increasing annotation use:

* :mod:`repro.search.baseline_search` — Figure 3: strings only (headers,
  context, cell text), no annotations,
* :mod:`repro.search.annotated_search` — Figure 4 in two strengths: column
  *types* only, or types *and* column-pair relations,
* :mod:`repro.search.table_index` — the index over tables, their text and
  their annotations that all three share,
* :mod:`repro.search.ranking` — evidence aggregation, deduplication and the
  ranked answer model.
"""

from repro.search.annotated_search import AnnotatedSearcher
from repro.search.baseline_search import BaselineSearcher
from repro.search.join_search import JoinQuery, JoinSearcher
from repro.search.query import RelationQuery
from repro.search.ranking import SearchAnswer, SearchResponse
from repro.search.table_index import AnnotatedTableIndex

__all__ = [
    "AnnotatedSearcher",
    "AnnotatedTableIndex",
    "BaselineSearcher",
    "JoinQuery",
    "JoinSearcher",
    "RelationQuery",
    "SearchAnswer",
    "SearchResponse",
]
