"""Query model for relational table search.

The paper's canonical query (Section 5): given ``R, T1, T2`` and a concrete
``E2 ∈+ T2``, find all ``E1 ∈+ T1`` with ``R(E1, E2)``.  For annotated
processors the fields are catalog ids; the baseline processor "interprets all
inputs as strings", which :meth:`RelationQuery.as_strings` provides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog


@dataclass(frozen=True)
class RelationQuery:
    """One select-project query ``R(E1 ∈ T1, E2 ∈ T2)`` with ``E2`` given.

    Attributes:
        relation_id: Catalog relation ``R`` (its schema orients T1/T2).
        answer_type: ``T1`` — the type of the sought entities.
        given_type: ``T2`` — the type of the given entity.
        given_entity: ``E2`` as a catalog id, or ``None`` when only a string
            is known.
        given_text: Surface string of ``E2`` (always present; for in-catalog
            entities this is the primary lemma).
    """

    relation_id: str
    answer_type: str
    given_type: str
    given_entity: str | None
    given_text: str

    @classmethod
    def from_catalog(
        cls, catalog: Catalog, relation_id: str, given_entity: str
    ) -> "RelationQuery":
        """Build the query for "answers related to ``given_entity`` by R".

        The given entity plays the *object* role of R; answers are subjects.
        (This matches the paper's workload, e.g. R=directed, E2=a director,
        answers = movies.)
        """
        relation = catalog.relations.get(relation_id)
        entity = catalog.entities.get(given_entity)
        return cls(
            relation_id=relation_id,
            answer_type=relation.subject_type,
            given_type=relation.object_type,
            given_entity=given_entity,
            given_text=entity.primary_lemma,
        )

    def as_strings(self, catalog: Catalog) -> tuple[str, str, str, str]:
        """The query reduced to strings (baseline input): R, T1, T2, E2."""
        relation = catalog.relations.get(self.relation_id)
        relation_text = relation.lemmas[0] if relation.lemmas else self.relation_id
        t1_lemmas = catalog.types.lemmas(self.answer_type)
        t2_lemmas = catalog.types.lemmas(self.given_type)
        return (
            relation_text,
            t1_lemmas[0] if t1_lemmas else self.answer_type,
            t2_lemmas[0] if t2_lemmas else self.given_type,
            self.given_text,
        )
