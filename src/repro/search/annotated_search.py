"""Annotation-aware query processors (paper Figure 4).

Two strengths, matching the paper's Figure-9 systems:

* **Type** — locate tables having a column annotated ``T1`` and a column
  annotated ``T2`` (subtype-expanded); anchor ``E2`` in the ``T2`` column by
  cell-entity annotation when ``E2`` is in the catalog, else by text
  similarity; collect the ``T1`` column's cells.
* **Type+Rel** — additionally require the column *pair* to be annotated with
  relation ``R`` in the right orientation.

Collected cells contribute entity evidence when annotated, string evidence
otherwise; evidence is aggregated in favour of known entities and ranked
(Figure 4 lines 8-10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.search.query import RelationQuery
from repro.search.ranking import EvidenceAccumulator, SearchResponse
from repro.search.table_index import AnnotatedTableIndex
from repro.text.similarity import cosine_tfidf


@dataclass
class AnnotatedSearchConfig:
    """Thresholds of the annotation-aware pipeline."""

    min_cell_similarity: float = 0.6
    #: weight of an entity-annotated answer cell (vs similarity-weighted text)
    entity_evidence_weight: float = 1.0
    top_k_answers: int = 50


class AnnotatedSearcher:
    """Figure-4 query processing; set ``use_relations`` for Type+Rel."""

    def __init__(
        self,
        index: AnnotatedTableIndex,
        catalog: Catalog,
        use_relations: bool = True,
        config: AnnotatedSearchConfig | None = None,
        lemma_resolver: dict[str, str] | None = None,
    ) -> None:
        self.index = index
        self.catalog = catalog
        self.use_relations = use_relations
        self.config = config if config is not None else AnnotatedSearchConfig()
        #: optional prebuilt lemma → entity mapping shared across queries
        #: (see :func:`repro.search.ranking.build_lemma_resolver`); the
        #: serving layer passes one so queries never pay the catalog scan
        self.lemma_resolver = lemma_resolver

    # ------------------------------------------------------------------
    def search(self, query: RelationQuery) -> SearchResponse:
        accumulator = EvidenceAccumulator(
            self.catalog, lemma_resolver=self.lemma_resolver
        )
        for table_id, answer_column, given_column in self._candidate_column_pairs(
            query
        ):
            accumulator.tables_considered += 1
            table = self.index.tables[table_id]
            annotation = self.index.annotations.get(table_id)
            for row in range(table.n_rows):
                anchor_weight = self._anchor_weight(
                    query, table, annotation, row, given_column
                )
                if anchor_weight <= 0.0:
                    continue
                answer_entity = (
                    annotation.entity_of(row, answer_column) if annotation else None
                )
                if answer_entity is not None:
                    accumulator.add_entity_evidence(
                        answer_entity,
                        anchor_weight * self.config.entity_evidence_weight,
                        table_id,
                    )
                else:
                    answer_text = table.cell(row, answer_column)
                    if answer_text.strip():
                        accumulator.add_string_evidence(
                            answer_text, anchor_weight, table_id
                        )
        return accumulator.response(top_k=self.config.top_k_answers)

    # ------------------------------------------------------------------
    def _candidate_column_pairs(
        self, query: RelationQuery
    ) -> list[tuple[str, int, int]]:
        """(table, answer column, given column) pairs satisfying the query."""
        if self.use_relations:
            pairs = [
                (edge.table_id, edge.subject_column, edge.object_column)
                for edge in self.index.relation_edges(query.relation_id)
            ]
            return sorted(set(pairs))
        answer_columns = self.index.columns_of_type(query.answer_type)
        given_columns = self.index.columns_of_type(query.given_type)
        given_by_table: dict[str, list[int]] = {}
        for table_id, column in given_columns:
            given_by_table.setdefault(table_id, []).append(column)
        pairs = []
        for table_id, answer_column in answer_columns:
            for given_column in given_by_table.get(table_id, ()):
                if given_column != answer_column:
                    pairs.append((table_id, answer_column, given_column))
        return sorted(set(pairs))

    def _anchor_weight(
        self,
        query: RelationQuery,
        table,
        annotation,
        row: int,
        given_column: int,
    ) -> float:
        """How strongly this row's given-column cell matches ``E2``."""
        if annotation is not None and query.given_entity is not None:
            if annotation.entity_of(row, given_column) == query.given_entity:
                return 1.0
        similarity = cosine_tfidf(table.cell(row, given_column), query.given_text)
        if similarity >= self.config.min_cell_similarity:
            return similarity
        return 0.0
