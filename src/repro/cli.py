"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate-world`` — write a synthetic catalog pair (full + annotator view)
  and optionally a table corpus to a directory,
* ``annotate``       — annotate a JSONL table corpus against a catalog and
  write the annotations as JSON,
* ``train``          — train model weights on a labeled corpus,
* ``search``         — answer one relational query over an annotated corpus,
* ``augment``        — mine new catalog facts from an annotated corpus and
  optionally write the augmented catalog back out.

All commands are deterministic given their ``--seed`` arguments.  The CLI is
a thin shell over the library; anything beyond one-shot usage should import
:mod:`repro` directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.catalog.io import load_catalog_json, save_catalog_json
from repro.catalog.synthetic import SyntheticCatalogConfig, generate_world
from repro.core.annotator import TableAnnotator
from repro.core.learning import StructuredTrainer, TrainingConfig
from repro.core.model import AnnotationModel, default_model
from repro.search.annotated_search import AnnotatedSearcher
from repro.search.query import RelationQuery
from repro.search.table_index import AnnotatedTableIndex
from repro.tables.corpus import TableCorpus, load_corpus_jsonl, save_corpus_jsonl
from repro.tables.generator import (
    NoiseProfile,
    TableGeneratorConfig,
    WebTableGenerator,
)


def _annotation_to_dict(annotation) -> dict:
    return {
        "table_id": annotation.table_id,
        "cells": {
            f"{row},{column}": cell.entity_id
            for (row, column), cell in sorted(annotation.cells.items())
        },
        "columns": {
            str(column): ann.type_id
            for column, ann in sorted(annotation.columns.items())
        },
        "relations": {
            f"{left},{right}": relation.label
            for (left, right), relation in sorted(annotation.relations.items())
        },
    }


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def cmd_generate_world(args: argparse.Namespace) -> int:
    output = Path(args.output)
    output.mkdir(parents=True, exist_ok=True)
    config = SyntheticCatalogConfig(seed=args.seed)
    world = generate_world(config)
    save_catalog_json(world.full, output / "catalog_full.json")
    save_catalog_json(world.annotator_view, output / "catalog_view.json")
    if args.tables:
        generator = WebTableGenerator(
            world.full,
            TableGeneratorConfig(
                seed=args.seed + 1,
                n_tables=args.tables,
                noise=NoiseProfile(args.noise),
            ),
        )
        save_corpus_jsonl(TableCorpus(generator.generate()), output / "corpus.jsonl")
    print(f"world written to {output}  ({world.full.stats()})")
    return 0


def cmd_annotate(args: argparse.Namespace) -> int:
    catalog = load_catalog_json(args.catalog)
    corpus = load_corpus_jsonl(args.corpus)
    model = AnnotationModel.load(args.model) if args.model else default_model()
    annotator = TableAnnotator(catalog, model=model)
    annotations = [
        _annotation_to_dict(annotator.annotate(labeled.table)) for labeled in corpus
    ]
    payload = json.dumps(annotations, indent=1)
    if args.output:
        Path(args.output).write_text(payload, encoding="utf-8")
        print(f"annotated {len(annotations)} tables -> {args.output}")
    else:
        print(payload)
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    catalog = load_catalog_json(args.catalog)
    corpus = load_corpus_jsonl(args.corpus)
    annotator = TableAnnotator(catalog, model=default_model())
    trainer = StructuredTrainer(
        annotator,
        TrainingConfig(epochs=args.epochs, seed=args.seed),
    )
    model = trainer.train(list(corpus))
    model.save(args.output)
    final_loss = trainer.history[-1]["hamming_loss"] if trainer.history else 0.0
    print(f"trained on {len(corpus)} tables; final epoch hamming loss "
          f"{final_loss:.0f}; model -> {args.output}")
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    catalog = load_catalog_json(args.catalog)
    corpus = load_corpus_jsonl(args.corpus)
    model = AnnotationModel.load(args.model) if args.model else default_model()
    annotator = TableAnnotator(catalog, model=model)
    index = AnnotatedTableIndex(catalog=catalog)
    for labeled in corpus:
        index.add_table(labeled.table, annotator.annotate(labeled.table))
    index.freeze()
    query = RelationQuery.from_catalog(catalog, args.relation, args.entity)
    searcher = AnnotatedSearcher(
        index, catalog, use_relations=not args.no_relations
    )
    response = searcher.search(query)
    print(f"{len(response.answers)} answers "
          f"({response.tables_considered} tables considered)")
    for answer in response.answers[: args.top_k]:
        print(f"  {answer.score:8.3f}  {answer.text:40}  {answer.entity_id or ''}")
    return 0


def cmd_augment(args: argparse.Namespace) -> int:
    from repro.core.augmentation import CatalogAugmenter

    catalog = load_catalog_json(args.catalog)
    corpus = load_corpus_jsonl(args.corpus)
    model = AnnotationModel.load(args.model) if args.model else default_model()
    annotator = TableAnnotator(catalog, model=model)
    augmenter = CatalogAugmenter(catalog, min_confidence=args.min_confidence)
    for labeled in corpus:
        augmenter.add_annotated_table(annotator.annotate(labeled.table))
    report = augmenter.report()
    print(
        f"{len(report.tuples)} tuple proposals, "
        f"{len(report.instance_links)} instance-link proposals"
    )
    for proposal in report.tuples[: args.top_k]:
        print(
            f"  {proposal.relation_id}({proposal.subject}, {proposal.object_}) "
            f"support={proposal.support} conf={proposal.confidence:.2f}"
        )
    if args.output:
        counts = report.apply_to(catalog, min_support=args.min_support)
        save_catalog_json(catalog, args.output)
        print(
            f"applied {counts['tuples']} tuples and "
            f"{counts['instance_links']} links -> {args.output}"
        )
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Web-table annotation and search (Limaye et al., VLDB 2010)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate-world", help="write a synthetic catalog (and corpus)"
    )
    generate.add_argument("--output", required=True, help="output directory")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument(
        "--tables", type=int, default=0, help="also generate N labeled tables"
    )
    generate.add_argument(
        "--noise", choices=[p.value for p in NoiseProfile], default="web"
    )
    generate.set_defaults(handler=cmd_generate_world)

    annotate = subparsers.add_parser("annotate", help="annotate a JSONL corpus")
    annotate.add_argument("--catalog", required=True)
    annotate.add_argument("--corpus", required=True)
    annotate.add_argument("--model", default=None)
    annotate.add_argument("--output", default=None)
    annotate.set_defaults(handler=cmd_annotate)

    train = subparsers.add_parser("train", help="train model weights")
    train.add_argument("--catalog", required=True)
    train.add_argument("--corpus", required=True, help="labeled JSONL corpus")
    train.add_argument("--output", required=True, help="model JSON path")
    train.add_argument("--epochs", type=int, default=3)
    train.add_argument("--seed", type=int, default=0)
    train.set_defaults(handler=cmd_train)

    search = subparsers.add_parser("search", help="answer a relational query")
    search.add_argument("--catalog", required=True)
    search.add_argument("--corpus", required=True)
    search.add_argument("--model", default=None)
    search.add_argument("--relation", required=True, help="e.g. rel:directed")
    search.add_argument("--entity", required=True, help="the given E2 entity id")
    search.add_argument("--top-k", type=int, default=10)
    search.add_argument(
        "--no-relations",
        action="store_true",
        help="type-only search (paper Figure 4 without relation filtering)",
    )
    search.set_defaults(handler=cmd_search)

    augment = subparsers.add_parser(
        "augment", help="mine new catalog facts from an annotated corpus"
    )
    augment.add_argument("--catalog", required=True)
    augment.add_argument("--corpus", required=True)
    augment.add_argument("--model", default=None)
    augment.add_argument(
        "--output", default=None, help="write the augmented catalog here"
    )
    augment.add_argument("--min-confidence", type=float, default=0.5)
    augment.add_argument("--min-support", type=int, default=1)
    augment.add_argument("--top-k", type=int, default=10)
    augment.set_defaults(handler=cmd_augment)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests on main()
    sys.exit(main())
