"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate-world`` — write a synthetic catalog pair (full + annotator view)
  and optionally a table corpus to a directory,
* ``annotate``       — annotate a JSONL table corpus against a catalog and
  write the annotations as JSON (or streaming JSONL / wire payloads),
* ``train``          — train model weights on a labeled corpus,
* ``search``         — answer one relational query over an annotated corpus,
* ``search-index``   — annotate + index a corpus and report index statistics,
* ``augment``        — mine new catalog facts from an annotated corpus and
  optionally write the augmented catalog back out,
* ``bundle build`` / ``bundle info`` — serialize (and inspect) everything
  the query path needs into a versioned artifact bundle,
* ``serve``          — long-lived HTTP service answering ``/annotate`` and
  ``/search`` from a prebuilt bundle, with a pre-fork multi-worker tier
  (``--workers N``), 503 load shedding and bundle hot-swap
  (see :mod:`repro.serve` and ``docs/OPERATIONS.md``).

Every command is a thin argparse shim over the typed API: flags become a
request object from :mod:`repro.api.types`, one shared
:class:`~repro.api.ReproSession` executes it, and responses encode through
the same :func:`~repro.api.encode_json` the HTTP server uses — so ``repro
annotate --wire`` and ``POST /annotate`` emit byte-identical payloads for
identical requests.  API failures print as ``error [<stable code>]:
<message>`` and exit 1.

All commands are deterministic given their ``--seed`` arguments.  Anything
beyond one-shot usage should import :mod:`repro` (see ``ReproSession``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.api.config import (
    VALID_CANDIDATE_ENGINES,
    VALID_ENGINES,
    VALID_EXECUTORS,
    VALID_FUSION_MODES,
    SessionConfig,
)
from repro.api.errors import ApiError
from repro.api.session import ReproSession
from repro.api.types import (
    BundleBuildRequest,
    SearchRequest,
    TrainRequest,
    encode_json,
)
from repro.catalog.io import save_catalog_json
from repro.catalog.synthetic import SyntheticCatalogConfig, generate_world
from repro.pipeline.io import (
    iter_corpus_jsonl,
    write_annotations_json_array,
    write_annotations_jsonl,
)
from repro.pipeline.pipeline import AnnotationPipeline
from repro.search.table_index import AnnotatedTableIndex
from repro.tables.corpus import TableCorpus, save_corpus_jsonl
from repro.tables.generator import (
    NoiseProfile,
    TableGeneratorConfig,
    WebTableGenerator,
)


def _session_from_args(args: argparse.Namespace) -> ReproSession:
    """One session per invocation: catalog + model + composed config."""
    return ReproSession.from_world(
        args.catalog,
        model=getattr(args, "model", None),
        config=SessionConfig.from_args(args),
    )


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _add_pipeline_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="annotation worker threads (1 = serial)",
    )
    parser.add_argument(
        "--batch-size", type=_positive_int, default=16, help="tables per batch"
    )
    parser.add_argument(
        "--cache-size",
        type=_non_negative_int,
        default=100_000,
        help="candidate-cache entries (0 disables the cache)",
    )
    parser.add_argument(
        "--compiled-cache-size",
        type=_non_negative_int,
        default=2048,
        help="compiled-factor-graph LRU entries (0 disables it)",
    )
    parser.add_argument(
        "--engine",
        choices=VALID_ENGINES,
        default="batched",
        help="inference engine: batched (vectorised, default) or scalar "
        "(per-edge reference)",
    )
    parser.add_argument(
        "--candidate-engine",
        choices=VALID_CANDIDATE_ENGINES,
        default="batched",
        help="candidate-generation engine: batched (array-backed, default) "
        "or scalar (per-cell reference)",
    )
    parser.add_argument(
        "--fusion",
        choices=VALID_FUSION_MODES,
        default="off",
        help="corpus fusion: off (per-table, default) or bucket "
        "(shape-bucketed cross-table fused execution)",
    )
    parser.add_argument(
        "--executor",
        choices=VALID_EXECUTORS,
        default="thread",
        help="batch executor: serial, thread (default) or process "
        "(fork-based pool; requires fork support)",
    )


def _print_pipeline_summary(pipeline: AnnotationPipeline) -> None:
    report = pipeline.last_report
    if report is None or not report.finished:
        return
    line = (
        f"annotated {report.n_tables} tables in {report.wall_seconds:.2f}s "
        f"(candidate share {report.candidate_fraction:.0%}"
    )
    if report.cache is not None:
        line += f", cache hit rate {report.cache.hit_rate:.0%}"
    if report.fusion != "off":
        line += (
            f", {report.fused_batches} fused batches, "
            f"bucket sizes {report.bucket_size_histogram}"
        )
    print(line + ")", file=sys.stderr)


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def cmd_generate_world(args: argparse.Namespace) -> int:
    output = Path(args.output)
    output.mkdir(parents=True, exist_ok=True)
    config = SyntheticCatalogConfig(seed=args.seed)
    world = generate_world(config)
    save_catalog_json(world.full, output / "catalog_full.json")
    save_catalog_json(world.annotator_view, output / "catalog_view.json")
    if args.tables:
        generator = WebTableGenerator(
            world.full,
            TableGeneratorConfig(
                seed=args.seed + 1,
                n_tables=args.tables,
                noise=NoiseProfile(args.noise),
            ),
        )
        save_corpus_jsonl(TableCorpus(generator.generate()), output / "corpus.jsonl")
    print(f"world written to {output}  ({world.full.stats()})")
    return 0


def cmd_annotate(args: argparse.Namespace) -> int:
    if args.wire and args.jsonl:
        raise ApiError(
            "validation_error", "--wire and --jsonl are mutually exclusive"
        )
    session = _session_from_args(args)
    if args.wire:
        # one full AnnotateResponse wire payload per line — the canonical
        # deterministic encoding (timing excluded), byte-identical to what
        # POST /annotate returns for the same request; runs through the
        # batched/threaded pipeline like every other corpus mode
        wire_lines = (
            encode_json(response.to_json())
            for response in session.annotate_wire_stream(
                iter_corpus_jsonl(args.corpus), engine=args.engine
            )
        )
        if args.output:
            written = 0
            with Path(args.output).open("w", encoding="utf-8") as handle:
                for line in wire_lines:
                    handle.write(line + "\n")
                    written += 1
            print(f"annotated {written} tables -> {args.output}")
        else:
            for line in wire_lines:
                print(line)
        _print_pipeline_summary(session.pipeline())
        return 0
    pipeline = session.pipeline()
    # both modes stream: tables are read, annotated and written one batch at
    # a time, so memory stays bounded however large the corpus is
    if args.jsonl:
        if args.output:
            report = pipeline.annotate_jsonl(args.corpus, args.output)
            print(f"annotated {report.n_tables} tables -> {args.output}")
        else:
            pipeline.annotate_jsonl(args.corpus, sys.stdout)
    else:
        annotations = session.annotate_stream(iter_corpus_jsonl(args.corpus))
        if args.output:
            with Path(args.output).open("w", encoding="utf-8") as handle:
                written = write_annotations_json_array(annotations, handle)
            print(f"annotated {written} tables -> {args.output}")
        else:
            write_annotations_json_array(annotations, sys.stdout)
            print()
    _print_pipeline_summary(pipeline)
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    session = ReproSession.from_world(args.catalog)
    response = session.train(
        TrainRequest(
            corpus_path=args.corpus,
            epochs=args.epochs,
            seed=args.seed,
            output_path=args.output,
        )
    )
    print(
        f"trained on {response.n_tables} tables; final epoch hamming loss "
        f"{response.final_hamming_loss:.0f}; model -> {response.model_path}"
    )
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    session = _session_from_args(args)
    session.index_corpus(args.corpus)
    _print_pipeline_summary(session.pipeline())
    if args.json:
        # the typed path: top_k is part of the request, and the printed
        # payload is byte-identical to POST /search for this request
        request = SearchRequest(
            relation=args.relation,
            entity=args.entity,
            use_relations=not args.no_relations,
            top_k=args.top_k,
        )
        print(encode_json(session.search(request).to_json()))
        return 0
    # human mode: report the full answer count, trim only the display
    response = session.search(
        SearchRequest(
            relation=args.relation,
            entity=args.entity,
            use_relations=not args.no_relations,
        )
    )
    print(f"{len(response.answers)} answers "
          f"({response.tables_considered} tables considered)")
    for answer in response.answers[: args.top_k]:
        print(f"  {answer.score:8.3f}  {answer.text:40}  {answer.entity_id or ''}")
    return 0


def cmd_augment(args: argparse.Namespace) -> int:
    from repro.core.augmentation import CatalogAugmenter

    session = _session_from_args(args)
    catalog = session.catalog
    augmenter = CatalogAugmenter(catalog, min_confidence=args.min_confidence)
    for annotation in session.annotate_stream(iter_corpus_jsonl(args.corpus)):
        augmenter.add_annotated_table(annotation)
    _print_pipeline_summary(session.pipeline())
    report = augmenter.report()
    print(
        f"{len(report.tuples)} tuple proposals, "
        f"{len(report.instance_links)} instance-link proposals"
    )
    for proposal in report.tuples[: args.top_k]:
        print(
            f"  {proposal.relation_id}({proposal.subject}, {proposal.object_}) "
            f"support={proposal.support} conf={proposal.confidence:.2f}"
        )
    if args.output:
        counts = report.apply_to(catalog, min_support=args.min_support)
        save_catalog_json(catalog, args.output)
        print(
            f"applied {counts['tuples']} tuples and "
            f"{counts['instance_links']} links -> {args.output}"
        )
    return 0


def cmd_search_index(args: argparse.Namespace) -> int:
    session = _session_from_args(args)
    catalog = session.catalog

    def tables_with_side_output():
        if not args.annotations:
            yield from session.annotate_with_tables(iter_corpus_jsonl(args.corpus))
            return
        with Path(args.annotations).open("w", encoding="utf-8") as handle:
            for table, annotation in session.annotate_with_tables(
                iter_corpus_jsonl(args.corpus)
            ):
                write_annotations_jsonl([annotation], handle)
                yield table, annotation

    index = AnnotatedTableIndex(catalog=catalog)
    for table, annotation in tables_with_side_output():
        index.add_table(table, annotation)
    index.freeze()
    _print_pipeline_summary(session.pipeline())
    for key, value in index.stats().items():
        print(f"{key}: {value}")
    if args.annotations:
        print(f"annotations -> {args.annotations}")
    return 0


def cmd_bundle_build(args: argparse.Namespace) -> int:
    session = _session_from_args(args)
    response = session.build_bundle(
        BundleBuildRequest(corpus_path=args.corpus, output_path=args.output)
    )
    _print_pipeline_summary(session.pipeline())
    print(
        f"bundle written to {response.output_path}: {response.n_tables} tables, "
        f"{response.n_files} files, annotate time "
        f"{response.annotate_seconds:.2f}s"
    )
    return 0


def cmd_bundle_info(args: argparse.Namespace) -> int:
    from repro.serve.bundle import read_manifest, verify_bundle

    manifest = read_manifest(args.bundle)
    if args.verify:
        verify_bundle(args.bundle, manifest)
        print("integrity: all file hashes match")
    print(json.dumps(manifest.to_dict(), indent=1))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.api.config import ServeConfig
    from repro.serve.bundle import load_bundle
    from repro.serve.server import InlineBackend, create_server, run_server
    from repro.serve.state import ServeState

    config = SessionConfig(
        engine=args.engine,
        candidate_engine=args.candidate_engine,
        fusion=args.fusion,
        executor=args.executor,
        cache_size=args.cache_size,
        compiled_cache_size=args.compiled_cache_size,
        serve=ServeConfig(
            workers=args.workers,
            queue_depth=args.queue_depth,
            shed_timeout_seconds=args.shed_timeout,
            request_timeout_seconds=args.request_timeout,
            health_interval_seconds=args.health_interval,
            drain_timeout_seconds=args.drain_timeout,
            batching=args.batching == "on",
            max_batch_size=args.max_batch_size,
            batch_wait_ms=args.batch_wait_ms,
        ),
    )
    verify = not args.no_verify
    backend: Any
    if args.inline:
        bundle = load_bundle(args.bundle, verify=verify)
        backend = InlineBackend(ServeState(bundle, session_config=config))
        topology = "inline (in-process)"
        n_tables = len(backend.state.index)
    else:
        try:
            from repro.serve.dispatcher import Dispatcher
            from repro.serve.pool import fork_context

            fork_context()  # raises where fork is unavailable
        except RuntimeError as error:
            print(f"warning: {error}", file=sys.stderr, flush=True)
            bundle = load_bundle(args.bundle, verify=verify)
            backend = InlineBackend(ServeState(bundle, session_config=config))
            topology = "inline (in-process; fork unavailable)"
            n_tables = len(backend.state.index)
        else:
            backend = Dispatcher(
                args.bundle,
                config=config,
                verify=verify,
                quiet=not args.verbose,
            )
            topology = f"{args.workers} pre-fork worker(s)"
            n_tables = backend.healthz()["tables"]
    if config.serve.batching:
        from repro.serve.dispatcher import BatchingBackend

        backend = BatchingBackend(backend, config=config)
        topology += (
            f" + request coalescer (max_batch_size={args.max_batch_size}, "
            f"batch_wait_ms={args.batch_wait_ms:g})"
        )
    server = create_server(
        backend, host=args.host, port=args.port, quiet=not args.verbose
    )

    def _drain(signum: int, frame: Any) -> None:
        # serve_forever must be stopped from another thread; server_close
        # then joins the in-flight handler threads before we drain workers
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    host, port = server.server_address[:2]
    print(
        f"serving bundle {args.bundle} ({n_tables} tables, {topology}) "
        f"on http://{host}:{port}  (Ctrl-C to stop, SIGTERM to drain)",
        file=sys.stderr,
        flush=True,
    )
    run_server(server)
    drained = server.backend.shutdown(config.serve.drain_timeout_seconds)
    print(
        "shutdown: in-flight requests "
        + ("drained" if drained else "FORCE-STOPPED after drain timeout"),
        file=sys.stderr,
        flush=True,
    )
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.runner import main as lint_main

    argv = [str(path) for path in args.paths]
    if args.root is not None:
        argv += ["--root", str(args.root)]
    argv += ["--format", args.format]
    if args.baseline is not None:
        argv += ["--baseline", str(args.baseline)]
    if args.write_baseline:
        argv.append("--write-baseline")
    if args.changed_only:
        argv.append("--changed-only")
    if args.base_ref != "HEAD":
        argv += ["--base-ref", args.base_ref]
    if args.dump_graph is not None:
        argv += ["--dump-graph", str(args.dump_graph)]
    if args.no_cache:
        argv.append("--no-cache")
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Web-table annotation and search (Limaye et al., VLDB 2010)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate-world", help="write a synthetic catalog (and corpus)"
    )
    generate.add_argument("--output", required=True, help="output directory")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument(
        "--tables", type=int, default=0, help="also generate N labeled tables"
    )
    generate.add_argument(
        "--noise", choices=[p.value for p in NoiseProfile], default="web"
    )
    generate.set_defaults(handler=cmd_generate_world)

    annotate = subparsers.add_parser("annotate", help="annotate a JSONL corpus")
    annotate.add_argument("--catalog", required=True)
    annotate.add_argument("--corpus", required=True)
    annotate.add_argument("--model", default=None)
    annotate.add_argument("--output", default=None)
    annotate.add_argument(
        "--jsonl",
        action="store_true",
        help="stream annotations as JSONL (one object per line, bounded memory)",
    )
    annotate.add_argument(
        "--wire",
        action="store_true",
        help="stream full AnnotateResponse wire payloads as JSONL "
        "(byte-identical to POST /annotate, timing excluded)",
    )
    _add_pipeline_arguments(annotate)
    annotate.set_defaults(handler=cmd_annotate)

    train = subparsers.add_parser("train", help="train model weights")
    train.add_argument("--catalog", required=True)
    train.add_argument("--corpus", required=True, help="labeled JSONL corpus")
    train.add_argument("--output", required=True, help="model JSON path")
    train.add_argument("--epochs", type=int, default=3)
    train.add_argument("--seed", type=int, default=0)
    train.set_defaults(handler=cmd_train)

    search = subparsers.add_parser("search", help="answer a relational query")
    search.add_argument("--catalog", required=True)
    search.add_argument("--corpus", required=True)
    search.add_argument("--model", default=None)
    search.add_argument("--relation", required=True, help="e.g. rel:directed")
    search.add_argument("--entity", required=True, help="the given E2 entity id")
    search.add_argument("--top-k", type=int, default=10)
    search.add_argument(
        "--no-relations",
        action="store_true",
        help="type-only search (paper Figure 4 without relation filtering)",
    )
    search.add_argument(
        "--json",
        action="store_true",
        help="print the SearchResponse wire payload "
        "(byte-identical to POST /search for the same request)",
    )
    _add_pipeline_arguments(search)
    search.set_defaults(handler=cmd_search)

    search_index = subparsers.add_parser(
        "search-index",
        help="annotate + index a corpus, reporting index statistics",
    )
    search_index.add_argument("--catalog", required=True)
    search_index.add_argument("--corpus", required=True)
    search_index.add_argument("--model", default=None)
    search_index.add_argument(
        "--annotations",
        default=None,
        help="also write the annotation stream to this JSONL path",
    )
    _add_pipeline_arguments(search_index)
    search_index.set_defaults(handler=cmd_search_index)

    augment = subparsers.add_parser(
        "augment", help="mine new catalog facts from an annotated corpus"
    )
    augment.add_argument("--catalog", required=True)
    augment.add_argument("--corpus", required=True)
    augment.add_argument("--model", default=None)
    augment.add_argument(
        "--output", default=None, help="write the augmented catalog here"
    )
    augment.add_argument("--min-confidence", type=float, default=0.5)
    augment.add_argument("--min-support", type=int, default=1)
    augment.add_argument("--top-k", type=int, default=10)
    _add_pipeline_arguments(augment)
    augment.set_defaults(handler=cmd_augment)

    bundle = subparsers.add_parser(
        "bundle",
        help="build or inspect serving artifact bundles (see `repro serve`)",
    )
    bundle_commands = bundle.add_subparsers(dest="bundle_command", required=True)
    bundle_build = bundle_commands.add_parser(
        "build",
        help="annotate a corpus and write a versioned artifact bundle",
    )
    bundle_build.add_argument("--catalog", required=True)
    bundle_build.add_argument("--corpus", required=True)
    bundle_build.add_argument("--model", default=None)
    bundle_build.add_argument("--output", required=True, help="bundle directory")
    _add_pipeline_arguments(bundle_build)
    bundle_build.set_defaults(handler=cmd_bundle_build)
    bundle_info = bundle_commands.add_parser(
        "info", help="print a bundle's manifest"
    )
    bundle_info.add_argument("--bundle", required=True, help="bundle directory")
    bundle_info.add_argument(
        "--verify",
        action="store_true",
        help="also re-hash every file against the manifest",
    )
    bundle_info.set_defaults(handler=cmd_bundle_info)

    serve = subparsers.add_parser(
        "serve",
        help="serve /annotate and /search over HTTP from a prebuilt bundle",
    )
    serve.add_argument("--bundle", required=True, help="bundle directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--engine",
        choices=VALID_ENGINES,
        default="batched",
        help="default inference engine (requests may override per call)",
    )
    serve.add_argument(
        "--candidate-engine",
        choices=VALID_CANDIDATE_ENGINES,
        default="batched",
        help="candidate-generation engine for every request",
    )
    serve.add_argument(
        "--fusion",
        choices=VALID_FUSION_MODES,
        default="off",
        help="corpus fusion mode for batch annotation endpoints",
    )
    serve.add_argument(
        "--executor",
        choices=VALID_EXECUTORS,
        default="thread",
        help="pipeline batch executor",
    )
    serve.add_argument(
        "--cache-size",
        type=_non_negative_int,
        default=100_000,
        help="candidate-cache entries (0 disables the cache)",
    )
    serve.add_argument(
        "--compiled-cache-size",
        type=_non_negative_int,
        default=2048,
        help="compiled-factor-graph LRU entries per worker (0 disables it)",
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="pre-fork worker processes sharing the mmapped bundle "
        "(default 1; see docs/OPERATIONS.md for tuning)",
    )
    serve.add_argument(
        "--queue-depth",
        type=_non_negative_int,
        default=16,
        help="requests allowed to queue beyond the in-flight workers "
        "before load shedding kicks in",
    )
    serve.add_argument(
        "--shed-timeout",
        type=float,
        default=2.0,
        help="seconds a request may wait for admission before a 503 shed",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=120.0,
        help="per-request ceiling; a worker silent past this is replaced",
    )
    serve.add_argument(
        "--health-interval",
        type=float,
        default=1.0,
        help="seconds between dead-worker sweeps",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds shutdown / hot-swap waits for in-flight requests",
    )
    serve.add_argument(
        "--batching",
        choices=("on", "off"),
        default="off",
        help="coalesce concurrent /annotate requests into fused "
        "super-batches (dynamic micro-batching; see docs/OPERATIONS.md "
        "'Batching')",
    )
    serve.add_argument(
        "--max-batch-size",
        type=_positive_int,
        default=16,
        help="tables one coalesced super-batch may carry at most "
        "(--batching on)",
    )
    serve.add_argument(
        "--batch-wait-ms",
        type=float,
        default=5.0,
        help="milliseconds the coalescer holds an open batch for more "
        "arrivals (--batching on)",
    )
    serve.add_argument(
        "--inline",
        action="store_true",
        help="run in-process (no worker fork) — library/debug shape; "
        "--workers is ignored",
    )
    serve.add_argument(
        "--no-verify",
        action="store_true",
        help="skip manifest hash verification at load",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log each request to stderr"
    )
    serve.set_defaults(handler=cmd_serve)

    lint = subparsers.add_parser(
        "lint",
        help="run the project-specific static analyzer (reprolint)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/ and tests/)",
    )
    lint.add_argument(
        "--root", default=None, help="repository root (default: cwd)"
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is the CI artifact shape)",
    )
    lint.add_argument(
        "--baseline", default=None, help="baseline file to ratchet against"
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline (review the shrink)",
    )
    lint.add_argument(
        "--changed-only",
        action="store_true",
        help="analyze the whole program, report only files changed vs "
        "--base-ref (plus untracked files)",
    )
    lint.add_argument(
        "--base-ref",
        default="HEAD",
        help="git ref --changed-only diffs against (default: HEAD)",
    )
    lint.add_argument(
        "--dump-graph",
        default=None,
        metavar="PATH",
        help="also write the whole-program import/call graph JSON here",
    )
    lint.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the on-disk AST cache (.reprolint_cache/)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule table"
    )
    lint.set_defaults(handler=cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ApiError as error:
        print(f"error [{error.code}]: {error.message}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via tests on main()
    sys.exit(main())
