"""repro — reproduction of Limaye, Sarawagi & Chakrabarti (VLDB 2010),
"Annotating and Searching Web Tables Using Entities, Types and
Relationships".

The public entry point is the typed API (:mod:`repro.api`)::

    from repro import AnnotateRequest, ReproSession, SearchRequest

    session = ReproSession.from_world("world/catalog_view.json")
    response = session.annotate(AnnotateRequest(table=table))
    session.index_corpus("world/corpus.jsonl")
    answers = session.search(SearchRequest(relation="rel:directed",
                                           entity="ent:kurosawa"))

The same requests drive the CLI (``python -m repro``) and the HTTP server
(``repro serve``) — all three frontends share one session facade and one
versioned wire schema, so their behaviour is identical by construction.

Lower-level building blocks (catalogs, generators, annotators, pipelines,
searchers) remain importable below for power users and existing code.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.api import (
    SCHEMA_VERSION,
    AnnotateRequest,
    AnnotateResponse,
    ApiError,
    BundleBuildRequest,
    BundleBuildResponse,
    ErrorEnvelope,
    JoinSearchRequest,
    ReproSession,
    SearchRequest,
    SearchResponse,
    ServeConfig,
    SessionConfig,
    TrainRequest,
    TrainResponse,
    encode_json,
)
from repro.catalog import (
    Catalog,
    CatalogBuilder,
    SyntheticCatalogConfig,
    SyntheticCatalogGenerator,
)
from repro.catalog.synthetic import SyntheticWorld, generate_world
from repro.core import (
    AnnotationModel,
    AnnotatorConfig,
    LCAAnnotator,
    MajorityAnnotator,
    StructuredTrainer,
    TableAnnotation,
    TableAnnotator,
    TrainingConfig,
    TypeEntityFeatureMode,
)
from repro.pipeline import (
    AnnotationPipeline,
    CandidateCache,
    CorpusTimingReport,
    PipelineConfig,
)
from repro.search import (
    AnnotatedSearcher,
    AnnotatedTableIndex,
    BaselineSearcher,
    JoinQuery,
    JoinSearcher,
    RelationQuery,
)
from repro.tables import (
    LabeledTable,
    NoiseProfile,
    Table,
    TableCorpus,
    TableGeneratorConfig,
    WebTableGenerator,
    extract_tables_from_html,
)

__version__ = "2.0.0"

__all__ = [
    # typed API surface
    "SCHEMA_VERSION",
    "AnnotateRequest",
    "AnnotateResponse",
    "ApiError",
    "BundleBuildRequest",
    "BundleBuildResponse",
    "ErrorEnvelope",
    "JoinSearchRequest",
    "ReproSession",
    "SearchRequest",
    "SearchResponse",
    "ServeConfig",
    "SessionConfig",
    "TrainRequest",
    "TrainResponse",
    "encode_json",
    # building blocks
    "AnnotatedSearcher",
    "AnnotatedTableIndex",
    "AnnotationModel",
    "AnnotationPipeline",
    "AnnotatorConfig",
    "CandidateCache",
    "CorpusTimingReport",
    "PipelineConfig",
    "BaselineSearcher",
    "Catalog",
    "CatalogBuilder",
    "JoinQuery",
    "JoinSearcher",
    "LCAAnnotator",
    "LabeledTable",
    "MajorityAnnotator",
    "NoiseProfile",
    "RelationQuery",
    "StructuredTrainer",
    "SyntheticCatalogConfig",
    "SyntheticCatalogGenerator",
    "SyntheticWorld",
    "Table",
    "TableAnnotation",
    "TableAnnotator",
    "TableCorpus",
    "TableGeneratorConfig",
    "TrainingConfig",
    "TypeEntityFeatureMode",
    "WebTableGenerator",
    "extract_tables_from_html",
    "generate_world",
    "__version__",
]
