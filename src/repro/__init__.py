"""repro — reproduction of Limaye, Sarawagi & Chakrabarti (VLDB 2010),
"Annotating and Searching Web Tables Using Entities, Types and
Relationships".

Quick start::

    from repro import (
        generate_world, TableAnnotator, WebTableGenerator, TableGeneratorConfig,
    )

    world = generate_world()                      # synthetic YAGO-substitute
    gen = WebTableGenerator(world.full, TableGeneratorConfig(n_tables=5))
    annotator = TableAnnotator(world.annotator_view)
    for labeled in gen.generate():
        annotation = annotator.annotate(labeled.table)
        print(annotation.table_id, annotation.columns)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.catalog import (
    Catalog,
    CatalogBuilder,
    SyntheticCatalogConfig,
    SyntheticCatalogGenerator,
)
from repro.catalog.synthetic import SyntheticWorld, generate_world
from repro.core import (
    AnnotationModel,
    AnnotatorConfig,
    LCAAnnotator,
    MajorityAnnotator,
    StructuredTrainer,
    TableAnnotation,
    TableAnnotator,
    TrainingConfig,
    TypeEntityFeatureMode,
)
from repro.pipeline import (
    AnnotationPipeline,
    CandidateCache,
    CorpusTimingReport,
    PipelineConfig,
)
from repro.search import (
    AnnotatedSearcher,
    AnnotatedTableIndex,
    BaselineSearcher,
    JoinQuery,
    JoinSearcher,
    RelationQuery,
)
from repro.tables import (
    LabeledTable,
    NoiseProfile,
    Table,
    TableCorpus,
    TableGeneratorConfig,
    WebTableGenerator,
    extract_tables_from_html,
)

__version__ = "1.0.0"

__all__ = [
    "AnnotatedSearcher",
    "AnnotatedTableIndex",
    "AnnotationModel",
    "AnnotationPipeline",
    "AnnotatorConfig",
    "CandidateCache",
    "CorpusTimingReport",
    "PipelineConfig",
    "BaselineSearcher",
    "Catalog",
    "CatalogBuilder",
    "JoinQuery",
    "JoinSearcher",
    "LCAAnnotator",
    "LabeledTable",
    "MajorityAnnotator",
    "NoiseProfile",
    "RelationQuery",
    "StructuredTrainer",
    "SyntheticCatalogConfig",
    "SyntheticCatalogGenerator",
    "SyntheticWorld",
    "Table",
    "TableAnnotation",
    "TableAnnotator",
    "TableCorpus",
    "TableGeneratorConfig",
    "TrainingConfig",
    "TypeEntityFeatureMode",
    "WebTableGenerator",
    "extract_tables_from_html",
    "generate_world",
    "__version__",
]
