"""Evaluation harness: metrics, dataset analogues and experiment runners.

Maps one-to-one onto the paper's Section 6 (see the per-experiment index in
DESIGN.md):

* :mod:`repro.eval.metrics` — 0/1 entity accuracy, set-F1 for types and
  relations, average precision / MAP,
* :mod:`repro.eval.datasets` — generated analogues of Wiki Manual,
  Web Manual, Web Relations and Wiki Link (Figure 5),
* :mod:`repro.eval.workload` — the search query workload and corpus
  (Appendix G / Figure 9),
* :mod:`repro.eval.experiments` — one runner per figure,
* :mod:`repro.eval.reporting` — plain-text table formatting used by the
  benchmark harness.
"""

from repro.eval.datasets import EvalDataset, build_standard_datasets
from repro.eval.metrics import (
    average_precision,
    entity_accuracy,
    mean_average_precision,
    set_f1,
)
from repro.eval.reporting import format_table

__all__ = [
    "EvalDataset",
    "average_precision",
    "build_standard_datasets",
    "entity_accuracy",
    "format_table",
    "mean_average_precision",
    "set_f1",
]
