"""ASCII figure rendering: grouped bar charts for MAP-style results.

The paper's Figure 9 is a grouped bar chart (one group per relation, one bar
per system).  :func:`grouped_bar_chart` renders the same shape in plain text
so experiment output remains diff-able and terminal-friendly::

    actedIn     baseline |####                |  0.04
                type     |############        |  0.22
                type_rel |############        |  0.22
"""

from __future__ import annotations

from typing import Mapping, Sequence


def bar(value: float, maximum: float, width: int = 24) -> str:
    """One bar scaled to ``width`` characters against ``maximum``."""
    if maximum <= 0:
        filled = 0
    else:
        filled = round(width * max(min(value / maximum, 1.0), 0.0))
    return "#" * filled + " " * (width - filled)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    series: Sequence[str],
    title: str | None = None,
    width: int = 24,
    maximum: float | None = None,
) -> str:
    """Render ``{group: {series: value}}`` as a grouped text bar chart.

    Args:
        groups: Values per group, e.g. ``{"actedIn": {"baseline": 0.04, ...}}``.
        series: Order of the bars within each group.
        title: Optional heading line.
        width: Bar width in characters.
        maximum: Scale ceiling; defaults to the largest value present.

    Groups render in insertion order; missing series values render as 0.
    """
    if maximum is None:
        values = [
            group.get(name, 0.0) for group in groups.values() for name in series
        ]
        maximum = max(values, default=1.0) or 1.0
    group_width = max((len(name) for name in groups), default=0)
    series_width = max((len(name) for name in series), default=0)
    lines: list[str] = []
    if title:
        lines.append(title)
    for group_name, group in groups.items():
        for position, series_name in enumerate(series):
            value = group.get(series_name, 0.0)
            label = group_name if position == 0 else ""
            lines.append(
                f"{label:<{group_width}}  {series_name:<{series_width}} "
                f"|{bar(value, maximum, width)}| {value:6.2f}"
            )
        lines.append("")
    if lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines)
