"""Experiment runners — one per table/figure of the paper's evaluation.

Every runner is deterministic given its seeds and returns plain data
structures; the benchmark harness under ``benchmarks/`` times them and prints
paper-style tables.  See DESIGN.md section 4 for the experiment index.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.catalog.catalog import Catalog
from repro.catalog.synthetic import SyntheticWorld
from repro.core.annotator import AnnotatorConfig
from repro.core.features import TypeEntityFeatureMode
from repro.core.learning import StructuredTrainer, TrainingConfig
from repro.core.model import AnnotationModel, default_model
from repro.pipeline.pipeline import AnnotationPipeline, PipelineConfig
from repro.eval.datasets import EvalDataset
from repro.eval.metrics import (
    AnnotationScores,
    annotation_type_sets,
    entity_accuracy,
    mean_average_precision,
    relation_f1,
    type_f1,
)
from repro.eval.workload import SearchWorkload, relevance_keys
from repro.search.annotated_search import AnnotatedSearcher
from repro.search.baseline_search import BaselineSearcher
from repro.search.table_index import AnnotatedTableIndex
from repro.tables.model import LabeledTable

ALGORITHMS = ("lca", "majority", "collective")


def _make_pipeline(
    catalog: Catalog,
    model: AnnotationModel | None = None,
    annotator_config: AnnotatorConfig | None = None,
    pipeline_config: PipelineConfig | None = None,
) -> AnnotationPipeline:
    """One pipeline per experiment: shared lemma index + candidate cache.

    ``annotator_config``, when given, overrides the annotator settings inside
    ``pipeline_config`` (kept for backward compatibility with the pre-pipeline
    runner signatures).
    """
    config = pipeline_config if pipeline_config is not None else PipelineConfig()
    if annotator_config is not None:
        config = replace(config, annotator=annotator_config)
    return AnnotationPipeline(catalog, model=model, config=config)


# ----------------------------------------------------------------------
# training (Section 6.1.3)
# ----------------------------------------------------------------------
def train_model(
    world: SyntheticWorld,
    train_tables: list[LabeledTable],
    mode: TypeEntityFeatureMode = TypeEntityFeatureMode.INV_SQRT_DIST,
    training: TrainingConfig | None = None,
    annotator_config: AnnotatorConfig | None = None,
) -> AnnotationModel:
    """Train w1..w5 on the given tables (the paper trains on Wiki Manual)."""
    pipeline = _make_pipeline(
        world.annotator_view,
        model=default_model(mode),
        annotator_config=annotator_config,
    )
    trainer = StructuredTrainer(
        pipeline.annotator, training if training is not None else TrainingConfig()
    )
    return trainer.train(train_tables)


# ----------------------------------------------------------------------
# Figure 6: annotation accuracy, three algorithms x datasets
# ----------------------------------------------------------------------
def evaluate_annotation(
    world: SyntheticWorld,
    dataset: EvalDataset,
    model: AnnotationModel,
    algorithms: tuple[str, ...] = ALGORITHMS,
    majority_threshold: float = 50.0,
    annotator_config: AnnotatorConfig | None = None,
    pipeline_config: PipelineConfig | None = None,
) -> dict[str, AnnotationScores]:
    """Score each algorithm on one dataset (shared problems and caches)."""
    annotator = _make_pipeline(
        world.annotator_view,
        model=model,
        annotator_config=annotator_config,
        pipeline_config=pipeline_config,
    ).annotator
    scores = {name: AnnotationScores() for name in algorithms}
    for labeled in dataset.tables:
        problem = annotator.build_problem(labeled.table)
        truth = labeled.truth
        for name in algorithms:
            if name == "collective":
                annotation = annotator.annotate_problem(problem)
                type_sets = annotation_type_sets(annotation)
            elif name == "lca":
                result = annotator.lca_baseline().annotate(problem)
                annotation = result.annotation
                type_sets = result.column_type_sets
            elif name == "majority":
                result = annotator.majority_baseline(majority_threshold).annotate(
                    problem
                )
                annotation = result.annotation
                type_sets = result.column_type_sets
            else:
                raise ValueError(f"unknown algorithm: {name!r}")
            scores[name].entity.merge(entity_accuracy(truth, annotation))
            if truth.column_types:
                scores[name].type_.merge(type_f1(truth, type_sets))
            if truth.relations and name == "collective":
                scores[name].relation.merge(relation_f1(truth, annotation))
            elif truth.relations:
                # Baselines carry no relation model; the paper evaluates
                # their relation row via majority voting over row-level
                # tuple matches, which we reproduce here.
                scores[name].relation.merge(
                    relation_f1(truth, _baseline_relations(world, annotation, labeled))
                )
    return scores


def _baseline_relations(world, annotation, labeled):
    """Relation-by-voting for baselines: the label whose catalog tuples match
    the most rows wins, if it beats half the rows with both cells labelled."""
    from repro.core.annotation import RelationAnnotation, TableAnnotation
    from repro.tables.generator import reversed_label

    catalog = world.annotator_view
    result = TableAnnotation(table_id=annotation.table_id)
    result.cells = annotation.cells
    result.columns = annotation.columns
    table = labeled.table
    for (left, right) in labeled.truth.relations:
        votes: dict[str, int] = {}
        rows_with_pair = 0
        for row in range(table.n_rows):
            left_entity = annotation.entity_of(row, left)
            right_entity = annotation.entity_of(row, right)
            if left_entity is None or right_entity is None:
                continue
            rows_with_pair += 1
            for relation_id in catalog.relations.relations_between(
                left_entity, right_entity
            ):
                votes[relation_id] = votes.get(relation_id, 0) + 1
            for relation_id in catalog.relations.relations_between(
                right_entity, left_entity
            ):
                label = reversed_label(relation_id)
                votes[label] = votes.get(label, 0) + 1
        chosen = None
        if votes and rows_with_pair:
            best_label, best_votes = max(
                votes.items(), key=lambda item: (item[1], item[0])
            )
            if best_votes > rows_with_pair / 2:
                chosen = best_label
        result.relations[(left, right)] = RelationAnnotation(
            left_column=left, right_column=right, label=chosen
        )
    return result


# ----------------------------------------------------------------------
# Figure 6 drill-down: Majority threshold sweep
# ----------------------------------------------------------------------
def threshold_sweep(
    world: SyntheticWorld,
    dataset: EvalDataset,
    model: AnnotationModel,
    thresholds: tuple[float, ...] = (50.0, 60.0, 70.0, 80.0, 90.0, 100.0),
    annotator_config: AnnotatorConfig | None = None,
) -> dict[float, float]:
    """Type F1 of Majority(F) for each threshold F (LCA at 100)."""
    annotator = _make_pipeline(
        world.annotator_view, model=model, annotator_config=annotator_config
    ).annotator
    results: dict[float, float] = {}
    problems = [
        (annotator.build_problem(labeled.table), labeled.truth)
        for labeled in dataset.tables
        if labeled.truth.column_types
    ]
    for threshold in thresholds:
        counts = None
        baseline = annotator.majority_baseline(threshold)
        for problem, truth in problems:
            result = baseline.annotate(problem)
            partial = type_f1(truth, result.column_type_sets)
            if counts is None:
                counts = partial
            else:
                counts.merge(partial)
        results[threshold] = counts.mean_f1 if counts else 0.0
    return results


# ----------------------------------------------------------------------
# Figure 7: annotation time
# ----------------------------------------------------------------------
@dataclass
class TimingReport:
    """Summary of the per-table annotation timing experiment.

    The cache fields describe the pipeline's shared candidate cache during
    the run (all zero when caching is disabled).
    """

    n_tables: int
    mean_seconds: float
    median_seconds: float
    p90_seconds: float
    candidate_fraction: float
    inference_fraction: float
    per_table_seconds: list[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit_rate: float = 0.0
    #: hits split by kind: exact surface form vs normalised-key-only
    cache_raw_hits: int = 0
    cache_normalized_hits: int = 0


def timing_experiment(
    world: SyntheticWorld,
    tables: list[LabeledTable],
    model: AnnotationModel,
    annotator_config: AnnotatorConfig | None = None,
    pipeline_config: PipelineConfig | None = None,
) -> TimingReport:
    """Annotate a snapshot of tables, recording the Figure-7 breakdown."""
    pipeline = _make_pipeline(
        world.annotator_view,
        model=model,
        annotator_config=annotator_config,
        pipeline_config=pipeline_config,
    )
    pipeline.annotate_corpus(tables)
    report = pipeline.last_report
    totals = report.per_table_seconds
    grand_total = report.total_seconds or 1.0
    cache = report.cache
    return TimingReport(
        n_tables=report.n_tables,
        mean_seconds=report.mean_seconds,
        median_seconds=report.median_seconds,
        p90_seconds=report.p90_seconds,
        candidate_fraction=report.candidate_seconds / grand_total,
        inference_fraction=report.inference_seconds / grand_total,
        per_table_seconds=totals,
        wall_seconds=report.wall_seconds,
        cache_hits=cache.hits if cache else 0,
        cache_misses=cache.misses if cache else 0,
        cache_hit_rate=cache.hit_rate if cache else 0.0,
        cache_raw_hits=cache.raw_hits if cache else 0,
        cache_normalized_hits=cache.normalized_hits if cache else 0,
    )


# ----------------------------------------------------------------------
# Figure 8: type-entity compatibility feature ablation
# ----------------------------------------------------------------------
def feature_ablation(
    world: SyntheticWorld,
    train_tables: list[LabeledTable],
    eval_datasets: dict[str, EvalDataset],
    modes: tuple[TypeEntityFeatureMode, ...] = (
        TypeEntityFeatureMode.INV_SQRT_DIST,
        TypeEntityFeatureMode.INV_DIST,
        TypeEntityFeatureMode.IDF,
    ),
    training: TrainingConfig | None = None,
    annotator_config: AnnotatorConfig | None = None,
) -> dict[str, dict[str, dict[str, float]]]:
    """Retrain per mode and evaluate entity/type accuracy per dataset.

    Returns ``{mode: {dataset: {"entity_accuracy": .., "type_f1": ..}}}``.
    """
    results: dict[str, dict[str, dict[str, float]]] = {}
    for mode in modes:
        model = train_model(
            world,
            train_tables,
            mode=mode,
            training=training,
            annotator_config=annotator_config,
        )
        per_dataset: dict[str, dict[str, float]] = {}
        for name, dataset in eval_datasets.items():
            scores = evaluate_annotation(
                world,
                dataset,
                model,
                algorithms=("collective",),
                annotator_config=annotator_config,
            )["collective"]
            per_dataset[name] = {
                "entity_accuracy": scores.entity.accuracy,
                "type_f1": scores.type_.mean_f1,
            }
        results[mode.value] = per_dataset
    return results


# ----------------------------------------------------------------------
# Figure 9: search MAP
# ----------------------------------------------------------------------
def build_annotated_index(
    world: SyntheticWorld,
    corpus_tables: list[LabeledTable],
    model: AnnotationModel,
    annotator_config: AnnotatorConfig | None = None,
    pipeline_config: PipelineConfig | None = None,
) -> AnnotatedTableIndex:
    """Annotate a corpus with the collective model and index it."""
    pipeline = _make_pipeline(
        world.annotator_view,
        model=model,
        annotator_config=annotator_config,
        pipeline_config=pipeline_config,
    )
    return AnnotatedTableIndex.from_corpus(
        world.annotator_view, corpus_tables, pipeline=pipeline
    )


def search_map_experiment(
    world: SyntheticWorld,
    index: AnnotatedTableIndex,
    workload: SearchWorkload,
) -> dict[str, dict[str, float]]:
    """MAP per relation for Baseline / Type / Type+Rel (Figure 9).

    Returns ``{relation_id: {"baseline": .., "type": .., "type_rel": ..}}``
    plus an ``"__all__"`` row averaging over every query.
    """
    searchers = {
        "baseline": BaselineSearcher(index, world.annotator_view),
        "type": AnnotatedSearcher(index, world.annotator_view, use_relations=False),
        "type_rel": AnnotatedSearcher(index, world.annotator_view, use_relations=True),
    }
    per_relation: dict[str, dict[str, list[tuple[list[str], set[str]]]]] = {}
    for query in workload.queries:
        relevant = relevance_keys(world, workload.relevant[query])
        for system, searcher in searchers.items():
            response = searcher.search(query)
            per_relation.setdefault(query.relation_id, {}).setdefault(
                system, []
            ).append((response.ranked_keys(), relevant))
    results: dict[str, dict[str, float]] = {}
    overall: dict[str, list[tuple[list[str], set[str]]]] = {}
    for relation_id, by_system in sorted(per_relation.items()):
        results[relation_id] = {}
        for system, pairs in by_system.items():
            results[relation_id][system] = mean_average_precision(pairs)
            overall.setdefault(system, []).extend(pairs)
    results["__all__"] = {
        system: mean_average_precision(pairs) for system, pairs in overall.items()
    }
    return results


# ----------------------------------------------------------------------
# Section 6.1.1: candidate-space statistics
# ----------------------------------------------------------------------
def candidate_statistics(
    world: SyntheticWorld,
    tables: list[LabeledTable],
    annotator_config: AnnotatorConfig | None = None,
) -> dict[str, float]:
    """Average candidate entities per cell / types per column / relations.

    The paper reports ~7-8 candidate entities per cell and hundreds of
    candidate types per column on YAGO scale.
    """
    annotator = _make_pipeline(
        world.annotator_view, annotator_config=annotator_config
    ).annotator
    totals = {
        "cells_with_candidates": 0.0,
        "avg_entity_candidates": 0.0,
        "avg_type_candidates": 0.0,
        "avg_relation_candidates": 0.0,
    }
    n_tables = 0
    for labeled in tables:
        problem = annotator.build_problem(labeled.table)
        stats = problem.stats()
        n_tables += 1
        for key in totals:
            totals[key] += stats[key]
    if n_tables:
        for key in totals:
            totals[key] /= n_tables
    totals["n_tables"] = float(n_tables)
    return totals
