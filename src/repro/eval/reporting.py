"""Plain-text table formatting for experiment output.

The benchmark harness prints the same rows/series the paper's figures report;
these helpers keep that output aligned and deterministic.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Fixed-width text table (paper-figure style)."""
    rendered_rows = [[format_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def percent(value: float) -> float:
    """Fractions to paper-style percentages."""
    return 100.0 * value
