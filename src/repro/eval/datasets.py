"""Generated analogues of the paper's four ground-truth datasets (Figure 5).

| Paper dataset  | Shape                                     | Analogue here |
|----------------|-------------------------------------------|---------------|
| Wiki Manual    | 36 tables, clean text, full annotations   | ``wiki_manual`` — WIKI noise, full truth |
| Web Manual     | 371 tables, noisy text, full annotations  | ``web_manual`` — WEB noise, full truth |
| Web Relations  | 30 tables, only relation annotations      | ``web_relations`` — WEB noise, truth stripped to relations |
| Wiki Link      | 6085 tables, only cell-entity annotations | ``wiki_link`` — WIKI noise, truth stripped to entities |

Sizes default to the paper's proportions scaled down for laptop runtimes and
scale up cleanly via :class:`DatasetSizes` (benchmarks use larger values).
The paper trains on Wiki Manual; :func:`build_standard_datasets` therefore
also returns it first so callers can reuse it as the training split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.synthetic import SyntheticWorld
from repro.tables.corpus import TableCorpus
from repro.tables.generator import (
    NoiseProfile,
    TableGeneratorConfig,
    WebTableGenerator,
)
from repro.tables.model import LabeledTable


@dataclass
class DatasetSizes:
    """Number of tables per dataset analogue."""

    wiki_manual: int = 36
    web_manual: int = 80
    web_relations: int = 30
    wiki_link: int = 120


@dataclass
class EvalDataset:
    """One named evaluation dataset."""

    name: str
    tables: list[LabeledTable]
    noise: NoiseProfile
    description: str = ""

    def corpus(self) -> TableCorpus:
        return TableCorpus(self.tables)

    def summary(self) -> dict[str, float]:
        """Figure-5 style row: tables, avg rows, annotation counts."""
        return self.corpus().summary()


def build_standard_datasets(
    world: SyntheticWorld,
    sizes: DatasetSizes | None = None,
    base_seed: int = 100,
    generator_overrides: dict | None = None,
) -> dict[str, EvalDataset]:
    """Build the four dataset analogues from one synthetic world.

    Tables are always rendered from the *full* (ground-truth) catalog — the
    Web contains facts the annotator's catalog view is missing, which is
    exactly the paper's setting ("the seed tuples we start with in our
    catalog are only a small fraction of all the tuples we find").

    ``generator_overrides`` forwards extra
    :class:`~repro.tables.generator.TableGeneratorConfig` fields (e.g.
    ``alternate_lemma_prob``) to every dataset's generator — the benchmark
    harness uses this to dial difficulty toward YAGO-scale ambiguity.
    """
    sizes = sizes if sizes is not None else DatasetSizes()
    overrides = dict(generator_overrides or {})

    def generate(name, n_tables, noise, seed_offset):
        generator = WebTableGenerator(
            world.full,
            TableGeneratorConfig(
                seed=base_seed + seed_offset,
                n_tables=n_tables,
                noise=noise,
                id_prefix=name,
                **overrides,
            ),
        )
        return generator.generate()

    wiki_manual = EvalDataset(
        name="wiki_manual",
        tables=generate("wiki_manual", sizes.wiki_manual, NoiseProfile.WIKI, 0),
        noise=NoiseProfile.WIKI,
        description="Clean Wikipedia-like tables with full ground truth "
        "(entities, types, relations); also the training split.",
    )
    web_manual = EvalDataset(
        name="web_manual",
        tables=generate("web_manual", sizes.web_manual, NoiseProfile.WEB, 1),
        noise=NoiseProfile.WEB,
        description="Noisy open-Web-like tables with full ground truth.",
    )
    web_relations = EvalDataset(
        name="web_relations",
        tables=[
            labeled.strip_to_relations()
            for labeled in generate(
                "web_relations", sizes.web_relations, NoiseProfile.WEB, 2
            )
        ],
        noise=NoiseProfile.WEB,
        description="Noisy tables annotated only with column-pair relations.",
    )
    wiki_link = EvalDataset(
        name="wiki_link",
        tables=[
            labeled.strip_to_entities()
            for labeled in generate("wiki_link", sizes.wiki_link, NoiseProfile.WIKI, 3)
        ],
        noise=NoiseProfile.WIKI,
        description="Clean tables annotated only with cell entities "
        "(internal-link style truth at scale).",
    )
    return {
        dataset.name: dataset
        for dataset in (wiki_manual, web_manual, web_relations, wiki_link)
    }


@dataclass
class MissingLinkFixture:
    """The Appendix-F anecdote as a reusable fixture.

    A column of book titles whose entities all carry a fine category, but one
    entity's link to that category is missing from the annotator's view — LCA
    escalates to the root while the collective model stays specific.
    """

    column_cells: list[str] = field(default_factory=list)
    expected_type: str = ""
    broken_entity: str = ""


def missing_link_fixture():
    """Build a small Nancy-Drew-style catalog pair (full, broken view).

    Returns ``(full_catalog, broken_view, fixture)``; the view lacks the
    ``∈`` edge from one book to the series category AND the ``⊆`` edge from
    the series category to its parent — the two missing links of Appendix F.
    """
    from repro.catalog.builder import CatalogBuilder

    def build(include_missing_links: bool):
        builder = (
            CatalogBuilder(name="nancy-drew")
            .type("type:book", "book", "novel")
            .type("type:childrens_novels", "children's novels", parents=["type:book"])
            .type("type:1951_novels", "1951 novels", parents=["type:book"])
        )
        series_parents = ["type:childrens_novels"] if include_missing_links else []
        builder.type("type:series_books", "Nancy Drew books", parents=series_parents)
        titles = [
            ("ent:book:secret", "The Secret of the Old Clock"),
            ("ent:book:staircase", "The Hidden Staircase"),
            ("ent:book:keys", "The Clue of the Black Keys"),
            ("ent:book:diary", "The Clue in the Diary"),
        ]
        for entity_id, title in titles:
            if entity_id == "ent:book:keys" and not include_missing_links:
                # the missing ∈ link: only coarse categories remain
                types = ["type:1951_novels", "type:childrens_novels"]
            else:
                types = ["type:series_books"]
            builder.entity(entity_id, lemmas=[title], types=types)
        return builder.build()

    fixture = MissingLinkFixture(
        column_cells=[
            "The Secret of the Old Clock",
            "The Hidden Staircase",
            "The Clue of the Black Keys",
            "The Clue in the Diary",
        ],
        expected_type="type:series_books",
        broken_entity="ent:book:keys",
    )
    return build(True), build(False), fixture
