"""Evaluation metrics matching the paper's Section 6.1.1.

* **Entity annotation** — 0/1 loss per cell: "we lose a point if we get a
  cell wrong, including choosing na when ground truth was not na".
* **Type / relation annotation** — F1 between the predicted label *set* and
  the (singleton or empty-for-na) truth set, macro-averaged over columns /
  column pairs.  The collective annotator predicts one label, the baselines
  may predict several — the same metric covers both.
* **Search** — mean average precision (MAP) over ranked answer lists.

Slots whose ground truth was never collected are skipped ("If ground truth is
missing for a entity, type, or relation, we drop it from the labeling task").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.annotation import TableAnnotation
from repro.tables.model import TableTruth


@dataclass
class MetricCounts:
    """Running tallies for one task over a dataset."""

    correct: int = 0
    total: int = 0
    f1_sum: float = 0.0
    f1_count: int = 0

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0

    @property
    def mean_f1(self) -> float:
        return self.f1_sum / self.f1_count if self.f1_count else 0.0

    def merge(self, other: "MetricCounts") -> None:
        self.correct += other.correct
        self.total += other.total
        self.f1_sum += other.f1_sum
        self.f1_count += other.f1_count


# ----------------------------------------------------------------------
# annotation metrics
# ----------------------------------------------------------------------
def entity_accuracy(truth: TableTruth, annotation: TableAnnotation) -> MetricCounts:
    """0/1 loss over cells that carry ground truth."""
    counts = MetricCounts()
    for (row, column), true_entity in truth.cell_entities.items():
        predicted = annotation.entity_of(row, column)
        counts.total += 1
        if predicted == true_entity:
            counts.correct += 1
    return counts


def set_f1(predicted: set[str], truth: set[str]) -> float:
    """F1 between two label sets; two empty sets agree perfectly (na vs na)."""
    if not predicted and not truth:
        return 1.0
    if not predicted or not truth:
        return 0.0
    overlap = len(predicted & truth)
    precision = overlap / len(predicted)
    recall = overlap / len(truth)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def type_f1(
    truth: TableTruth,
    predicted_sets: dict[int, set[str]],
) -> MetricCounts:
    """Macro F1 of column-type prediction over columns with ground truth.

    ``predicted_sets`` maps column → predicted type set (empty = na); build it
    from a point annotation with :func:`annotation_type_sets`.
    """
    counts = MetricCounts()
    for column, true_type in truth.column_types.items():
        predicted = predicted_sets.get(column, set())
        truth_set = set() if true_type is None else {true_type}
        counts.f1_sum += set_f1(predicted, truth_set)
        counts.f1_count += 1
        counts.total += 1
        if predicted == truth_set:
            counts.correct += 1
    return counts


def relation_f1(truth: TableTruth, annotation: TableAnnotation) -> MetricCounts:
    """Macro F1 of relation prediction over column pairs with ground truth."""
    counts = MetricCounts()
    for (left, right), true_label in truth.relations.items():
        predicted_label = annotation.relation_of(left, right)
        predicted = set() if predicted_label is None else {predicted_label}
        truth_set = set() if true_label is None else {true_label}
        counts.f1_sum += set_f1(predicted, truth_set)
        counts.f1_count += 1
        counts.total += 1
        if predicted == truth_set:
            counts.correct += 1
    return counts


def annotation_type_sets(annotation: TableAnnotation) -> dict[int, set[str]]:
    """Singleton type sets from a point annotation (collective's output)."""
    return {
        column: (set() if ann.type_id is None else {ann.type_id})
        for column, ann in annotation.columns.items()
    }


# ----------------------------------------------------------------------
# search metrics
# ----------------------------------------------------------------------
def average_precision(ranked_keys: list[str], relevant_keys: set[str]) -> float:
    """AP of one ranked list against a relevant-key set.

    Duplicate keys deeper in the ranking are ignored; an empty relevant set
    yields 0 (such queries are normally filtered from the workload).
    """
    if not relevant_keys:
        return 0.0
    hits = 0
    precision_sum = 0.0
    seen: set[str] = set()
    rank = 0
    for key in ranked_keys:
        if key in seen:
            continue
        seen.add(key)
        rank += 1
        if key in relevant_keys:
            hits += 1
            precision_sum += hits / rank
    return precision_sum / len(relevant_keys)


def mean_average_precision(
    per_query: list[tuple[list[str], set[str]]]
) -> float:
    """MAP over (ranked keys, relevant keys) pairs."""
    if not per_query:
        return 0.0
    return sum(
        average_precision(ranked, relevant) for ranked, relevant in per_query
    ) / len(per_query)


@dataclass
class AnnotationScores:
    """Bundled metrics of one algorithm on one dataset."""

    entity: MetricCounts = field(default_factory=MetricCounts)
    type_: MetricCounts = field(default_factory=MetricCounts)
    relation: MetricCounts = field(default_factory=MetricCounts)

    def as_row(self) -> dict[str, float]:
        return {
            "entity_accuracy": self.entity.accuracy,
            "type_f1": self.type_.mean_f1,
            "relation_f1": self.relation.mean_f1,
        }
