"""Search workload and corpus for the Figure-9 experiment.

The paper "generated a workload from five relations ... and for each relation
randomly selected forty E2 values in YAGO that participate in the relation",
then queried the annotated Web-table corpus, scoring with MAP against
DBPedia.  Here the five relations are the world's ``query_relations``
(acted_in, directed, official_language, produced, wrote), E2 values are
sampled from the *full* catalog's tuple store (the DBPedia stand-in), and the
corpus is a fresh batch of noisy generated tables.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.catalog.synthetic import SyntheticWorld
from repro.search.query import RelationQuery
from repro.tables.generator import (
    NoiseProfile,
    TableGeneratorConfig,
    WebTableGenerator,
)
from repro.tables.model import LabeledTable


@dataclass
class SearchWorkload:
    """Queries plus their relevance truth."""

    queries: list[RelationQuery]
    #: query -> relevant subject-entity ids, judged against the full catalog
    relevant: dict[RelationQuery, frozenset[str]]


def build_search_workload(
    world: SyntheticWorld,
    queries_per_relation: int = 40,
    seed: int = 500,
    min_relevant: int = 1,
) -> SearchWorkload:
    """Sample E2 values per query relation and record their true answers.

    Relevance truth comes from ``world.full`` — independent of both the
    annotator's incomplete catalog view and the table corpus, mirroring the
    paper's DBPedia-vs-YAGO separation.
    """
    rng = random.Random(seed)
    queries: list[RelationQuery] = []
    relevant: dict[RelationQuery, frozenset[str]] = {}
    for relation_id in world.query_relations:
        objects = sorted(world.full.relations.participating_objects(relation_id))
        eligible = [
            object_id
            for object_id in objects
            if len(world.full.relations.subjects_of(relation_id, object_id))
            >= min_relevant
        ]
        chosen = (
            rng.sample(eligible, queries_per_relation)
            if len(eligible) > queries_per_relation
            else eligible
        )
        for object_id in chosen:
            query = RelationQuery.from_catalog(world.full, relation_id, object_id)
            queries.append(query)
            relevant[query] = frozenset(
                world.full.relations.subjects_of(relation_id, object_id)
            )
    return SearchWorkload(queries=queries, relevant=relevant)


def build_search_corpus(
    world: SyntheticWorld,
    n_tables: int = 150,
    seed: int = 900,
    noise: NoiseProfile | None = None,
    generator_overrides: dict | None = None,
) -> list[LabeledTable]:
    """A fresh corpus of tables to search over.

    By default the corpus mixes half WIKI-noise and half WEB-noise tables —
    a crawl contains both well-edited and messy pages.  Ground-truth labels
    are kept on the tables for diagnostics but the search pipeline only ever
    sees the system's own annotations.  ``generator_overrides`` forwards
    extra :class:`TableGeneratorConfig` fields.
    """
    overrides = dict(generator_overrides or {})
    if noise is not None:
        generator = WebTableGenerator(
            world.full,
            TableGeneratorConfig(
                seed=seed,
                n_tables=n_tables,
                noise=noise,
                id_prefix="searchcorpus",
                **overrides,
            ),
        )
        return generator.generate()
    half = n_tables // 2
    clean = WebTableGenerator(
        world.full,
        TableGeneratorConfig(
            seed=seed,
            n_tables=half,
            noise=NoiseProfile.WIKI,
            id_prefix="searchcorpus-wiki",
            **overrides,
        ),
    ).generate()
    noisy = WebTableGenerator(
        world.full,
        TableGeneratorConfig(
            seed=seed + 1,
            n_tables=n_tables - half,
            noise=NoiseProfile.WEB,
            id_prefix="searchcorpus-web",
            **overrides,
        ),
    ).generate()
    return clean + noisy


def relevance_keys(world: SyntheticWorld, entity_ids: frozenset[str]) -> set[str]:
    """Keys accepted as relevant in a ranked answer list.

    Entity ids count, and so do normalised lemmas of the relevant entities —
    the Figure-3 baseline returns raw strings, which must be creditable when
    they name a right answer.
    """
    from repro.text.normalize import normalize_text

    keys: set[str] = set(entity_ids)
    for entity_id in entity_ids:
        for lemma in world.full.entities.lemmas(entity_id):
            keys.add(normalize_text(lemma).lower())
    return keys
