"""Versioned, typed wire schema of the public API.

Every request/response that crosses the API boundary is a dataclass here
with a strict ``to_json`` / ``from_json`` pair:

* ``to_json`` returns a plain JSON-ready dict whose first key is always
  ``schema_version`` (currently |SCHEMA_VERSION|) and whose key order is
  stable — encoding the same object twice yields the same bytes,
* ``from_json`` validates types, rejects unknown keys, rejects payloads
  declaring a ``schema_version`` this build does not speak (stable code
  ``schema_version_unsupported``) and round-trips exactly:
  ``T.from_json(T.to_json(x)) == x`` for every ``x`` (property-tested under
  hypothesis in ``tests/api``).

A payload *without* ``schema_version`` is accepted as the current version,
so hand-written ``curl`` bodies keep working.

:func:`encode_json` is the canonical serialisation used by both the CLI
(``--wire`` / ``--json`` modes) and the HTTP server, which is what makes the
two frontends byte-identical for identical requests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api import errors
from repro.api.errors import ApiError
from repro.search.ranking import SearchAnswer
from repro.search.ranking import SearchResponse as RankedResponse
from repro.tables.model import Table

#: version of the wire schema spoken by this build
SCHEMA_VERSION = 1


def encode_json(payload: Mapping[str, Any]) -> str:
    """The one canonical JSON encoding (CLI and HTTP share it verbatim)."""
    return json.dumps(payload, ensure_ascii=False)


# ----------------------------------------------------------------------
# strict decoding helpers
# ----------------------------------------------------------------------
def _ensure_mapping(payload: object, type_name: str) -> Mapping[str, Any]:
    if not isinstance(payload, Mapping):
        raise ApiError(
            errors.VALIDATION_ERROR,
            f"{type_name} payload must be a JSON object, "
            f"got {type(payload).__name__}",
        )
    return payload


def check_schema_version(payload: Mapping[str, Any], type_name: str) -> None:
    """Reject payloads from a schema this build does not speak."""
    version = payload.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ApiError(
            errors.SCHEMA_VERSION_UNSUPPORTED,
            f"{type_name} declares schema_version {version!r}; this build "
            f"speaks schema_version {SCHEMA_VERSION}",
        )


def _reject_unknown_keys(
    payload: Mapping[str, Any], allowed: tuple[str, ...], type_name: str
) -> None:
    unknown = sorted(set(payload) - set(allowed) - {"schema_version"})
    if unknown:
        raise ApiError(
            errors.VALIDATION_ERROR,
            f"{type_name} has unknown field(s): {', '.join(unknown)} "
            f"(allowed: {', '.join(allowed)})",
        )


def _require(payload: Mapping[str, Any], key: str, type_name: str) -> Any:
    if key not in payload:
        raise ApiError(
            errors.VALIDATION_ERROR, f"missing required field: {key!r}"
        )
    return payload[key]


def _require_str(payload: Mapping[str, Any], key: str, type_name: str) -> str:
    value = _require(payload, key, type_name)
    if not isinstance(value, str):
        raise ApiError(
            errors.VALIDATION_ERROR,
            f"{type_name}.{key} must be a string, got {type(value).__name__}",
        )
    return value


def _optional_top_k(payload: Mapping[str, Any], type_name: str) -> int | None:
    top_k = payload.get("top_k")
    if top_k is None:
        return None
    if isinstance(top_k, bool) or not isinstance(top_k, int) or top_k < 1:
        raise ApiError(
            errors.VALIDATION_ERROR, "top_k must be a positive integer"
        )
    return top_k


def _coerce(kind, value, type_name: str, key: str):
    """Coerce one decoded field, mapping failures into the taxonomy."""
    try:
        return kind(value)
    except (TypeError, ValueError) as error:
        raise ApiError(
            errors.VALIDATION_ERROR,
            f"{type_name}.{key} must be a {kind.__name__}: {error}",
        ) from error


def _decode_table(payload: object) -> Table:
    try:
        return Table.from_dict(_ensure_mapping(payload, "table"))
    except ApiError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise ApiError(
            errors.INVALID_TABLE, f"invalid table payload: {error}"
        ) from error


# ----------------------------------------------------------------------
# annotate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AnnotateRequest:
    """Annotate one table.

    ``engine=None`` means "the session's default engine".  Timing numbers
    are wall-clock and therefore non-deterministic; ``include_timing=False``
    yields a fully deterministic response — the CLI↔HTTP parity guarantee is
    stated over requests with timing excluded.
    """

    table: Table
    engine: str | None = None
    include_timing: bool = True

    def to_json(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "table": self.table.to_dict(),
            "engine": self.engine,
            "include_timing": self.include_timing,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "AnnotateRequest":
        name = cls.__name__
        payload = _ensure_mapping(payload, name)
        check_schema_version(payload, name)
        _reject_unknown_keys(payload, ("table", "engine", "include_timing"), name)
        engine = payload.get("engine")
        if engine is not None and not isinstance(engine, str):
            raise ApiError(
                errors.VALIDATION_ERROR, f"{name}.engine must be a string or null"
            )
        include_timing = payload.get("include_timing", True)
        if not isinstance(include_timing, bool):
            raise ApiError(
                errors.VALIDATION_ERROR, f"{name}.include_timing must be a boolean"
            )
        return cls(
            table=_decode_table(_require(payload, "table", name)),
            engine=engine,
            include_timing=include_timing,
        )


@dataclass(frozen=True)
class AnnotateResponse:
    """One annotated table.

    ``annotation`` is the compact label map produced by
    :func:`repro.pipeline.io.annotation_to_dict` (the shape ``repro
    annotate`` has always written); ``diagnostics`` carries the inference
    counters and ``timing_seconds`` the per-stage wall clock (``None`` when
    the request opted out).
    """

    table_id: str
    engine: str
    annotation: dict[str, Any]
    diagnostics: dict[str, Any] = field(default_factory=dict)
    timing_seconds: dict[str, float] | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "table_id": self.table_id,
            "engine": self.engine,
            "annotation": self.annotation,
            "diagnostics": self.diagnostics,
            "timing_seconds": self.timing_seconds,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "AnnotateResponse":
        name = cls.__name__
        payload = _ensure_mapping(payload, name)
        check_schema_version(payload, name)
        _reject_unknown_keys(
            payload,
            ("table_id", "engine", "annotation", "diagnostics", "timing_seconds"),
            name,
        )
        annotation = _require(payload, "annotation", name)
        timing = payload.get("timing_seconds")
        return cls(
            table_id=_require_str(payload, "table_id", name),
            engine=_require_str(payload, "engine", name),
            annotation=dict(_ensure_mapping(annotation, f"{name}.annotation")),
            diagnostics=dict(
                _ensure_mapping(
                    payload.get("diagnostics") or {}, f"{name}.diagnostics"
                )
            ),
            timing_seconds=(
                None
                if timing is None
                else dict(
                    _ensure_mapping(timing, f"{name}.timing_seconds")
                )
            ),
        )


# ----------------------------------------------------------------------
# search
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SearchRequest:
    """One relational query ``R(?, entity)`` (paper Section 5).

    ``use_relations=False`` runs the type-only processor (Figure 4 without
    relation filtering); ``top_k`` trims the ranked answers.
    """

    relation: str
    entity: str
    use_relations: bool = True
    top_k: int | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "relation": self.relation,
            "entity": self.entity,
            "use_relations": self.use_relations,
            "top_k": self.top_k,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "SearchRequest":
        name = cls.__name__
        payload = _ensure_mapping(payload, name)
        check_schema_version(payload, name)
        _reject_unknown_keys(
            payload, ("relation", "entity", "use_relations", "top_k"), name
        )
        use_relations = payload.get("use_relations", True)
        if not isinstance(use_relations, bool):
            raise ApiError(
                errors.VALIDATION_ERROR, f"{name}.use_relations must be a boolean"
            )
        return cls(
            relation=_require_str(payload, "relation", name),
            entity=_require_str(payload, "entity", name),
            use_relations=use_relations,
            top_k=_optional_top_k(payload, name),
        )


@dataclass(frozen=True)
class JoinSearchRequest:
    """Two-hop join ``R1(?, e2) ∧ R2(e2, entity)`` with ``entity`` given."""

    first_relation: str
    second_relation: str
    entity: str
    top_k: int | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "first_relation": self.first_relation,
            "second_relation": self.second_relation,
            "entity": self.entity,
            "top_k": self.top_k,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "JoinSearchRequest":
        name = cls.__name__
        payload = _ensure_mapping(payload, name)
        check_schema_version(payload, name)
        _reject_unknown_keys(
            payload,
            ("first_relation", "second_relation", "entity", "top_k"),
            name,
        )
        return cls(
            first_relation=_require_str(payload, "first_relation", name),
            second_relation=_require_str(payload, "second_relation", name),
            entity=_require_str(payload, "entity", name),
            top_k=_optional_top_k(payload, name),
        )


@dataclass(frozen=True)
class SearchResponse:
    """Ranked answers plus bookkeeping (shared by /search and /search/join)."""

    answers: tuple[SearchAnswer, ...] = ()
    tables_considered: int = 0
    rows_matched: int = 0

    @classmethod
    def from_ranked(
        cls, response: RankedResponse, top_k: int | None = None
    ) -> "SearchResponse":
        """Freeze one internal :class:`~repro.search.ranking.SearchResponse`."""
        answers = response.answers if top_k is None else response.answers[:top_k]
        return cls(
            answers=tuple(answers),
            tables_considered=response.tables_considered,
            rows_matched=response.rows_matched,
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "answers": [answer.to_payload() for answer in self.answers],
            "tables_considered": self.tables_considered,
            "rows_matched": self.rows_matched,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "SearchResponse":
        name = cls.__name__
        payload = _ensure_mapping(payload, name)
        check_schema_version(payload, name)
        _reject_unknown_keys(
            payload, ("answers", "tables_considered", "rows_matched"), name
        )
        answers = _require(payload, "answers", name)
        if not isinstance(answers, list):
            raise ApiError(
                errors.VALIDATION_ERROR, f"{name}.answers must be an array"
            )
        try:
            decoded = tuple(
                SearchAnswer.from_payload(answer) for answer in answers
            )
        except (KeyError, TypeError, AttributeError) as error:
            raise ApiError(
                errors.VALIDATION_ERROR, f"invalid answer payload: {error}"
            ) from error
        return cls(
            answers=decoded,
            tables_considered=_coerce(
                int, payload.get("tables_considered", 0), name, "tables_considered"
            ),
            rows_matched=_coerce(
                int, payload.get("rows_matched", 0), name, "rows_matched"
            ),
        )


# ----------------------------------------------------------------------
# train
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrainRequest:
    """Train model weights on a labeled JSONL corpus.

    ``output_path=None`` trains without persisting (the response still
    carries the model fingerprint so callers can tell runs apart).
    """

    corpus_path: str
    epochs: int = 3
    seed: int = 0
    method: str = "perceptron"
    output_path: str | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "corpus_path": self.corpus_path,
            "epochs": self.epochs,
            "seed": self.seed,
            "method": self.method,
            "output_path": self.output_path,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "TrainRequest":
        name = cls.__name__
        payload = _ensure_mapping(payload, name)
        check_schema_version(payload, name)
        _reject_unknown_keys(
            payload,
            ("corpus_path", "epochs", "seed", "method", "output_path"),
            name,
        )
        epochs = payload.get("epochs", 3)
        if isinstance(epochs, bool) or not isinstance(epochs, int) or epochs < 1:
            raise ApiError(
                errors.VALIDATION_ERROR, f"{name}.epochs must be a positive integer"
            )
        seed = payload.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ApiError(
                errors.VALIDATION_ERROR, f"{name}.seed must be an integer"
            )
        method = payload.get("method", "perceptron")
        if not isinstance(method, str):
            raise ApiError(
                errors.VALIDATION_ERROR, f"{name}.method must be a string"
            )
        output_path = payload.get("output_path")
        if output_path is not None and not isinstance(output_path, str):
            raise ApiError(
                errors.VALIDATION_ERROR,
                f"{name}.output_path must be a string or null",
            )
        return cls(
            corpus_path=_require_str(payload, "corpus_path", name),
            epochs=epochs,
            seed=seed,
            method=method,
            output_path=output_path,
        )


@dataclass(frozen=True)
class TrainResponse:
    """Outcome of one training run."""

    n_tables: int
    epochs: int
    final_hamming_loss: float
    model_fingerprint: str
    model_path: str | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "n_tables": self.n_tables,
            "epochs": self.epochs,
            "final_hamming_loss": self.final_hamming_loss,
            "model_fingerprint": self.model_fingerprint,
            "model_path": self.model_path,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "TrainResponse":
        name = cls.__name__
        payload = _ensure_mapping(payload, name)
        check_schema_version(payload, name)
        _reject_unknown_keys(
            payload,
            (
                "n_tables",
                "epochs",
                "final_hamming_loss",
                "model_fingerprint",
                "model_path",
            ),
            name,
        )
        return cls(
            n_tables=_coerce(
                int, _require(payload, "n_tables", name), name, "n_tables"
            ),
            epochs=_coerce(int, _require(payload, "epochs", name), name, "epochs"),
            final_hamming_loss=_coerce(
                float,
                _require(payload, "final_hamming_loss", name),
                name,
                "final_hamming_loss",
            ),
            model_fingerprint=_require_str(payload, "model_fingerprint", name),
            model_path=payload.get("model_path"),
        )


# ----------------------------------------------------------------------
# bundles
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BundleBuildRequest:
    """Annotate a JSONL corpus and write a versioned artifact bundle."""

    corpus_path: str
    output_path: str

    def to_json(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "corpus_path": self.corpus_path,
            "output_path": self.output_path,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "BundleBuildRequest":
        name = cls.__name__
        payload = _ensure_mapping(payload, name)
        check_schema_version(payload, name)
        _reject_unknown_keys(payload, ("corpus_path", "output_path"), name)
        return cls(
            corpus_path=_require_str(payload, "corpus_path", name),
            output_path=_require_str(payload, "output_path", name),
        )


@dataclass(frozen=True)
class BundleBuildResponse:
    """What one bundle build produced."""

    output_path: str
    n_tables: int
    n_files: int
    annotate_seconds: float

    def to_json(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "output_path": self.output_path,
            "n_tables": self.n_tables,
            "n_files": self.n_files,
            "annotate_seconds": self.annotate_seconds,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "BundleBuildResponse":
        name = cls.__name__
        payload = _ensure_mapping(payload, name)
        check_schema_version(payload, name)
        _reject_unknown_keys(
            payload,
            ("output_path", "n_tables", "n_files", "annotate_seconds"),
            name,
        )
        return cls(
            output_path=_require_str(payload, "output_path", name),
            n_tables=_coerce(
                int, _require(payload, "n_tables", name), name, "n_tables"
            ),
            n_files=_coerce(int, _require(payload, "n_files", name), name, "n_files"),
            annotate_seconds=_coerce(
                float,
                _require(payload, "annotate_seconds", name),
                name,
                "annotate_seconds",
            ),
        )


# ----------------------------------------------------------------------
# errors
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ErrorEnvelope:
    """The one error shape every frontend emits.

    ``code`` is stable (see :mod:`repro.api.errors`); ``message`` is for
    humans.  The HTTP status is derived from the code, never stored, so the
    envelope cannot disagree with the taxonomy.
    """

    code: str
    message: str

    @property
    def http_status(self) -> int:
        return errors.http_status_for(self.code)

    @classmethod
    def from_error(cls, error: BaseException) -> "ErrorEnvelope":
        api_error = errors.to_api_error(error)
        return cls(code=api_error.code, message=api_error.message)

    def to_json(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "error": {"code": self.code, "message": self.message},
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ErrorEnvelope":
        name = cls.__name__
        payload = _ensure_mapping(payload, name)
        check_schema_version(payload, name)
        _reject_unknown_keys(payload, ("error",), name)
        body = _ensure_mapping(_require(payload, "error", name), f"{name}.error")
        _reject_unknown_keys(body, ("code", "message"), f"{name}.error")
        return cls(
            code=_require_str(body, "code", name),
            message=_require_str(body, "message", name),
        )


#: request type -> response type, in wire-schema order (drives the README
#: table and the round-trip test inventory)
WIRE_TYPES: tuple[type, ...] = (
    AnnotateRequest,
    AnnotateResponse,
    SearchRequest,
    JoinSearchRequest,
    SearchResponse,
    TrainRequest,
    TrainResponse,
    BundleBuildRequest,
    BundleBuildResponse,
    ErrorEnvelope,
)
