"""Error taxonomy of the public API surface.

Every failure that crosses the API boundary — CLI, HTTP or library — is an
:class:`ApiError` carrying a **stable error code** from the table below.
Codes are part of the wire contract (clients branch on them; messages are
for humans and may change), and each code maps to exactly one HTTP status.

======================================  ======  =============================
code                                    status  raised when
======================================  ======  =============================
``bad_request``                         400     transport-level problems: bad
                                                JSON, bad Content-Length,
                                                non-object body
``validation_error``                    400     a request field is missing or
                                                has the wrong type/value
``schema_version_unsupported``          400     the payload declares a
                                                ``schema_version`` this build
                                                does not speak
``invalid_table``                       400     a table payload cannot be
                                                decoded into a ``Table``
``unknown_engine``                      400     an inference engine name is
                                                not in the registry
``unknown_id``                          400     a catalog type/entity/relation
                                                id does not exist
``invalid_query``                       400     a query is structurally
                                                invalid (e.g. join types
                                                incompatible)
``io_error``                            400     a referenced corpus/catalog/
                                                model path cannot be read
``not_found``                           404     unknown HTTP route
``method_not_allowed``                  405     wrong HTTP method for a route
``no_index``                            409     search on a session with no
                                                table index (build one or
                                                open a bundle)
``overloaded``                          503     every worker busy and the
                                                dispatch queue full — the
                                                request was shed, retry with
                                                backoff
``worker_failed``                       503     the worker process handling
                                                the request died mid-flight
                                                (it is restarted; retry)
``bundle_invalid``                      500     a bundle is missing/unreadable
``bundle_version_unsupported``          500     a bundle's format version is
                                                not supported
``bundle_integrity``                    500     a bundle file hash mismatches
                                                its manifest
``internal_error``                      500     anything unexpected
======================================  ======  =============================

The mapping from internal exceptions (catalog, bundle, inference,
validation) lives in :func:`to_api_error`, so the CLI and the HTTP server
cannot drift apart in how they classify failures.
"""

from __future__ import annotations

BAD_REQUEST = "bad_request"
VALIDATION_ERROR = "validation_error"
SCHEMA_VERSION_UNSUPPORTED = "schema_version_unsupported"
INVALID_TABLE = "invalid_table"
UNKNOWN_ENGINE = "unknown_engine"
UNKNOWN_ID = "unknown_id"
INVALID_QUERY = "invalid_query"
IO_ERROR = "io_error"
NOT_FOUND = "not_found"
METHOD_NOT_ALLOWED = "method_not_allowed"
NO_INDEX = "no_index"
OVERLOADED = "overloaded"
WORKER_FAILED = "worker_failed"
BUNDLE_INVALID = "bundle_invalid"
BUNDLE_VERSION_UNSUPPORTED = "bundle_version_unsupported"
BUNDLE_INTEGRITY = "bundle_integrity"
INTERNAL_ERROR = "internal_error"

#: stable code -> HTTP status (the single source of the mapping)
HTTP_STATUS: dict[str, int] = {
    BAD_REQUEST: 400,
    VALIDATION_ERROR: 400,
    SCHEMA_VERSION_UNSUPPORTED: 400,
    INVALID_TABLE: 400,
    UNKNOWN_ENGINE: 400,
    UNKNOWN_ID: 400,
    INVALID_QUERY: 400,
    IO_ERROR: 400,
    NOT_FOUND: 404,
    METHOD_NOT_ALLOWED: 405,
    NO_INDEX: 409,
    OVERLOADED: 503,
    WORKER_FAILED: 503,
    BUNDLE_INVALID: 500,
    BUNDLE_VERSION_UNSUPPORTED: 500,
    BUNDLE_INTEGRITY: 500,
    INTERNAL_ERROR: 500,
}

ERROR_CODES = tuple(HTTP_STATUS)


def http_status_for(code: str) -> int:
    """HTTP status of a stable error code (500 for codes we do not know)."""
    return HTTP_STATUS.get(code, 500)


class ApiError(Exception):
    """One API-surface failure: a stable ``code`` plus a human ``message``."""

    def __init__(self, code: str, message: str) -> None:
        if code not in HTTP_STATUS:
            # reprolint: ignore[exc-unclassified]: a programmer-error guard
            # at construction time — it can never reach a client, because
            # the ApiError carrying it was never built
            raise ValueError(f"unregistered error code: {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message

    @property
    def http_status(self) -> int:
        return http_status_for(self.code)


class BadRequestError(ApiError):
    """Transport-level 400 (bad JSON, bad headers, non-object body).

    Kept as a named class because the HTTP layer raises it directly while
    reading bodies; everything schema-shaped uses plain :class:`ApiError`
    with a more specific code.
    """

    def __init__(self, message: str, code: str = BAD_REQUEST) -> None:
        super().__init__(code, message)


def to_api_error(error: BaseException) -> ApiError:
    """Classify any exception into the taxonomy (the one mapping).

    Known internal exception families map to their stable codes; anything
    unrecognised becomes ``internal_error`` — deliberately without leaking
    repr details beyond the exception type and message.
    """
    if isinstance(error, ApiError):
        return error

    # local imports: this module sits below every subsystem it classifies
    from repro.catalog.errors import CatalogError, UnknownIdError

    # reprolint: ignore[arch-layering]: deliberate lazy upward import — the
    # taxonomy must classify serve-layer exceptions without making the api
    # layer depend on serve at load time
    from repro.serve.errors import (
        BundleError,
        BundleIntegrityError,
        BundleVersionError,
        WorkerSpawnError,
        WorkerTimeout,
    )

    if isinstance(error, UnknownIdError):
        return ApiError(UNKNOWN_ID, str(error))
    if isinstance(error, CatalogError):
        return ApiError(INVALID_QUERY, str(error))
    if isinstance(error, (WorkerTimeout, WorkerSpawnError)):
        return ApiError(WORKER_FAILED, str(error))
    if isinstance(error, BundleVersionError):
        return ApiError(BUNDLE_VERSION_UNSUPPORTED, str(error))
    if isinstance(error, BundleIntegrityError):
        return ApiError(BUNDLE_INTEGRITY, str(error))
    if isinstance(error, BundleError):
        return ApiError(BUNDLE_INVALID, str(error))
    if isinstance(error, (FileNotFoundError, IsADirectoryError, PermissionError)):
        return ApiError(IO_ERROR, str(error))
    return ApiError(INTERNAL_ERROR, f"{type(error).__name__}: {error}")
