"""The :class:`ReproSession` facade — the one public entry point.

Every frontend (CLI commands, the HTTP server, library callers) drives the
system the same way: open a session, hand it typed requests, get typed
responses back.  A session owns

* the catalog and model,
* one warm :class:`~repro.pipeline.AnnotationPipeline` **per engine pair**
  (BP engine × candidate engine, built lazily behind a lock, then shared —
  the candidate / feature-block / compiled-graph caches are pipeline-local
  but the candidate generator, its frozen lemma index and the batched
  engine's interned candidate tables are shared by all pipelines),
* the annotated table index plus both search processors and the join
  processor (built lazily once an index exists).

Sessions open two ways::

    session = ReproSession.from_world("world/catalog_view.json")
    session = ReproSession.from_bundle("bundle/")       # prebuilt artifacts

``from_world`` starts cold (annotating builds all state on demand);
``from_bundle`` starts warm — the index and frozen text indexes come
straight off disk, which is what ``repro serve`` runs on.

Concurrency: a session is safe to share across threads exactly like the
serving layer it powers — bundle state is immutable, pipelines memoise pure
functions behind internally-locked LRUs, and the only mutation (lazy
pipeline/searcher construction, timing-ledger trims) happens under small
mutexes here.  See :mod:`repro.serve.state` for the full story.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.api import errors
from repro.api.config import (
    SessionConfig,
    validate_candidate_engine,
    validate_engine,
)
from repro.api.errors import ApiError, to_api_error
from repro.api.types import (
    AnnotateRequest,
    AnnotateResponse,
    BundleBuildRequest,
    BundleBuildResponse,
    JoinSearchRequest,
    SearchRequest,
    SearchResponse,
    TrainRequest,
    TrainResponse,
)
from repro.catalog.catalog import Catalog
from repro.catalog.errors import CatalogError
from repro.catalog.io import load_catalog_json
from repro.core.annotation import TableAnnotation
from repro.core.candidates import CandidateGenerator
from repro.core.fused import annotate_fused_chunk, fused_eligible
from repro.core.candidates_batched import (
    BatchedCandidateEngine,
    InternedCandidateTables,
)
from repro.core.model import AnnotationModel, default_model
from repro.pipeline.io import annotation_to_dict, iter_corpus_jsonl
from repro.pipeline.pipeline import AnnotationPipeline
from repro.pipeline.planner import iter_bucket_chunks, plan_buckets
from repro.search.annotated_search import AnnotatedSearcher
from repro.search.join_search import JoinQuery, JoinSearcher
from repro.search.query import RelationQuery
from repro.search.ranking import build_lemma_resolver
from repro.search.table_index import AnnotatedTableIndex
from repro.tables.model import LabeledTable, Table

if TYPE_CHECKING:  # the serve package imports this module; break the cycle
    from repro.serve.bundle import LoadedBundle

#: trim the annotator's per-table timing ledger once it exceeds this
MAX_TIMING_LEDGER = 4096


class ReproSession:
    """One warm, shareable handle on the whole system (see module docs)."""

    def __init__(
        self,
        catalog: Catalog,
        model: AnnotationModel | None = None,
        config: SessionConfig | None = None,
        bundle: LoadedBundle | None = None,
    ) -> None:
        self.config = config if config is not None else SessionConfig()
        self.bundle = bundle
        self.catalog = catalog
        self.model = model if model is not None else default_model()
        self._pipelines: dict[tuple[str, str], AnnotationPipeline] = {}
        self._pipeline_lock = threading.Lock()
        self._batched_engine: BatchedCandidateEngine | None = None
        self._timings_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._generator: CandidateGenerator | None = None
        self._index: AnnotatedTableIndex | None = (
            bundle.table_index if bundle is not None else None
        )
        self._lemma_resolver: dict[str, str] | None = None
        self._searchers: dict[bool, AnnotatedSearcher] | None = None
        self._join_searcher: JoinSearcher | None = None
        # warm the default engine so the first request pays nothing extra
        self.pipeline(self.config.engine)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_world(
        cls,
        catalog: str | Path | Catalog,
        model: str | Path | AnnotationModel | None = None,
        config: SessionConfig | None = None,
    ) -> "ReproSession":
        """Open a session on a catalog file, a world directory or a live
        :class:`Catalog`.

        A world directory (as written by ``repro generate-world``) resolves
        to its ``catalog_view.json`` (falling back to ``catalog_full.json``).
        """
        if not isinstance(catalog, Catalog):
            path = Path(catalog)
            if path.is_dir():
                for name in ("catalog_view.json", "catalog_full.json"):
                    if (path / name).is_file():
                        path = path / name
                        break
                else:
                    raise ApiError(
                        errors.IO_ERROR,
                        f"{path} is not a world directory (no "
                        f"catalog_view.json / catalog_full.json)",
                    )
            if not path.is_file():
                raise ApiError(errors.IO_ERROR, f"catalog not found: {path}")
            catalog = load_catalog_json(path)
        if model is not None and not isinstance(model, AnnotationModel):
            model_path = Path(model)
            if not model_path.is_file():
                raise ApiError(errors.IO_ERROR, f"model not found: {model_path}")
            model = AnnotationModel.load(model_path)
        return cls(catalog, model=model, config=config)

    @classmethod
    def from_bundle(
        cls,
        bundle: str | Path | LoadedBundle,
        config: SessionConfig | None = None,
        verify: bool = True,
    ) -> "ReproSession":
        """Open a warm session on a prebuilt artifact bundle."""
        # reprolint: ignore[arch-layering]: deliberate lazy upward import —
        # the bundle format is serve-owned; deferring keeps the api layer
        # load-time-independent of the serving tier
        from repro.serve.bundle import LoadedBundle, load_bundle

        if not isinstance(bundle, LoadedBundle):
            bundle = load_bundle(bundle, verify=verify)
        return cls(
            bundle.catalog, model=bundle.model, config=config, bundle=bundle
        )

    # ------------------------------------------------------------------
    # pipelines
    # ------------------------------------------------------------------
    def _make_generator(self) -> CandidateGenerator:
        """One candidate generator (hence one frozen lemma index) shared by
        every engine's pipeline; bundle sessions load it straight from disk,
        world sessions build and freeze it once."""
        annotator_config = self.config.annotator
        if self.bundle is not None:
            return CandidateGenerator(
                self.catalog,
                top_k_entities=annotator_config.top_k_entities,
                max_type_candidates=annotator_config.max_type_candidates,
                lemma_index=self.bundle.lemma_index,
                lemma_tfidf=self.bundle.lemma_tfidf,
            )
        return CandidateGenerator(
            self.catalog,
            top_k_entities=annotator_config.top_k_entities,
            max_type_candidates=annotator_config.max_type_candidates,
        )

    def pipeline(
        self,
        engine: str | None = None,
        candidate_engine: str | None = None,
    ) -> AnnotationPipeline:
        """The shared pipeline for one engine pair (built lazily, then reused)."""
        engine = validate_engine(engine if engine is not None else self.config.engine)
        candidate_engine = validate_candidate_engine(
            candidate_engine
            if candidate_engine is not None
            else self.config.candidate_engine
        )
        key = (engine, candidate_engine)
        # reprolint: ignore[lock-unguarded-attr]: double-checked fast path —
        # _pipelines only ever gains entries (under _pipeline_lock), and a
        # stale miss just falls through to the locked slow path below
        pipeline = self._pipelines.get(key)
        if pipeline is not None:
            return pipeline
        with self._pipeline_lock:
            pipeline = self._pipelines.get(key)
            if pipeline is None:
                pipeline = AnnotationPipeline(
                    self.catalog,
                    model=self.model,
                    config=self.config.pipeline_config(engine, candidate_engine),
                    candidate_generator=self._candidate_generator_for(
                        candidate_engine
                    ),
                )
                self._pipelines[key] = pipeline
            return pipeline

    def _shared_generator_locked(self) -> CandidateGenerator:
        """The one scalar generator every pipeline shares.

        Caller holds ``_state_lock``: construction (a catalog scan plus a
        frozen lemma index) must happen exactly once however many pipelines
        race to be first.
        """
        if self._generator is None:
            self._generator = self._make_generator()
        return self._generator

    def _candidate_generator_for(self, candidate_engine: str):
        """The shared generator in the shape ``candidate_engine`` expects.

        The batched engine's interned tables are built (or restored from the
        bundle's ``candidates/`` arrays) once and shared by every batched
        pipeline, exactly as the frozen lemma index is shared by all.
        Construction runs under ``_state_lock``: ``pipeline()`` reaches here
        holding ``_pipeline_lock``, but :meth:`train` calls in bare, and two
        racing builders would each pay the expensive interning scan.
        """
        with self._state_lock:
            if candidate_engine != "batched":
                return self._shared_generator_locked()
            if self._batched_engine is None:
                tables = None
                if (
                    self.bundle is not None
                    and self.bundle.candidate_state is not None
                ):
                    tables = InternedCandidateTables.from_state(
                        self.bundle.candidate_state
                    )
                self._batched_engine = BatchedCandidateEngine(
                    self._shared_generator_locked(), tables=tables
                )
            return self._batched_engine

    def _pipeline_name(self, key: tuple[str, str]) -> str:
        """Public name of one warm pipeline.

        The common case (the session's own candidate engine) keeps the plain
        BP-engine name the serving metrics and health endpoints always used;
        explicitly requested off-default candidate engines get a
        ``engine/candidate_engine`` pair name.
        """
        engine, candidate_engine = key
        if candidate_engine == self.config.candidate_engine:
            return engine
        return f"{engine}/{candidate_engine}"

    def pipelines(self) -> dict[str, AnnotationPipeline]:
        """Snapshot of the warm pipelines, keyed by public pipeline name."""
        with self._pipeline_lock:
            return {
                self._pipeline_name(key): pipeline
                for key, pipeline in self._pipelines.items()
            }

    def _trim_timing_ledger(self, pipeline: AnnotationPipeline) -> None:
        timings = pipeline.annotator.timings
        if len(timings) > MAX_TIMING_LEDGER:
            with self._timings_lock:
                if len(timings) > MAX_TIMING_LEDGER:
                    timings.clear()

    # ------------------------------------------------------------------
    # annotation
    # ------------------------------------------------------------------
    def annotate(self, request: AnnotateRequest) -> AnnotateResponse:
        """Annotate one table (the typed request/response path)."""
        engine = validate_engine(
            request.engine if request.engine is not None else self.config.engine
        )
        pipeline = self.pipeline(engine)
        annotation = pipeline.annotate(request.table)
        self._trim_timing_ledger(pipeline)
        return self._annotate_response(
            annotation, engine, include_timing=request.include_timing
        )

    def _annotate_response(
        self,
        annotation: TableAnnotation,
        engine: str,
        include_timing: bool,
    ) -> AnnotateResponse:
        """One annotation as its wire response (single source of the shape)."""
        timing = annotation.diagnostics.get("timing")
        return AnnotateResponse(
            table_id=annotation.table_id,
            engine=engine,
            annotation=annotation_to_dict(annotation),
            diagnostics={
                "iterations": annotation.diagnostics.get("iterations"),
                "converged": annotation.diagnostics.get("converged"),
                "n_variables": annotation.diagnostics.get("n_variables"),
                "n_factors": annotation.diagnostics.get("n_factors"),
            },
            timing_seconds=(
                {
                    "total": timing.total_seconds,
                    "candidates": timing.candidate_seconds,
                    "inference": timing.inference_seconds,
                }
                if include_timing and timing is not None
                else None
            ),
        )

    def annotate_batch(
        self, requests: Sequence[AnnotateRequest]
    ) -> list[AnnotateResponse | ApiError]:
        """Annotate many requests as shape-bucketed fused super-batches.

        The serve-time coalescer's entry point: the tables are planned into
        shape buckets (the same :func:`~repro.pipeline.planner.plan_buckets`
        fused corpus runs use) and each multi-table bucket runs as one fused
        BP super-graph on the warm pipeline, amortising candidate retrieval
        and graph compilation across batchmates.  Each response is
        byte-identical to what a lone :meth:`annotate` call would produce
        (fused execution preserves per-table results bit for bit; pinned by
        the batching property tests).

        Failures are isolated per request: a slot whose table fails holds an
        :class:`ApiError` instead of a response, and a bucket poisoned by
        one bad table falls back to per-table execution so its batchmates
        still succeed.  Requests selecting different engines are grouped and
        fused per engine.
        """
        results: list[AnnotateResponse | ApiError | None] = [None] * len(requests)
        by_engine: dict[str, list[int]] = {}
        for position, request in enumerate(requests):
            try:
                engine = validate_engine(
                    request.engine
                    if request.engine is not None
                    else self.config.engine
                )
            except ApiError as error:
                results[position] = error
                continue
            by_engine.setdefault(engine, []).append(position)
        for engine in sorted(by_engine):
            self._annotate_batch_engine(
                requests, by_engine[engine], engine, results
            )
        return [
            result
            if result is not None
            else ApiError(errors.INTERNAL_ERROR, "batch slot never resolved")
            for result in results
        ]

    def _annotate_batch_engine(
        self,
        requests: Sequence[AnnotateRequest],
        positions: list[int],
        engine: str,
        results: list[AnnotateResponse | ApiError | None],
    ) -> None:
        """Run one engine's share of a batch through the fused planner."""
        pipeline = self.pipeline(engine)
        annotator = pipeline.annotator
        tables = [requests[position].table for position in positions]
        plan = plan_buckets(tables)
        fused = fused_eligible(annotator)
        for signature, entries in iter_bucket_chunks(
            plan, pipeline.config.batch_size
        ):
            chunk_tables = [table for _local, table in entries]
            annotations: list[TableAnnotation | ApiError] | None = None
            if fused and len(chunk_tables) > 1:
                try:
                    annotations = list(
                        annotate_fused_chunk(annotator, chunk_tables, signature)
                    )
                except Exception:  # noqa: BLE001 - a poisoned batchmate
                    # must not fail the bucket: isolate per table below
                    annotations = None
            if annotations is None:
                annotations = []
                for table in chunk_tables:
                    try:
                        annotations.append(annotator.annotate(table))
                    except Exception as error:  # noqa: BLE001 - isolate
                        annotations.append(to_api_error(error))
            for (local, _table), annotation in zip(entries, annotations):
                position = positions[local]
                if isinstance(annotation, ApiError):
                    results[position] = annotation
                else:
                    results[position] = self._annotate_response(
                        annotation,
                        engine,
                        include_timing=requests[position].include_timing,
                    )
        self._trim_timing_ledger(pipeline)

    def annotate_wire_stream(
        self,
        tables: Iterable[Table | LabeledTable],
        engine: str | None = None,
        include_timing: bool = False,
    ) -> Iterator[AnnotateResponse]:
        """Stream typed responses for a whole corpus.

        Runs through the batched/threaded pipeline (so ``workers`` /
        ``batch_size`` apply), yielding one :class:`AnnotateResponse` per
        table in corpus order — each byte-identical to what a single
        :meth:`annotate` call for that table would produce.  Timing is
        excluded by default: the corpus wire format is the deterministic
        one.
        """
        engine = validate_engine(engine if engine is not None else self.config.engine)
        for annotation in self.annotate_stream(tables, engine):
            yield self._annotate_response(
                annotation, engine, include_timing=include_timing
            )

    def annotate_stream(
        self,
        tables: Iterable[Table | LabeledTable],
        engine: str | None = None,
    ) -> Iterator[TableAnnotation]:
        """Stream corpus annotations in order (batched, cached, optionally
        threaded — see :class:`AnnotationPipeline`)."""
        return self.pipeline(engine).annotate_stream(tables)

    def annotate_with_tables(
        self,
        tables: Iterable[Table | LabeledTable],
        engine: str | None = None,
    ) -> Iterator[tuple[Table, TableAnnotation]]:
        """Stream ``(table, annotation)`` pairs in corpus order."""
        return self.pipeline(engine).annotate_with_tables(tables)

    # ------------------------------------------------------------------
    # index + search
    # ------------------------------------------------------------------
    @property
    def index(self) -> AnnotatedTableIndex | None:
        """The annotated table index, if one exists yet."""
        # reprolint: ignore[lock-unguarded-attr]: single atomic reference
        # read; _index moves monotonically None -> frozen index and is never
        # mutated in place, so any snapshot the caller sees is consistent
        return self._index

    def index_corpus(
        self,
        tables: Iterable[Table | LabeledTable] | str | Path,
        engine: str | None = None,
    ) -> AnnotatedTableIndex:
        """Annotate a corpus (iterable or JSONL path) into the session index.

        Replaces any previous index; the searchers rebuild lazily on the
        next query.
        """
        if isinstance(tables, (str, Path)):
            path = Path(tables)
            if not path.is_file():
                raise ApiError(errors.IO_ERROR, f"corpus not found: {path}")
            tables = iter_corpus_jsonl(path)
        index = AnnotatedTableIndex(catalog=self.catalog)
        for table, annotation in self.annotate_with_tables(tables, engine):
            index.add_table(table, annotation)
        index.freeze()
        with self._state_lock:
            self._index = index
            self._searchers = None
            self._join_searcher = None
        return index

    def _require_index(self) -> AnnotatedTableIndex:
        # reprolint: ignore[lock-unguarded-attr]: single atomic reference
        # read of a monotone None -> frozen-index attribute; callers either
        # hold _state_lock already or only need *a* consistent snapshot
        index = self._index
        if index is None:
            raise ApiError(
                errors.NO_INDEX,
                "session has no table index: open a bundle or call "
                "index_corpus() first",
            )
        return index

    def _searcher(self, use_relations: bool) -> AnnotatedSearcher:
        # lock-free fast path once warm (one atomic attribute read); the
        # slow path reads the index and builds the searchers inside one
        # critical section, so a concurrent index_corpus() can never leave
        # searchers cached over a replaced index
        # reprolint: ignore[lock-unguarded-attr]: double-checked fast path;
        # the dict is built fully before the single reference publish under
        # _state_lock, and a stale None just takes the locked slow path
        searchers = self._searchers
        if searchers is not None:
            return searchers[use_relations]
        with self._state_lock:
            if self._searchers is None:
                index = self._require_index()
                if self._lemma_resolver is None:
                    self._lemma_resolver = build_lemma_resolver(self.catalog)
                self._searchers = {
                    flag: AnnotatedSearcher(
                        index,
                        self.catalog,
                        use_relations=flag,
                        lemma_resolver=self._lemma_resolver,
                    )
                    for flag in (True, False)
                }
            return self._searchers[use_relations]

    def _join(self) -> JoinSearcher:
        # reprolint: ignore[lock-unguarded-attr]: double-checked fast path;
        # the searcher is fully constructed before its reference is
        # published under _state_lock, and a stale None re-checks locked
        searcher = self._join_searcher
        if searcher is not None:
            return searcher
        with self._state_lock:
            if self._join_searcher is None:
                index = self._require_index()
                if self._lemma_resolver is None:
                    self._lemma_resolver = build_lemma_resolver(self.catalog)
                self._join_searcher = JoinSearcher(
                    index,
                    self.catalog,
                    max_middle=self.config.search.max_middle,
                    top_k_answers=self.config.search.top_k_answers,
                    lemma_resolver=self._lemma_resolver,
                )
            return self._join_searcher

    def search(self, request: SearchRequest) -> SearchResponse:
        """Answer one relational query against the session index."""
        searcher = self._searcher(request.use_relations)
        try:
            query = RelationQuery.from_catalog(
                self.catalog, request.relation, request.entity
            )
        except CatalogError as error:
            raise to_api_error(error) from error
        return SearchResponse.from_ranked(
            searcher.search(query), top_k=request.top_k
        )

    def join_search(self, request: JoinSearchRequest) -> SearchResponse:
        """Answer one two-hop join query against the session index."""
        searcher = self._join()
        try:
            query = JoinQuery.from_catalog(
                self.catalog,
                request.first_relation,
                request.second_relation,
                request.entity,
            )
        except CatalogError as error:
            raise to_api_error(error) from error
        except ValueError as error:
            raise ApiError(errors.INVALID_QUERY, str(error)) from error
        return SearchResponse.from_ranked(
            searcher.search(query), top_k=request.top_k
        )

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train(self, request: TrainRequest) -> TrainResponse:
        """Train fresh model weights on a labeled corpus.

        Training runs on a dedicated pipeline so the session's warm serving
        pipelines (and their caches) are never perturbed.  The session keeps
        its original model; load the trained one into a new session.
        """
        from repro.core.learning import StructuredTrainer, TrainingConfig
        from repro.tables.corpus import load_corpus_jsonl

        corpus_path = Path(request.corpus_path)
        if not corpus_path.is_file():
            raise ApiError(errors.IO_ERROR, f"corpus not found: {corpus_path}")
        corpus = load_corpus_jsonl(corpus_path)
        # a dedicated pipeline keeps the warm serving pipelines untouched,
        # but the expensive candidate generator (catalog scan + frozen
        # lemma index) is shared — it depends only on the catalog
        pipeline = AnnotationPipeline(
            self.catalog,
            model=default_model(),
            config=self.config.pipeline_config(),
            candidate_generator=self._candidate_generator_for(
                self.config.candidate_engine
            ),
        )
        try:
            trainer = StructuredTrainer(
                pipeline.annotator,
                TrainingConfig(
                    epochs=request.epochs,
                    seed=request.seed,
                    method=request.method,
                ),
            )
            model = trainer.train(list(corpus))
        except ValueError as error:
            raise ApiError(errors.VALIDATION_ERROR, str(error)) from error
        if request.output_path is not None:
            model.save(request.output_path)
        final_loss = (
            trainer.history[-1]["hamming_loss"] if trainer.history else 0.0
        )
        return TrainResponse(
            n_tables=len(corpus),
            epochs=request.epochs,
            final_hamming_loss=final_loss,
            model_fingerprint=model.fingerprint(),
            model_path=request.output_path,
        )

    # ------------------------------------------------------------------
    # bundles
    # ------------------------------------------------------------------
    def build_bundle(self, request: BundleBuildRequest) -> BundleBuildResponse:
        """Annotate a corpus and serialize the full serving bundle."""
        # reprolint: ignore[arch-layering]: deliberate lazy upward import —
        # bundle building is serve-owned; the session only brokers it
        from repro.serve.bundle import build_bundle

        corpus_path = Path(request.corpus_path)
        if not corpus_path.is_file():
            raise ApiError(errors.IO_ERROR, f"corpus not found: {corpus_path}")
        manifest = build_bundle(
            request.output_path,
            self.catalog,
            iter_corpus_jsonl(corpus_path),
            pipeline=self.pipeline(),
        )
        return BundleBuildResponse(
            output_path=str(request.output_path),
            n_tables=int(manifest.stats.get("n_tables", 0)),
            n_files=len(manifest.files),
            annotate_seconds=float(manifest.stats.get("annotate_seconds", 0.0)),
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Identity + capability snapshot (feeds ``/healthz``)."""
        from repro.api.types import SCHEMA_VERSION

        info: dict = {
            "schema_version": SCHEMA_VERSION,
            "default_engine": self.config.engine,
            "default_candidate_engine": self.config.candidate_engine,
            "default_fusion": self.config.fusion,
            "default_executor": self.config.executor,
            "engines": sorted(self.pipelines()),
            # reprolint: ignore[lock-unguarded-attr]: health-check snapshot;
            # _index is monotone None -> frozen index (never reset to None),
            # so the check-then-len pair cannot observe a vanishing index
            "tables": len(self._index) if self._index is not None else 0,
            "model_sha256": self.model.fingerprint(),
            "catalog": self.catalog.name,
        }
        if self.bundle is not None:
            info["bundle"] = str(self.bundle.path)
        return info
