"""Public typed API: one session facade, one versioned wire schema.

Everything the CLI (:mod:`repro.cli`), the HTTP server (:mod:`repro.serve`)
and library callers do goes through this package:

* :class:`ReproSession` — the facade (open from a world or a bundle; offers
  ``annotate`` / ``annotate_stream`` / ``search`` / ``join_search`` /
  ``train`` / ``build_bundle``),
* :mod:`repro.api.types` — versioned request/response dataclasses with
  strict ``to_json``/``from_json`` round-tripping,
* :mod:`repro.api.errors` — the stable error-code taxonomy every frontend
  maps failures through,
* :class:`SessionConfig` — the one composed configuration object.

Quickstart::

    from repro.api import AnnotateRequest, ReproSession, SearchRequest

    session = ReproSession.from_world("world/catalog_view.json")
    response = session.annotate(AnnotateRequest(table=table))
    session.index_corpus("world/corpus.jsonl")
    answers = session.search(SearchRequest(relation="rel:directed",
                                           entity="ent:kurosawa"))
"""

from repro.api.errors import ApiError, BadRequestError, to_api_error
from repro.api.config import (
    SearchConfig,
    ServeConfig,
    SessionConfig,
    VALID_CANDIDATE_ENGINES,
    VALID_ENGINES,
    validate_candidate_engine,
    validate_engine,
)
from repro.api.session import ReproSession
from repro.api.types import (
    SCHEMA_VERSION,
    WIRE_TYPES,
    AnnotateRequest,
    AnnotateResponse,
    BundleBuildRequest,
    BundleBuildResponse,
    ErrorEnvelope,
    JoinSearchRequest,
    SearchRequest,
    SearchResponse,
    TrainRequest,
    TrainResponse,
    encode_json,
)

__all__ = [
    "SCHEMA_VERSION",
    "VALID_CANDIDATE_ENGINES",
    "VALID_ENGINES",
    "WIRE_TYPES",
    "AnnotateRequest",
    "AnnotateResponse",
    "ApiError",
    "BadRequestError",
    "BundleBuildRequest",
    "BundleBuildResponse",
    "ErrorEnvelope",
    "JoinSearchRequest",
    "ReproSession",
    "SearchConfig",
    "ServeConfig",
    "SearchRequest",
    "SearchResponse",
    "SessionConfig",
    "TrainRequest",
    "TrainResponse",
    "encode_json",
    "to_api_error",
    "validate_candidate_engine",
    "validate_engine",
]
