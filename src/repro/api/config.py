"""One composed configuration for the whole API surface.

Before this module existed every frontend wired its own stack of
``AnnotatorConfig`` / ``InferenceConfig`` / ``PipelineConfig`` objects; the
CLI and the HTTP server each validated engine names their own way.
:class:`SessionConfig` replaces that: one object, loadable from JSON or CLI
flags, that every :class:`~repro.api.session.ReproSession` (and therefore
every frontend) is built from.

:func:`validate_engine` is the **single** engine-name check — the CLI's
argparse choices, the session's pipeline factory and the server's per-request
engine override all resolve through it (or through :data:`VALID_ENGINES`).
"""

from __future__ import annotations

import argparse
import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api import errors
from repro.api.errors import ApiError
from repro.core.annotator import FUSION_MODES, AnnotatorConfig
from repro.core.candidates import CANDIDATE_ENGINES
from repro.core.inference import ENGINES
from repro.pipeline.executor import EXECUTORS
from repro.pipeline.pipeline import PipelineConfig

#: the engine registry, re-exported so frontends need no core import
VALID_ENGINES: tuple[str, ...] = tuple(ENGINES)

#: the candidate-engine registry (same shape: "batched" default, "scalar"
#: reference), re-exported for the CLI's argparse choices
VALID_CANDIDATE_ENGINES: tuple[str, ...] = tuple(CANDIDATE_ENGINES)

#: corpus fusion modes ("off" per-table, "bucket" cross-table fused)
VALID_FUSION_MODES: tuple[str, ...] = tuple(FUSION_MODES)

#: pipeline batch executors ("serial", "thread", "process")
VALID_EXECUTORS: tuple[str, ...] = tuple(EXECUTORS)


def validate_engine(engine: str) -> str:
    """The one engine-name check shared by CLI, server and library paths."""
    if engine not in VALID_ENGINES:
        raise ApiError(
            errors.UNKNOWN_ENGINE,
            f"unknown engine: {engine!r} (valid engines: "
            f"{', '.join(VALID_ENGINES)})",
        )
    return engine


def validate_candidate_engine(candidate_engine: str) -> str:
    """The one candidate-engine-name check (mirrors :func:`validate_engine`)."""
    if candidate_engine not in VALID_CANDIDATE_ENGINES:
        raise ApiError(
            errors.UNKNOWN_ENGINE,
            f"unknown candidate engine: {candidate_engine!r} (valid candidate "
            f"engines: {', '.join(VALID_CANDIDATE_ENGINES)})",
        )
    return candidate_engine


def validate_fusion(fusion: str) -> str:
    """The one fusion-mode check (mirrors :func:`validate_engine`)."""
    if fusion not in VALID_FUSION_MODES:
        raise ApiError(
            errors.UNKNOWN_ENGINE,
            f"unknown fusion mode: {fusion!r} (valid fusion modes: "
            f"{', '.join(VALID_FUSION_MODES)})",
        )
    return fusion


def validate_executor(executor: str) -> str:
    """The one executor-name check (mirrors :func:`validate_engine`)."""
    if executor not in VALID_EXECUTORS:
        raise ApiError(
            errors.UNKNOWN_ENGINE,
            f"unknown executor: {executor!r} (valid executors: "
            f"{', '.join(VALID_EXECUTORS)})",
        )
    return executor


@dataclass
class SearchConfig:
    """Knobs of the query processors owned by a session."""

    #: middles explored per join query (paper two-hop join)
    max_middle: int = 10
    #: ranked answers kept per query before any request-level top_k trim
    top_k_answers: int = 50

    def __post_init__(self) -> None:
        if self.max_middle < 1:
            raise ValueError("max_middle must be >= 1")
        if self.top_k_answers < 1:
            raise ValueError("top_k_answers must be >= 1")


@dataclass
class ServeConfig:
    """Knobs of the multi-process serving tier (``repro serve``).

    ``workers`` is the pre-fork worker-process count (each worker runs one
    warm :class:`~repro.pipeline.AnnotationPipeline` over the shared
    read-only bundle).  ``queue_depth`` bounds how many requests may wait
    for a worker beyond the ``workers`` already in flight; a request that
    cannot be admitted within ``shed_timeout_seconds`` is shed with a 503
    ``overloaded``.  See ``docs/OPERATIONS.md`` for tuning guidance.
    """

    #: pre-fork worker processes (1 still forks one worker; the in-process
    #: inline backend is a library construct, not a CLI mode)
    workers: int = 1
    #: requests allowed to queue for a worker beyond the in-flight ones
    queue_depth: int = 16
    #: how long a request may wait for admission before a 503 shed
    shed_timeout_seconds: float = 2.0
    #: hard per-request ceiling; a worker silent past this is presumed
    #: wedged, killed and replaced
    request_timeout_seconds: float = 120.0
    #: cadence of the dead-worker sweep (liveness + replacement)
    health_interval_seconds: float = 1.0
    #: how long shutdown / hot-swap waits for in-flight requests to finish
    drain_timeout_seconds: float = 30.0
    #: coalesce concurrent /annotate requests into fused super-batches
    #: (serve-time dynamic micro-batching; docs/OPERATIONS.md "Batching")
    batching: bool = False
    #: tables one coalesced super-batch may carry at most
    max_batch_size: int = 16
    #: how long the coalescer holds an open batch for more arrivals
    batch_wait_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("serve workers must be >= 1")
        if self.queue_depth < 0:
            raise ValueError("serve queue_depth must be >= 0")
        if self.max_batch_size < 1:
            # reprolint: ignore[exc-unclassified]: construction-time guard;
            # SessionConfig.from_json wraps it into validation_error
            raise ValueError("serve max_batch_size must be >= 1")
        if self.batch_wait_ms < 0:
            # reprolint: ignore[exc-unclassified]: construction-time guard;
            # SessionConfig.from_json wraps it into validation_error
            raise ValueError("serve batch_wait_ms must be >= 0")
        for name in (
            "shed_timeout_seconds",
            "request_timeout_seconds",
            "health_interval_seconds",
            "drain_timeout_seconds",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"serve {name} must be >= 0")


@dataclass
class SessionConfig:
    """Everything a :class:`~repro.api.session.ReproSession` is built from.

    Composes the per-subsystem configs (annotator + pipeline + search) that
    the CLI used to thread by hand, plus the session-level defaults (which
    inference engine, which candidate engine, how much caching).  ``engine``
    is the *default* engine; requests may still override it per call.
    ``candidate_engine`` selects the candidate-generation path the same way
    ("batched" array programs by default, "scalar" per-cell reference).
    """

    engine: str = "batched"
    candidate_engine: str = "batched"
    #: corpus fusion default ("off" per-table, "bucket" cross-table fused)
    fusion: str = "off"
    #: pipeline batch executor ("serial", "thread", "process")
    executor: str = "thread"
    workers: int = 1
    batch_size: int = 16
    cache_size: int = 100_000
    compiled_cache_size: int = 2048
    annotator: AnnotatorConfig = field(default_factory=AnnotatorConfig)
    search: SearchConfig = field(default_factory=SearchConfig)
    serve: ServeConfig = field(default_factory=ServeConfig)

    def __post_init__(self) -> None:
        validate_engine(self.engine)
        validate_candidate_engine(self.candidate_engine)
        validate_fusion(self.fusion)
        validate_executor(self.executor)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if self.compiled_cache_size < 0:
            raise ValueError("compiled_cache_size must be >= 0")

    # ------------------------------------------------------------------
    # derived configs
    # ------------------------------------------------------------------
    def pipeline_config(
        self,
        engine: str | None = None,
        candidate_engine: str | None = None,
        fusion: str | None = None,
    ) -> PipelineConfig:
        """The :class:`PipelineConfig` for one engine pair (default: session's)."""
        engine = validate_engine(engine if engine is not None else self.engine)
        candidate_engine = validate_candidate_engine(
            candidate_engine
            if candidate_engine is not None
            else self.candidate_engine
        )
        fusion = validate_fusion(fusion if fusion is not None else self.fusion)
        return PipelineConfig(
            batch_size=self.batch_size,
            workers=self.workers,
            cache_size=self.cache_size,
            compiled_cache_size=self.compiled_cache_size,
            executor=self.executor,
            annotator=dataclasses.replace(
                self.annotator,
                engine=engine,
                candidate_engine=candidate_engine,
                fusion=fusion,
            ),
        )

    # ------------------------------------------------------------------
    # JSON / CLI loading
    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        return {
            "engine": self.engine,
            "candidate_engine": self.candidate_engine,
            "fusion": self.fusion,
            "executor": self.executor,
            "workers": self.workers,
            "batch_size": self.batch_size,
            "cache_size": self.cache_size,
            "compiled_cache_size": self.compiled_cache_size,
            "annotator": self.annotator.to_dict(),
            "search": dataclasses.asdict(self.search),
            "serve": dataclasses.asdict(self.serve),
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "SessionConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ApiError(
                errors.VALIDATION_ERROR,
                f"unknown SessionConfig field(s): {', '.join(unknown)}",
            )
        kwargs: dict[str, Any] = dict(payload)
        try:
            if "annotator" in kwargs:
                kwargs["annotator"] = AnnotatorConfig.from_dict(
                    dict(kwargs["annotator"])
                )
            if "search" in kwargs:
                kwargs["search"] = SearchConfig(**dict(kwargs["search"]))
            if "serve" in kwargs:
                kwargs["serve"] = ServeConfig(**dict(kwargs["serve"]))
            return cls(**kwargs)
        except ApiError:
            raise
        except (TypeError, ValueError) as error:
            raise ApiError(
                errors.VALIDATION_ERROR, f"invalid SessionConfig: {error}"
            ) from error

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "SessionConfig":
        """Build from the CLI's shared pipeline flags (missing flags keep
        their defaults, so every command reuses this)."""
        kwargs: dict[str, Any] = {}
        for flag in (
            "engine",
            "candidate_engine",
            "fusion",
            "executor",
            "workers",
            "batch_size",
            "cache_size",
            "compiled_cache_size",
        ):
            value = getattr(args, flag, None)
            if value is not None:
                kwargs[flag] = value
        return cls(**kwargs)
