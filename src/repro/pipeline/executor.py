"""Batched execution strategies for the annotation pipeline.

Tables are chunked into batches and each batch runs as one unit of work.
Three executors exist:

* **serial** — batches run inline, one after another (zero overhead, easiest
  to reason about; always used when ``max_workers <= 1``),
* **thread** — batches run on a persistent :class:`ThreadPoolExecutor`.
  NumPy releases the GIL inside the dense factor-potential and
  message-passing kernels, so threads overlap real work while sharing every
  cache in-process, and
* **process** — batches run on a persistent fork-based
  :class:`ProcessPoolExecutor`.  Forked workers inherit the parent's warm
  state (catalog, lemma index, interned tables, caches) as copy-on-write
  read-only memory instead of re-pickling it, which is what makes a process
  pool viable here at all; only the batches out and results back cross the
  pipe.  Each worker keeps its own cache deltas — fine for the pure
  annotation functions they memoise.  Requires a platform with ``fork``
  (Linux/macOS CPython).

Whatever the executor, results stream back **in submission order** — callers
observe exactly the sequence a serial loop would have produced — and at most
``2 × max_workers`` batches are in flight, so corpora never materialise in
memory.

:class:`BatchExecutor` owns one pool for its whole lifetime: repeated
``map_ordered`` calls reuse it, so many-small-corpus callers (the serving
layer, benchmark loops) stop paying pool construction and teardown per call.
The legacy :func:`execute_batches` helper remains as a one-shot wrapper.
"""

from __future__ import annotations

import itertools
import multiprocessing
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

EXECUTORS = ("serial", "thread", "process")

#: worker registry for the fork-based process pool: entries are registered
#: *before* the pool (and therefore before any worker) is created, so every
#: forked child inherits the token it will be asked to run.  Tokens are
#: process-unique and never reassigned.
_FORK_WORKERS: dict[int, Callable] = {}
_FORK_TOKENS = itertools.count()


def _run_fork_worker(token: int, batch):
    """Module-level trampoline executed inside forked pool workers."""
    worker = _FORK_WORKERS.get(token)
    if worker is None:
        raise RuntimeError(
            "process-pool worker invoked before its fork registration; "
            "this indicates a worker process that did not fork from the "
            "registering parent"
        )
    return worker(batch)


def iter_batches(items: Iterable[ItemT], batch_size: int) -> Iterator[list[ItemT]]:
    """Chunk ``items`` into lists of at most ``batch_size`` (lazily)."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    batch: list[ItemT] = []
    for item in items:
        batch.append(item)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


class BatchExecutor:
    """A reusable executor: one pool, many ``map_ordered`` calls.

    ``kind`` is one of :data:`EXECUTORS`.  Pools are created lazily on first
    use and live until :meth:`close`; a consumer abandoning a
    ``map_ordered`` stream early cancels the not-yet-started batches but
    leaves the pool intact for the next call.
    """

    def __init__(self, kind: str = "thread", max_workers: int = 1) -> None:
        if kind not in EXECUTORS:
            raise ValueError(f"unknown executor: {kind!r}")
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.kind = kind
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | ProcessPoolExecutor | None = None
        self._process_worker: Callable | None = None
        self._process_token: int | None = None

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _submitter(self, worker: Callable) -> Callable:
        """The pool-appropriate ``submit(batch) -> Future`` callable."""
        if self.kind == "thread":
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
            pool = self._pool
            return lambda batch: pool.submit(worker, batch)
        # process: the worker closure/bound state never crosses the pipe —
        # it is registered under a token which forked children inherit, and
        # only (token, batch) is pickled per task.  A different worker than
        # the pool was forked for requires a fresh pool.
        if self._pool is not None and worker != self._process_worker:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._pool is None:
            if "fork" not in multiprocessing.get_all_start_methods():
                raise RuntimeError(
                    "the process executor requires the fork start method "
                    "(unavailable on this platform); use the thread executor"
                )
            token = next(_FORK_TOKENS)
            _FORK_WORKERS[token] = worker
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=multiprocessing.get_context("fork"),
            )
            self._process_worker = worker
            self._process_token = token
        pool = self._pool
        token = self._process_token
        return lambda batch: pool.submit(_run_fork_worker, token, batch)

    def close(self) -> None:
        """Shut the pool down without waiting; queued batches are dropped."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._process_worker = None
            self._process_token = None

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def map_ordered(
        self,
        batches: Iterable[ItemT],
        worker: Callable[[ItemT], ResultT],
    ) -> Iterator[ResultT]:
        """Run ``worker`` over every batch, yielding results in batch order.

        Serial kind (or ``max_workers <= 1``) runs inline; otherwise up to
        ``2 × max_workers`` batches are in flight and results come back
        strictly in submission order.  Abandoning the stream early cancels
        the batches that have not started; batches already executing finish
        in the background and the pool survives for the next call.
        """
        if self.kind == "serial" or self.max_workers <= 1:
            for batch in batches:
                yield worker(batch)
            return
        submit = self._submitter(worker)
        in_flight: deque = deque()
        max_in_flight = 2 * self.max_workers
        try:
            for batch in batches:
                in_flight.append(submit(batch))
                if len(in_flight) >= max_in_flight:
                    yield in_flight.popleft().result()
            while in_flight:
                yield in_flight.popleft().result()
        finally:
            for future in in_flight:
                future.cancel()


def execute_batches(
    batches: Iterable[list[ItemT]],
    worker: Callable[[list[ItemT]], ResultT],
    max_workers: int = 1,
) -> Iterator[ResultT]:
    """One-shot :meth:`BatchExecutor.map_ordered` on a transient thread pool.

    Kept for callers that run a single stream: the pool lives exactly as
    long as the stream.  A consumer that abandons the generator early
    (``break``, ``close()``, garbage collection) must not block on work it
    will never read: the pool is shut down with ``cancel_futures=True`` and
    without waiting, so queued batches are dropped and only the batches
    already executing run to completion in the background.
    """
    executor = BatchExecutor(
        "thread" if max_workers > 1 else "serial", max_workers
    )
    try:
        yield from executor.map_ordered(batches, worker)
    finally:
        executor.close()
