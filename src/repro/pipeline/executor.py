"""Batched execution strategies for the annotation pipeline.

Tables are chunked into fixed-size batches and each batch is annotated as one
unit of work.  Two executors exist:

* **serial** — batches run inline, one after another (the default; zero
  threading overhead, easiest to reason about), and
* **thread** — batches run on a bounded :class:`ThreadPoolExecutor`.  NumPy
  releases the GIL inside the dense factor-potential and message-passing
  kernels, so threads overlap real work; a process pool is deliberately not
  offered because the catalog + lemma index would have to be re-pickled into
  every worker and the shared candidate cache would stop being shared.

Whatever the executor, results stream back **in submission order** — callers
observe exactly the sequence a serial loop would have produced — and at most
``2 × max_workers`` batches are in flight, so corpora never materialise in
memory.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

EXECUTORS = ("serial", "thread")


def iter_batches(items: Iterable[ItemT], batch_size: int) -> Iterator[list[ItemT]]:
    """Chunk ``items`` into lists of at most ``batch_size`` (lazily)."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    batch: list[ItemT] = []
    for item in items:
        batch.append(item)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def execute_batches(
    batches: Iterable[list[ItemT]],
    worker: Callable[[list[ItemT]], ResultT],
    max_workers: int = 1,
) -> Iterator[ResultT]:
    """Run ``worker`` over every batch, yielding results in batch order.

    ``max_workers <= 1`` runs inline; otherwise a thread pool keeps up to
    ``2 × max_workers`` batches in flight and yields strictly in submission
    order, so downstream consumers see deterministic sequencing regardless of
    which batch finishes first.

    A consumer that abandons the generator early (``break``, ``close()``,
    garbage collection) must not block on work it will never read: the pool
    is shut down with ``cancel_futures=True`` and without waiting, so queued
    batches are dropped and only the batches already executing run to
    completion in the background.
    """
    if max_workers <= 1:
        for batch in batches:
            yield worker(batch)
        return
    pool = ThreadPoolExecutor(max_workers=max_workers)
    try:
        in_flight: deque = deque()
        max_in_flight = 2 * max_workers
        for batch in batches:
            in_flight.append(pool.submit(worker, batch))
            if len(in_flight) >= max_in_flight:
                yield in_flight.popleft().result()
        while in_flight:
            yield in_flight.popleft().result()
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
