"""Streaming corpus and annotation I/O.

:func:`repro.tables.corpus.load_corpus_jsonl` materialises a whole corpus in
memory; at the scale the paper targets (hundreds of thousands of tables) that
is the wrong default for a one-pass annotate job.  These helpers keep both
directions streaming: tables are parsed one JSONL line at a time and
annotations are flushed one JSONL line at a time, so pipeline memory is
bounded by the in-flight batches alone.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.core.annotation import (
    CellAnnotation,
    ColumnAnnotation,
    RelationAnnotation,
    TableAnnotation,
)
from repro.tables.model import LabeledTable


def iter_corpus_jsonl(path: str | Path) -> Iterator[LabeledTable]:
    """Lazily parse a JSONL corpus (one :class:`LabeledTable` per line)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            yield LabeledTable.from_dict(json.loads(line))


def annotation_to_dict(annotation: TableAnnotation) -> dict:
    """JSON-friendly view of one annotation (stable key order)."""
    return {
        "table_id": annotation.table_id,
        "cells": {
            f"{row},{column}": cell.entity_id
            for (row, column), cell in sorted(annotation.cells.items())
        },
        "columns": {
            str(column): ann.type_id
            for column, ann in sorted(annotation.columns.items())
        },
        "relations": {
            f"{left},{right}": relation.label
            for (left, right), relation in sorted(annotation.relations.items())
        },
    }


def annotation_to_payload(annotation: TableAnnotation) -> dict:
    """Full-fidelity JSON view of one annotation (labels *and* scores).

    :func:`annotation_to_dict` is the compact user-facing shape; this one is
    what artifact bundles persist, so a bundle-loaded index carries exactly
    the annotation objects a fresh corpus run would have produced (inference
    diagnostics excepted — they describe the producing process, not the
    annotation).  Round-trips through :func:`annotation_from_payload`.
    """
    return {
        "table_id": annotation.table_id,
        "cells": [
            [row, column, cell.entity_id, cell.score]
            for (row, column), cell in sorted(annotation.cells.items())
        ],
        "columns": [
            [column, ann.type_id, ann.score]
            for column, ann in sorted(annotation.columns.items())
        ],
        "relations": [
            [left, right, relation.label, relation.score]
            for (left, right), relation in sorted(annotation.relations.items())
        ],
    }


def annotation_from_payload(payload: dict) -> TableAnnotation:
    """Inverse of :func:`annotation_to_payload`."""
    annotation = TableAnnotation(table_id=payload["table_id"])
    for row, column, entity_id, score in payload["cells"]:
        annotation.cells[(row, column)] = CellAnnotation(
            row=row, column=column, entity_id=entity_id, score=score
        )
    for column, type_id, score in payload["columns"]:
        annotation.columns[column] = ColumnAnnotation(
            column=column, type_id=type_id, score=score
        )
    for left, right, label, score in payload["relations"]:
        annotation.relations[(left, right)] = RelationAnnotation(
            left_column=left, right_column=right, label=label, score=score
        )
    return annotation


def write_annotations_json_array(
    annotations: Iterable[TableAnnotation | dict], handle: IO[str]
) -> int:
    """Stream annotations to ``handle`` as one JSON array, one table at a time.

    Produces byte-identical output to ``json.dumps(list_of_dicts, indent=1)``
    without ever materialising the list — the CLI's whole-corpus JSON mode
    uses this so resident memory stays bounded by a single annotation.
    Returns the number of elements written.
    """
    written = 0
    for annotation in annotations:
        payload = (
            annotation
            if isinstance(annotation, dict)
            else annotation_to_dict(annotation)
        )
        handle.write("[\n" if written == 0 else ",\n")
        block = json.dumps(payload, indent=1)
        handle.write(" " + block.replace("\n", "\n "))
        written += 1
    handle.write("[]" if written == 0 else "\n]")
    return written


def write_annotations_jsonl(
    annotations: Iterable[TableAnnotation | dict], handle: IO[str]
) -> int:
    """Write annotations to an open text handle, one JSON object per line.

    Accepts :class:`TableAnnotation` objects or pre-converted dicts; returns
    the number of lines written.  Taking a handle (not a path) lets callers
    stream to stdout as easily as to a file.
    """
    written = 0
    for annotation in annotations:
        payload = (
            annotation
            if isinstance(annotation, dict)
            else annotation_to_dict(annotation)
        )
        handle.write(json.dumps(payload, ensure_ascii=False))
        handle.write("\n")
        written += 1
    return written


def read_annotations_jsonl(path: str | Path) -> Iterator[dict]:
    """Lazily parse an annotations JSONL file written by the pipeline."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
