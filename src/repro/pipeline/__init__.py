"""Corpus-scale annotation pipeline: cache, batching, streaming I/O.

This package is the single corpus-annotation entry point of the system; see
:class:`AnnotationPipeline`.
"""

from repro.pipeline.cache import (
    CacheStats,
    CandidateCache,
    CachingCandidateGenerator,
    LRUCache,
    normalized_cell_key,
)
from repro.pipeline.executor import execute_batches, iter_batches
from repro.pipeline.io import (
    annotation_to_dict,
    iter_corpus_jsonl,
    read_annotations_jsonl,
    write_annotations_jsonl,
)
from repro.pipeline.pipeline import (
    AnnotationPipeline,
    BatchTiming,
    CorpusTimingReport,
    PipelineConfig,
)

__all__ = [
    "AnnotationPipeline",
    "BatchTiming",
    "CacheStats",
    "CandidateCache",
    "CachingCandidateGenerator",
    "CorpusTimingReport",
    "LRUCache",
    "PipelineConfig",
    "annotation_to_dict",
    "execute_batches",
    "iter_batches",
    "iter_corpus_jsonl",
    "normalized_cell_key",
    "read_annotations_jsonl",
    "write_annotations_jsonl",
]
