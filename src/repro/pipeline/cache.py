"""Shared caches for corpus-scale annotation.

The paper's Figure 7 attributes ~80% of annotation time to lemma-index
probing plus similarity/feature computation.  Across a corpus the same cell
strings recur constantly (country names, people appearing in many tables,
repeated headers-as-cells), yet the seed code redid all of that work for
every occurrence.  Two cache layers remove it:

* :class:`CandidateCache` memoises
  :meth:`CandidateGenerator.cell_candidates` results so each distinct cell
  string probes the lemma index once per corpus
  (:class:`CachingCandidateGenerator` layers it transparently under any
  existing generator), and
* a generic :class:`LRUCache` memoises the *assembled feature blocks* of
  :class:`~repro.core.problem.FeatureComputer` (the f1/f2/f3/f4/f5 arrays
  stacked per candidate space), which profiling shows is where most
  candidate-stage time actually goes once retrieval is fast.

Candidate-cache keys are **normalised** cell text
(:func:`normalized_cell_key`: stripped, case-folded, punctuation collapsed —
the join of the same tokens retrieval scores on), so ``"Einstein"``,
``"einstein "`` and ``"Einstein!"`` share one entry.  This is sound by
construction: retrieval depends only on the ordered token bag, so any two
texts with equal keys get identical candidates from the generator.
:class:`CacheStats` splits hits into raw (same surface form as the entry's
first writer) versus normalised-only, quantifying what normalisation buys.

Both are size-bounded (LRU eviction) and thread-safe, and neither changes
results: every cached value is a pure function of its key for a frozen
catalog, so cached and uncached paths produce byte-identical annotations
(covered by tests).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

from repro.core.candidates import CandidateEntity, CandidateGenerator
from repro.text.normalize import is_numeric_text
from repro.text.tokenize import tokenize


def normalized_cell_key(text: str) -> str:
    """The cache key of one cell text: its tokens joined by single spaces.

    Tokenisation lower-cases and strips whitespace/punctuation, and the
    ordered token bag is exactly what retrieval scores on — so two texts with
    the same key are guaranteed the same candidates, while casing, stray
    spaces and punctuation stop fragmenting the cache.
    """
    return " ".join(tokenize(text))


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one cache."""

    hits: int
    misses: int
    evictions: int
    entries: int
    max_entries: int
    #: hits whose raw text matched the entry's first writer exactly
    raw_hits: int = 0
    #: hits earned only by key normalisation (casing/whitespace/punctuation)
    normalized_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """Activity between ``earlier`` and this snapshot (counter deltas)."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            entries=self.entries,
            max_entries=self.max_entries,
            raw_hits=self.raw_hits - earlier.raw_hits,
            normalized_hits=self.normalized_hits - earlier.normalized_hits,
        )


class LRUCache:
    """Size-bounded, thread-safe LRU map with hit/miss/eviction counters.

    Values are treated as immutable by every caller (candidate lists and
    feature arrays are never mutated after construction), so the same object
    is handed out on every hit.  ``None`` is not a storable value — it is the
    miss sentinel.
    """

    def __init__(self, max_entries: int = 100_000) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable):
        """The cached value for ``key``, or None (records hit/miss)."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        if value is None:
            raise ValueError("None is the miss sentinel and cannot be stored")
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                max_entries=self.max_entries,
            )


class CandidateCache(LRUCache):
    """LRU from *normalised* cell text to candidate entities (``Erc``).

    Entries store ``(first_raw_text, candidates)`` so hits can be split into
    raw (identical surface form) versus normalised-only in :meth:`stats`.
    """

    def __init__(self, max_entries: int = 100_000) -> None:
        super().__init__(max_entries=max_entries)
        self._raw_hits = 0
        self._normalized_hits = 0

    def get_candidates(self, key: str, raw_text: str):
        """Candidates under ``key``, or None (attributes the hit kind)."""
        entry = self.get(key)
        if entry is None:
            return None
        stored_raw, candidates = entry
        with self._lock:
            if stored_raw == raw_text:
                self._raw_hits += 1
            else:
                self._normalized_hits += 1
        return candidates

    def put_candidates(
        self, key: str, raw_text: str, candidates: list[CandidateEntity]
    ) -> None:
        self.put(key, (raw_text, candidates))

    def stats(self) -> CacheStats:
        base = super().stats()
        with self._lock:
            return CacheStats(
                hits=base.hits,
                misses=base.misses,
                evictions=base.evictions,
                entries=base.entries,
                max_entries=base.max_entries,
                raw_hits=self._raw_hits,
                normalized_hits=self._normalized_hits,
            )


class CachingCandidateGenerator:
    """A :class:`CandidateGenerator` front that serves ``Erc`` from a cache.

    Only :meth:`cell_candidates` / :meth:`cell_candidates_batch` — the
    lemma-index probes, the hot path — are intercepted; every other attribute
    (``column_type_candidates``, ``relation_candidates``, ``lemma_tfidf``,
    ``catalog`` …) delegates to the wrapped generator, so this object drops
    into any ``CandidateGenerator`` call site unchanged.
    """

    def __init__(
        self, generator: CandidateGenerator, cache: CandidateCache
    ) -> None:
        self._generator = generator
        self.cache = cache

    def cell_candidates(self, cell_text: str) -> list[CandidateEntity]:
        # mirror the generator's cheap guards so cache statistics count only
        # probes that would actually have hit the lemma index
        text = cell_text.strip()
        if not text or is_numeric_text(text):
            return []
        key = normalized_cell_key(text)
        cached = self.cache.get_candidates(key, text)
        if cached is not None:
            return cached
        candidates = self._generator.cell_candidates(text)
        self.cache.put_candidates(key, text, candidates)
        return candidates

    def cell_candidates_batch(
        self, cell_texts: list[str]
    ) -> list[list[CandidateEntity]]:
        """Batch ``Erc``: serve hits from the cache, probe misses in one pass.

        With a batch-capable inner generator (the batched candidate engine)
        all cache misses go through one ``search_batch`` call; a scalar inner
        generator is probed per distinct missing text.  Results are
        position-aligned with ``cell_texts``.
        """
        results: list[list[CandidateEntity] | None] = [None] * len(cell_texts)
        missing: dict[str, tuple[str, list[int]]] = {}
        for position, cell_text in enumerate(cell_texts):
            text = cell_text.strip()
            if not text or is_numeric_text(text):
                results[position] = []
                continue
            key = normalized_cell_key(text)
            pending = missing.get(key)
            if pending is not None:
                pending[1].append(position)
                continue
            cached = self.cache.get_candidates(key, text)
            if cached is not None:
                results[position] = cached
            else:
                missing[key] = (text, [position])
        if missing:
            texts = [raw for raw, _positions in missing.values()]
            inner_batch = getattr(self._generator, "cell_candidates_batch", None)
            if inner_batch is not None:
                resolved = inner_batch(texts)
            else:
                resolved = [self._generator.cell_candidates(t) for t in texts]
            for (key, (raw, positions)), candidates in zip(
                missing.items(), resolved
            ):
                self.cache.put_candidates(key, raw, candidates)
                for position in positions:
                    results[position] = candidates
        return results  # type: ignore[return-value]

    def __getattr__(self, name: str):
        return getattr(self._generator, name)
