"""Shared caches for corpus-scale annotation.

The paper's Figure 7 attributes ~80% of annotation time to lemma-index
probing plus similarity/feature computation.  Across a corpus the same cell
strings recur constantly (country names, people appearing in many tables,
repeated headers-as-cells), yet the seed code redid all of that work for
every occurrence.  Two cache layers remove it:

* :class:`CandidateCache` memoises
  :meth:`CandidateGenerator.cell_candidates` results so each distinct cell
  string probes the lemma index once per corpus
  (:class:`CachingCandidateGenerator` layers it transparently under any
  existing generator), and
* a generic :class:`LRUCache` memoises the *assembled feature blocks* of
  :class:`~repro.core.problem.FeatureComputer` (the f1/f2/f3/f4/f5 arrays
  stacked per candidate space), which profiling shows is where most
  candidate-stage time actually goes once retrieval is fast.

Both are size-bounded (LRU eviction) and thread-safe, and neither changes
results: every cached value is a pure function of its key for a frozen
catalog, so cached and uncached paths produce byte-identical annotations
(covered by tests).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

from repro.core.candidates import CandidateEntity, CandidateGenerator
from repro.text.normalize import is_numeric_text


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one cache."""

    hits: int
    misses: int
    evictions: int
    entries: int
    max_entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """Activity between ``earlier`` and this snapshot (counter deltas)."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            entries=self.entries,
            max_entries=self.max_entries,
        )


class LRUCache:
    """Size-bounded, thread-safe LRU map with hit/miss/eviction counters.

    Values are treated as immutable by every caller (candidate lists and
    feature arrays are never mutated after construction), so the same object
    is handed out on every hit.  ``None`` is not a storable value — it is the
    miss sentinel.
    """

    def __init__(self, max_entries: int = 100_000) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable):
        """The cached value for ``key``, or None (records hit/miss)."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        if value is None:
            raise ValueError("None is the miss sentinel and cannot be stored")
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                max_entries=self.max_entries,
            )


class CandidateCache(LRUCache):
    """LRU map from cell text to its candidate entities (``Erc``)."""


class CachingCandidateGenerator:
    """A :class:`CandidateGenerator` front that serves ``Erc`` from a cache.

    Only :meth:`cell_candidates` — the lemma-index probe, the hot path — is
    intercepted; every other attribute (``column_type_candidates``,
    ``relation_candidates``, ``lemma_tfidf``, ``catalog`` …) delegates to the
    wrapped generator, so this object drops into any ``CandidateGenerator``
    call site unchanged.
    """

    def __init__(
        self, generator: CandidateGenerator, cache: CandidateCache
    ) -> None:
        self._generator = generator
        self.cache = cache

    def cell_candidates(self, cell_text: str) -> list[CandidateEntity]:
        # mirror the generator's cheap guards so cache statistics count only
        # probes that would actually have hit the lemma index
        text = cell_text.strip()
        if not text or is_numeric_text(text):
            return []
        cached = self.cache.get(text)
        if cached is not None:
            return cached
        candidates = self._generator.cell_candidates(text)
        self.cache.put(text, candidates)
        return candidates

    def __getattr__(self, name: str):
        return getattr(self._generator, name)
