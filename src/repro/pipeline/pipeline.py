"""Corpus-scale annotation: one entry point for every corpus loop.

The seed code annotated corpora by looping ``TableAnnotator.annotate(table)``
— no sharing between tables, no parallelism, whole corpus in memory.
:class:`AnnotationPipeline` replaces that loop everywhere (CLI, experiment
runners, search-index construction) with:

* a **shared candidate cache** (:mod:`repro.pipeline.cache`): repeated cell
  strings across the corpus probe the lemma index once,
* a **compiled-graph cache**: recurring tables reuse whole
  :class:`~repro.graph.compiled.CompiledFactorGraph` instances, so the
  batched inference engine skips potential construction and compilation,
* **batched execution** (:mod:`repro.pipeline.executor`): tables are chunked
  and optionally annotated on a thread pool, with results streamed back in
  deterministic corpus order,
* **streaming I/O** (:mod:`repro.pipeline.io`): JSONL in, JSONL out, bounded
  memory, and
* **aggregate timing** extending the per-table
  :class:`~repro.core.annotator.AnnotationTiming` records with per-batch and
  corpus-level rollups plus cache hit-rates — the Figure-7 instrumentation
  at corpus scale.

Parallel and serial execution produce identical annotations: each table's
annotation is a pure function of (table, catalog, model), and the cache only
memoises a pure function of the cell text.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.catalog.catalog import Catalog
from repro.core.annotation import TableAnnotation
from repro.core.annotator import AnnotationTiming, AnnotatorConfig, TableAnnotator
from repro.core.model import AnnotationModel
from repro.pipeline.cache import (
    CacheStats,
    CandidateCache,
    CachingCandidateGenerator,
    LRUCache,
)
from repro.core.fused import annotate_fused_chunk, fused_eligible
from repro.pipeline.executor import EXECUTORS, BatchExecutor, iter_batches
from repro.pipeline.io import (
    annotation_to_dict,
    iter_corpus_jsonl,
    write_annotations_jsonl,
)
from repro.pipeline.planner import iter_bucket_chunks, plan_buckets
from repro.tables.model import LabeledTable, Table


@dataclass
class PipelineConfig:
    """Configuration of corpus-scale annotation.

    ``workers=1`` runs batches inline; ``workers>1`` uses the configured
    ``executor`` ("thread" on a shared-memory thread pool, "process" on a
    fork-based process pool whose workers inherit the warm state
    copy-on-write).  ``cache_size=0`` disables the shared candidate cache
    (every cell probes the lemma index, as the seed code did).
    """

    batch_size: int = 16
    workers: int = 1
    cache_size: int = 100_000
    #: entries in the compiled-factor-graph LRU (0 disables it); compiled
    #: graphs are far heavier than feature blocks, so the bound is separate
    #: and much smaller than ``cache_size``
    compiled_cache_size: int = 2048
    #: "serial", "thread" or "process" — how batches are executed when
    #: ``workers > 1`` (see :mod:`repro.pipeline.executor`)
    executor: str = "thread"
    annotator: AnnotatorConfig = field(default_factory=AnnotatorConfig)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if self.compiled_cache_size < 0:
            raise ValueError("compiled_cache_size must be >= 0")
        if self.executor not in EXECUTORS:
            raise ValueError(f"unknown executor: {self.executor!r}")


@dataclass
class BatchTiming:
    """Rollup of one batch of annotations."""

    batch_index: int
    n_tables: int
    #: wall-clock of the batch as one unit of work (overlaps other batches
    #: when running threaded)
    wall_seconds: float
    total_seconds: float
    candidate_seconds: float
    inference_seconds: float


@dataclass
class CorpusTimingReport:
    """Figure-7 timing at corpus scale, plus cache accounting.

    Aggregates the per-table :class:`AnnotationTiming` records of one corpus
    run.  The report is complete once the annotation stream has been fully
    consumed (``finished`` is then True).
    """

    n_tables: int = 0
    total_seconds: float = 0.0
    candidate_seconds: float = 0.0
    inference_seconds: float = 0.0
    #: end-to-end elapsed time of the run (≤ total_seconds when threaded)
    wall_seconds: float = 0.0
    batches: list[BatchTiming] = field(default_factory=list)
    per_table_seconds: list[float] = field(default_factory=list)
    #: candidate-cache activity during this run (None when caching is disabled)
    cache: CacheStats | None = None
    #: feature-block-cache activity during this run (None when disabled)
    block_cache: CacheStats | None = None
    #: compiled-factor-graph-cache activity during this run (None when disabled)
    compiled_cache: CacheStats | None = None
    #: fusion mode this run executed under ("off" or "bucket")
    fusion: str = "off"
    #: number of fused work units executed (0 when fusion is off)
    fused_batches: int = 0
    #: tables per fused work unit, in execution order
    bucket_sizes: list[int] = field(default_factory=list)
    finished: bool = False

    def record(self, timing: AnnotationTiming) -> None:
        self.n_tables += 1
        self.total_seconds += timing.total_seconds
        self.candidate_seconds += timing.candidate_seconds
        self.inference_seconds += timing.inference_seconds
        self.per_table_seconds.append(timing.total_seconds)

    # -- Figure-7 fractions -------------------------------------------------
    @property
    def candidate_fraction(self) -> float:
        return self.candidate_seconds / self.total_seconds if self.total_seconds else 0.0

    @property
    def inference_fraction(self) -> float:
        return self.inference_seconds / self.total_seconds if self.total_seconds else 0.0

    # -- per-table distribution --------------------------------------------
    @property
    def mean_seconds(self) -> float:
        return statistics.fmean(self.per_table_seconds) if self.per_table_seconds else 0.0

    @property
    def median_seconds(self) -> float:
        return statistics.median(self.per_table_seconds) if self.per_table_seconds else 0.0

    @property
    def p90_seconds(self) -> float:
        if not self.per_table_seconds:
            return 0.0
        ordered = sorted(self.per_table_seconds)
        return ordered[int(0.9 * (len(ordered) - 1))]

    # -- cache --------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate if self.cache else 0.0

    # -- fusion -------------------------------------------------------------
    @property
    def bucket_size_histogram(self) -> dict[int, int]:
        """``{bucket size: count}`` over the fused work units of this run."""
        histogram: dict[int, int] = {}
        for size in self.bucket_sizes:
            histogram[size] = histogram.get(size, 0) + 1
        return dict(sorted(histogram.items()))


class AnnotationPipeline:
    """Annotates whole corpora against one catalog.

    One pipeline owns one :class:`TableAnnotator` (hence one lemma index and
    one feature cache) plus one shared :class:`CandidateCache`; it should be
    built once per catalog and reused across corpora, exactly like the
    annotator it wraps.
    """

    def __init__(
        self,
        catalog: Catalog,
        model: AnnotationModel | None = None,
        config: PipelineConfig | None = None,
        candidate_generator=None,
    ) -> None:
        self.config = config if config is not None else PipelineConfig()
        self.annotator = TableAnnotator(
            catalog,
            model=model,
            config=self.config.annotator,
            candidate_generator=candidate_generator,
        )
        self.cache: CandidateCache | None = None
        self.block_cache: LRUCache | None = None
        if self.config.cache_size:
            self.cache = CandidateCache(max_entries=self.config.cache_size)
            caching = CachingCandidateGenerator(
                self.annotator.candidate_generator, self.cache
            )
            # every problem built through this annotator now goes through the
            # caches, including baseline/learner paths that reuse the annotator
            self.annotator.candidate_generator = caching
            self.annotator.features.generator = caching
            self.block_cache = LRUCache(max_entries=self.config.cache_size)
            self.annotator.features.block_cache = self.block_cache
        self.compiled_cache: LRUCache | None = None
        if self.config.compiled_cache_size:
            # recurring (table, model) pairs reuse whole compiled factor
            # graphs — potentials and stacked blocks — across the corpus
            self.compiled_cache = LRUCache(
                max_entries=self.config.compiled_cache_size
            )
            self.annotator.compiled_cache = self.compiled_cache
        #: one persistent executor for the pipeline's lifetime — repeated
        #: corpus runs reuse the same pool instead of paying construction
        #: and teardown per call (see :class:`BatchExecutor`)
        self.executor = BatchExecutor(self.config.executor, self.config.workers)
        self.last_report: CorpusTimingReport | None = None

    def close(self) -> None:
        """Release the pipeline's executor pool (idempotent)."""
        self.executor.close()

    def __enter__(self) -> "AnnotationPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def catalog(self) -> Catalog:
        return self.annotator.catalog

    @property
    def model(self) -> AnnotationModel:
        return self.annotator.model

    def cache_stats(self) -> CacheStats | None:
        """Lifetime cache counters (None when caching is disabled)."""
        return self.cache.stats() if self.cache is not None else None

    # ------------------------------------------------------------------
    # annotation
    # ------------------------------------------------------------------
    def annotate(self, table: Table | LabeledTable) -> TableAnnotation:
        """Annotate a single table (shares the pipeline's cache)."""
        if isinstance(table, LabeledTable):
            table = table.table
        return self.annotator.annotate(table)

    def annotate_with_tables(
        self, tables: Iterable[Table | LabeledTable]
    ) -> Iterator[tuple[Table, TableAnnotation]]:
        """Stream ``(table, annotation)`` pairs in corpus order.

        With ``fusion="off"`` tables are chunked into ``config.batch_size``
        batches and executed on the pipeline's executor; pairs come back in
        exactly the order the input iterable produced them, and only
        ``O(workers × batch_size)`` tables are in flight at once.

        With ``fusion="bucket"`` the corpus is materialised, planned into
        shape buckets (:mod:`repro.pipeline.planner`) and annotated as fused
        cross-table work units — trading streaming memory for throughput.
        Output order is still corpus order, and annotations are identical to
        the per-table path's.

        Consuming the stream to the end finalises :attr:`last_report`.
        """
        report = CorpusTimingReport(fusion=self.config.annotator.fusion)
        self.last_report = report
        stats_before = self.cache_stats()
        blocks_before = (
            self.block_cache.stats() if self.block_cache is not None else None
        )
        compiled_before = (
            self.compiled_cache.stats() if self.compiled_cache is not None else None
        )
        start = time.perf_counter()

        if self.config.annotator.fusion == "bucket":
            yield from self._fused_stream(tables, report)
        else:
            batches = iter_batches(tables, self.config.batch_size)
            for batch_index, (pairs, batch_wall) in enumerate(
                self.executor.map_ordered(batches, self._annotate_batch)
            ):
                self._record_batch(report, batch_index, pairs, batch_wall)
                yield from pairs

        report.wall_seconds = time.perf_counter() - start
        stats_after = self.cache_stats()
        if stats_before is not None and stats_after is not None:
            report.cache = stats_after.since(stats_before)
        if blocks_before is not None and self.block_cache is not None:
            report.block_cache = self.block_cache.stats().since(blocks_before)
        if compiled_before is not None and self.compiled_cache is not None:
            report.compiled_cache = self.compiled_cache.stats().since(
                compiled_before
            )
        report.finished = True

    # ------------------------------------------------------------------
    # batch workers (stable bound methods so the process executor can ship
    # them to forked workers without re-forking per call)
    # ------------------------------------------------------------------
    def _annotate_batch(
        self, batch: list[Table | LabeledTable]
    ) -> tuple[list[tuple[Table, TableAnnotation]], float]:
        batch_start = time.perf_counter()
        pairs: list[tuple[Table, TableAnnotation]] = []
        for item in batch:
            table = item.table if isinstance(item, LabeledTable) else item
            pairs.append((table, self.annotator.annotate(table)))
        return pairs, time.perf_counter() - batch_start

    def _annotate_unit(
        self, unit: tuple[tuple, list[tuple[int, Table]]]
    ) -> tuple[list[tuple[int, Table, TableAnnotation]], float]:
        """Annotate one fused work unit (a chunk of one shape bucket)."""
        unit_start = time.perf_counter()
        signature, entries = unit
        chunk_tables = [table for _position, table in entries]
        if fused_eligible(self.annotator):
            annotations = annotate_fused_chunk(
                self.annotator, chunk_tables, signature
            )
        else:
            # engine combinations the fused BP does not cover run per table;
            # planning, ordering and reporting stay identical either way
            annotations = [self.annotator.annotate(table) for table in chunk_tables]
        results = [
            (position, table, annotation)
            for (position, table), annotation in zip(entries, annotations)
        ]
        return results, time.perf_counter() - unit_start

    def _record_batch(
        self,
        report: CorpusTimingReport,
        batch_index: int,
        pairs: list,
        batch_wall: float,
    ) -> None:
        timings = [pair[-1].diagnostics["timing"] for pair in pairs]
        for timing in timings:
            report.record(timing)
        report.batches.append(
            BatchTiming(
                batch_index=batch_index,
                n_tables=len(pairs),
                wall_seconds=batch_wall,
                total_seconds=sum(t.total_seconds for t in timings),
                candidate_seconds=sum(t.candidate_seconds for t in timings),
                inference_seconds=sum(t.inference_seconds for t in timings),
            )
        )

    def _fused_stream(
        self,
        tables: Iterable[Table | LabeledTable],
        report: CorpusTimingReport,
    ) -> Iterator[tuple[Table, TableAnnotation]]:
        items = [
            item.table if isinstance(item, LabeledTable) else item
            for item in tables
        ]
        plan = plan_buckets(items)
        units = list(iter_bucket_chunks(plan, self.config.batch_size))
        ordered: list[tuple[Table, TableAnnotation] | None] = [None] * len(items)
        for unit_index, (results, unit_wall) in enumerate(
            self.executor.map_ordered(units, self._annotate_unit)
        ):
            report.fused_batches += 1
            report.bucket_sizes.append(len(results))
            self._record_batch(report, unit_index, results, unit_wall)
            for position, table, annotation in results:
                ordered[position] = (table, annotation)
        for pair in ordered:
            assert pair is not None
            yield pair

    def annotate_stream(
        self, tables: Iterable[Table | LabeledTable]
    ) -> Iterator[TableAnnotation]:
        """Stream annotations in corpus order (see :meth:`annotate_with_tables`)."""
        for _table, annotation in self.annotate_with_tables(tables):
            yield annotation

    def annotate_corpus(
        self, tables: Iterable[Table | LabeledTable]
    ) -> list[TableAnnotation]:
        """Annotate a corpus and return its annotations in corpus order."""
        return list(self.annotate_stream(tables))

    # ------------------------------------------------------------------
    # streaming corpus I/O
    # ------------------------------------------------------------------
    def annotate_jsonl(
        self,
        corpus_path: str | Path,
        output: str | Path | IO[str],
    ) -> CorpusTimingReport:
        """Annotate a JSONL corpus file into a JSONL annotations stream.

        Tables are read, annotated and written one batch at a time — the
        corpus is never materialised.  ``output`` may be a path or an open
        text handle (e.g. ``sys.stdout``).
        """
        annotations = (
            annotation_to_dict(annotation)
            for annotation in self.annotate_stream(iter_corpus_jsonl(corpus_path))
        )
        if hasattr(output, "write"):
            write_annotations_jsonl(annotations, output)
        else:
            with Path(output).open("w", encoding="utf-8") as handle:
                write_annotations_jsonl(annotations, handle)
        assert self.last_report is not None
        return self.last_report
